//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The simulator only needs a deterministic small PRNG plus the handful of
//! `Rng` convenience methods it actually calls (`gen`, `gen_range`,
//! `gen_bool`). This crate provides exactly that surface with a
//! xoshiro256++ generator seeded through splitmix64, so the build works in
//! environments with no access to crates.io. Streams are *not* bit-exact
//! with upstream `rand`; all repository tests compare run-to-run or against
//! analytic formulas, never against upstream sample values.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait UniformPrimitive: Sized {
    /// Draws one value from the generator's native output.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl UniformPrimitive for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformPrimitive for u32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl UniformPrimitive for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformPrimitive for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformPrimitive for f32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`]. Generic over the output type so
/// integer literals in `gen_range(0..n)` infer from the use site, as with
/// upstream `rand`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Debiased multiply-shift rejection sampling.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                self.start + ((m >> 64) as u64) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize);

macro_rules! signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = (0u64..span).sample_from(rng);
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f64::draw(rng)
    }
}

/// The random-number-generator trait: a 64-bit output source plus the
/// convenience methods the simulator uses.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniform value of a primitive type (`f64` in `[0,1)`, full
    /// range for integers).
    fn gen<T: UniformPrimitive>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        f64::draw(self) < p
    }
}

/// Seedable generators (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with splitmix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// splitmix64: the standard seed-expansion step.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Small, fast generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// xoshiro256++ — small-state, high-quality, non-cryptographic PRNG.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // An all-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let x = r.gen_range(0..5usize);
            assert!(x < 5);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&b| b), "all buckets hit");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut r = SmallRng::seed_from_u64(4);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = total / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
