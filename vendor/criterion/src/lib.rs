//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the repository's benches use
//! — `Criterion::benchmark_group`, `sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`, and
//! the `criterion_group!` / `criterion_main!` macros — as a plain wall
//! clock timing harness. Each benchmark runs a warmup iteration, then
//! `sample_size` timed samples, and prints mean time per iteration plus
//! derived element throughput. There is no statistical analysis, HTML
//! report, or comparison baseline.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing a value away.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id with a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Runs the routine repeatedly and records total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: one untimed call so lazily-initialized state settles.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = self.samples as u64;
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut b);
        report(&self.name, &id.to_string(), &b, self.throughput);
    }

    /// Benchmarks a closure with an input value under `id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut b, input);
        report(&self.name, &id.to_string(), &b, self.throughput);
    }

    /// Ends the group (reports are emitted eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

fn report(group: &str, id: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iterations == 0 {
        println!("{group}/{id}: no iterations recorded");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iterations as f64;
    let mut line = format!("{group}/{id}: {:.3} ms/iter", per_iter * 1e3);
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / per_iter;
            line.push_str(&format!(" ({rate:.0} elem/s)"));
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / per_iter;
            line.push_str(&format!(" ({:.1} MiB/s)", rate / (1024.0 * 1024.0)));
        }
        None => {}
    }
    println!("{line}");
}

/// The benchmark harness entry object.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Creates a harness with default settings.
    pub fn new() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size.max(1);
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.default_sample_size.max(1),
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut b);
        report("bench", id, &b, None);
        self
    }

    /// Runs registered benchmark functions (used by `criterion_main!`).
    pub fn final_summary(&self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        let mut runs = 0usize;
        g.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.bench_with_input(BenchmarkId::new("with_input", 5u64), &5u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        // 1 warmup + 3 timed samples.
        assert_eq!(runs, 4);
    }
}
