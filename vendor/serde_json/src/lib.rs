//! Offline stand-in for `serde_json`.
//!
//! Parses and prints JSON text over the in-memory [`Value`] model from the
//! `serde` stand-in. Provides the entry points the simulator uses:
//! [`from_str`], [`to_string`], [`to_string_pretty`], [`to_value`],
//! [`from_value`], and the [`json!`] macro.
//!
//! Floats print with `{:?}` (shortest round-trip form) and parse with
//! Rust's correctly-rounded `f64::from_str`, so a serialize → parse cycle
//! reproduces every finite `f64` bit-exactly — the config round-trip tests
//! rely on this.

#![forbid(unsafe_code)]

use std::fmt;
use std::fmt::Write as _;

pub use serde::{Map, Number, Value};

/// Error produced by JSON parsing or (de)serialization.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    /// 1-based line/column of a parse error, when known.
    pos: Option<(usize, usize)>,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            pos: None,
        }
    }
    fn at(msg: impl Into<String>, line: usize, col: usize) -> Self {
        Error {
            msg: msg.into(),
            pos: Some((line, col)),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some((line, col)) => write!(f, "{} at line {line} column {col}", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Converts a deserializable [`Value`] into a concrete type.
///
/// # Errors
///
/// Returns an error on a shape mismatch.
pub fn from_value<T: serde::de::DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(Error::from)
}

/// Converts a serializable type into a [`Value`].
///
/// # Errors
///
/// Infallible in this stand-in; the `Result` mirrors `serde_json`'s API.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Infallible in this stand-in; the `Result` mirrors `serde_json`'s API.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serializes a value to pretty-printed JSON text (two-space indent).
///
/// # Errors
///
/// Infallible in this stand-in; the `Result` mirrors `serde_json`'s API.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Used by the [`json!`] macro; not part of the public API surface.
#[doc(hidden)]
pub fn value_from<T: serde::Serialize>(v: &T) -> Value {
    v.to_value()
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Builds a [`Value`] from a JSON-like literal, as in `serde_json`.
///
/// Supports object literals with string keys, array literals, `null`, and
/// arbitrary serializable expressions in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($body:tt)+ }) => {{
        let mut json_internal_map = $crate::Map::new();
        $crate::json_object_internal!(json_internal_map, $($body)+);
        $crate::Value::Object(json_internal_map)
    }};
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($elem:expr),+ $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::json!($elem) ),+ ])
    };
    ($other:expr) => { $crate::value_from(&$other) };
}

/// Implementation detail of [`json!`]: munches `"key": value` pairs.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    ($map:ident,) => {};
    ($map:ident, $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert($key, $crate::Value::Null);
        $( $crate::json_object_internal!($map, $($rest)*); )?
    };
    ($map:ident, $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key, $crate::json!({ $($inner)* }));
        $( $crate::json_object_internal!($map, $($rest)*); )?
    };
    ($map:ident, $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key, $crate::json!([ $($inner)* ]));
        $( $crate::json_object_internal!($map, $($rest)*); )?
    };
    ($map:ident, $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $map.insert($key, $crate::json!($val));
        $( $crate::json_object_internal!($map, $($rest)*); )?
    };
}

// ---------------------------------------------------------------------------
// Pretty printer
// ---------------------------------------------------------------------------

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                let _ = serde_write_string(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        // Scalars, empty arrays, and empty objects share the compact form.
        other => {
            let _ = write!(out, "{other}");
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn serde_write_string(out: &mut String, s: &str) -> fmt::Result {
    // Reuse the compact escaping by printing a one-string Value.
    write!(out, "{}", Value::String(s.to_string()))
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn line_col(&self) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        let (line, col) = self.line_col();
        Error::at(msg, line, col)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(format!("unexpected character `{}`", other as char))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped UTF-8 runs wholesale.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require a trailing \uXXXX.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate in \\u escape"));
                            }
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate in \\u escape"));
                            }
                            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(cp).ok_or_else(|| self.err("invalid \\u escape"))?
                        } else {
                            char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if let Ok(signed) = i64::try_from(n) {
                        return Ok(Value::Number(Number::NegInt(-signed)));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

/// Parses JSON text into a [`Value`].
fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<String>(r#""a\nbé""#).unwrap(), "a\nbé");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn float_roundtrip_is_bit_exact() {
        for x in [0.1f64, 1.0 / 3.0, 2.5e-7, 1e300, -0.0, 12345.6789] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "text {text}");
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn object_roundtrip_preserves_order() {
        let v = parse(r#"{"z": 1, "a": [true, null]}"#).unwrap();
        assert_eq!(to_string(&v).unwrap(), r#"{"z":1,"a":[true,null]}"#);
    }

    #[test]
    fn json_macro_shapes() {
        let name = "svc";
        let v = json!({
            "name": name,
            "count": 3u64,
            "nested": { "p": 0.5 },
            "list": [json!(null), 2u64],
            "flag": true,
        });
        assert_eq!(v["name"], "svc");
        assert_eq!(v["count"], 3u64);
        assert_eq!(v["nested"]["p"], 0.5);
        assert!(v["list"][0].is_null());
        assert_eq!(v["flag"], true);
    }

    #[test]
    fn pretty_print_shape() {
        let v = json!({ "a": 1u64, "b": [] });
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": 1,\n  \"b\": []\n}"
        );
    }

    #[test]
    fn surrogate_pairs() {
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }
}
