//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the value-based `serde::Serialize` /
//! `serde::Deserialize` traits from the stand-in `serde` crate. Instead of
//! `syn`/`quote` (unavailable offline), the item is parsed directly from
//! its `TokenTree`s and the impl is emitted as a source string parsed back
//! into a `TokenStream`.
//!
//! Supported container attributes: `tag = "..."` (internally tagged
//! enums), `rename_all = "snake_case"`, `transparent`, `try_from = "Ty"`.
//! Supported field attributes: `default`, `default = "path"`, `skip`,
//! `skip_serializing_if = "path"`.
//! Generics are not supported — the simulator never derives on generic
//! types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Attr {
    key: String,
    value: Option<String>,
}

#[derive(Debug, Clone, PartialEq)]
enum DefaultKind {
    /// Field must be present.
    Required,
    /// `#[serde(default)]` — `Default::default()` when missing.
    DefaultTrait,
    /// `#[serde(default = "path")]` — call `path()` when missing.
    Path(String),
    /// `#[serde(skip)]` — never read or written.
    Skip,
}

#[derive(Debug, Clone)]
struct Field {
    /// Identifier for named fields, decimal index for tuple fields.
    name: String,
    /// Type as a space-joined token string, e.g. `Option < f64 >`.
    ty: String,
    default: DefaultKind,
    /// `#[serde(skip_serializing_if = "path")]` — omit the field from the
    /// serialized map when `path(&value)` is true.
    skip_ser_if: Option<String>,
}

impl Field {
    fn is_option(&self) -> bool {
        self.ty == "Option" || self.ty.starts_with("Option <")
    }
}

#[derive(Debug, Clone)]
enum VariantKind {
    Unit,
    Tuple(Vec<Field>),
    Struct(Vec<Field>),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(Vec<Field>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    attrs: Vec<Attr>,
    data: Data,
}

impl Input {
    fn attr(&self, key: &str) -> Option<&Attr> {
        self.attrs.iter().find(|a| a.key == key)
    }
    fn attr_value(&self, key: &str) -> Option<&str> {
        self.attr(key).and_then(|a| a.value.as_deref())
    }
    fn rename(&self, ident: &str) -> String {
        match self.attr_value("rename_all") {
            Some("snake_case") => snake_case(ident),
            Some(other) => panic!("serde stand-in: unsupported rename_all = {other:?}"),
            None => ident.to_string(),
        }
    }
}

fn snake_case(ident: &str) -> String {
    let mut out = String::new();
    for (i, c) in ident.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Consumes leading attributes at `*i`, collecting the contents of
/// `#[serde(...)]` ones and discarding the rest (docs, `#[default]`, ...).
fn take_attrs(tokens: &[TokenTree], i: &mut usize, out: &mut Vec<Attr>) {
    while *i + 1 < tokens.len() {
        let is_hash = matches!(&tokens[*i], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_hash {
            break;
        }
        let TokenTree::Group(g) = &tokens[*i + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    parse_attr_items(args.stream(), out);
                }
            }
        }
        *i += 2;
    }
}

/// Parses `key`, `key = "value"` items separated by commas.
fn parse_attr_items(ts: TokenStream, out: &mut Vec<Attr>) {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        let TokenTree::Ident(id) = &toks[i] else {
            i += 1;
            continue;
        };
        let key = id.to_string();
        i += 1;
        let mut value = None;
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            if let Some(TokenTree::Literal(lit)) = toks.get(i) {
                value = Some(lit.to_string().trim_matches('"').to_string());
                i += 1;
            }
        }
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        out.push(Attr { key, value });
    }
}

/// Skips `pub` / `pub(crate)` / `pub(in path)`.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn default_kind(attrs: &[Attr]) -> DefaultKind {
    for a in attrs {
        match (a.key.as_str(), &a.value) {
            ("skip", _) => return DefaultKind::Skip,
            ("default", Some(path)) => return DefaultKind::Path(path.clone()),
            ("default", None) => return DefaultKind::DefaultTrait,
            _ => {}
        }
    }
    DefaultKind::Required
}

fn skip_ser_if(attrs: &[Attr]) -> Option<String> {
    attrs.iter().find_map(|a| {
        (a.key == "skip_serializing_if")
            .then(|| a.value.clone())
            .flatten()
    })
}

/// Reads type tokens until a comma at angle-bracket depth 0.
fn take_type(tokens: &[TokenTree], i: &mut usize) -> String {
    let mut depth = 0i32;
    let mut ty = String::new();
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    break;
                }
                _ => {}
            }
        }
        if !ty.is_empty() {
            ty.push(' ');
        }
        ty.push_str(&tokens[*i].to_string());
        *i += 1;
    }
    ty
}

fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let mut attrs = Vec::new();
        take_attrs(&toks, &mut i, &mut attrs);
        skip_vis(&toks, &mut i);
        let TokenTree::Ident(name) = &toks[i] else {
            panic!(
                "serde stand-in: expected field name, got {:?}",
                toks[i].to_string()
            )
        };
        let name = name.to_string();
        i += 1;
        assert!(
            matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "serde stand-in: expected ':' after field `{name}`"
        );
        i += 1;
        let ty = take_type(&toks, &mut i);
        fields.push(Field {
            name,
            ty,
            default: default_kind(&attrs),
            skip_ser_if: skip_ser_if(&attrs),
        });
    }
    fields
}

fn parse_tuple_fields(ts: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let mut attrs = Vec::new();
        take_attrs(&toks, &mut i, &mut attrs);
        skip_vis(&toks, &mut i);
        let ty = take_type(&toks, &mut i);
        if ty.is_empty() {
            break;
        }
        fields.push(Field {
            name: fields.len().to_string(),
            ty,
            default: default_kind(&attrs),
            skip_ser_if: skip_ser_if(&attrs),
        });
    }
    fields
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        let mut attrs = Vec::new();
        take_attrs(&toks, &mut i, &mut attrs);
        let TokenTree::Ident(name) = &toks[i] else {
            panic!(
                "serde stand-in: expected variant name, got {:?}",
                toks[i].to_string()
            )
        };
        let name = name.to_string();
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = parse_tuple_fields(g.stream());
                i += 1;
                VariantKind::Tuple(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_input(ts: TokenStream) -> Input {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut attrs = Vec::new();
    take_attrs(&toks, &mut i, &mut attrs);
    skip_vis(&toks, &mut i);
    let TokenTree::Ident(kw) = &toks[i] else {
        panic!("serde stand-in: expected `struct` or `enum`")
    };
    let kw = kw.to_string();
    i += 1;
    let TokenTree::Ident(name) = &toks[i] else {
        panic!("serde stand-in: expected type name")
    };
    let name = name.to_string();
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in: generic types are not supported (deriving on `{name}`)");
    }
    let data = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(parse_tuple_fields(g.stream()))
            }
            other => panic!("serde stand-in: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde stand-in: unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde stand-in: cannot derive on `{other}`"),
    };
    Input { name, attrs, data }
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::NamedStruct(fields) => {
            if input.attr("transparent").is_some() {
                let f = fields
                    .iter()
                    .find(|f| f.default != DefaultKind::Skip)
                    .expect("transparent struct needs a field");
                format!("::serde::Serialize::to_value(&self.{})", f.name)
            } else {
                let mut s = String::from("let mut map = ::serde::Map::new();");
                for f in fields.iter().filter(|f| f.default != DefaultKind::Skip) {
                    let insert = format!(
                        "map.insert(\"{0}\", ::serde::Serialize::to_value(&self.{0}));",
                        f.name
                    );
                    match &f.skip_ser_if {
                        Some(path) => {
                            s.push_str(&format!(" if !{path}(&self.{0}) {{ {insert} }}", f.name))
                        }
                        None => {
                            s.push(' ');
                            s.push_str(&insert);
                        }
                    }
                }
                s.push_str(" ::serde::Value::Object(map)");
                s
            }
        }
        Data::TupleStruct(fields) => {
            if input.attr("transparent").is_some() || fields.len() == 1 {
                String::from("::serde::Serialize::to_value(&self.0)")
            } else {
                let elems: Vec<String> = fields
                    .iter()
                    .map(|f| format!("::serde::Serialize::to_value(&self.{})", f.name))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
            }
        }
        Data::Enum(variants) => {
            let tag = input.attr_value("tag");
            let mut arms = String::new();
            for v in variants {
                let wire = input.rename(&v.name);
                let arm = match (&v.kind, tag) {
                    (VariantKind::Unit, Some(t)) => format!(
                        "{name}::{vn} => {{ let mut map = ::serde::Map::new(); \
                         map.insert(\"{t}\", ::serde::Value::String(\"{wire}\".to_string())); \
                         ::serde::Value::Object(map) }}",
                        vn = v.name
                    ),
                    (VariantKind::Unit, None) => format!(
                        "{name}::{vn} => ::serde::Value::String(\"{wire}\".to_string()),",
                        vn = v.name
                    ),
                    (VariantKind::Struct(fields), Some(t)) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut s = format!(
                            "{name}::{vn} {{ {b} }} => {{ let mut map = ::serde::Map::new(); \
                             map.insert(\"{t}\", ::serde::Value::String(\"{wire}\".to_string()));",
                            vn = v.name,
                            b = binds.join(", ")
                        );
                        for f in fields {
                            let insert = format!(
                                "map.insert(\"{0}\", ::serde::Serialize::to_value({0}));",
                                f.name
                            );
                            match &f.skip_ser_if {
                                Some(path) => {
                                    s.push_str(&format!(" if !{path}({0}) {{ {insert} }}", f.name))
                                }
                                None => {
                                    s.push(' ');
                                    s.push_str(&insert);
                                }
                            }
                        }
                        s.push_str(" ::serde::Value::Object(map) }");
                        s
                    }
                    (VariantKind::Struct(fields), None) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut s = format!(
                            "{name}::{vn} {{ {b} }} => {{ let mut inner = ::serde::Map::new();",
                            vn = v.name,
                            b = binds.join(", ")
                        );
                        for f in fields {
                            let insert = format!(
                                "inner.insert(\"{0}\", ::serde::Serialize::to_value({0}));",
                                f.name
                            );
                            match &f.skip_ser_if {
                                Some(path) => {
                                    s.push_str(&format!(" if !{path}({0}) {{ {insert} }}", f.name))
                                }
                                None => {
                                    s.push(' ');
                                    s.push_str(&insert);
                                }
                            }
                        }
                        s.push_str(&format!(
                            " let mut map = ::serde::Map::new(); \
                             map.insert(\"{wire}\", ::serde::Value::Object(inner)); \
                             ::serde::Value::Object(map) }}"
                        ));
                        s
                    }
                    (VariantKind::Tuple(fields), None) => {
                        let binds: Vec<String> =
                            (0..fields.len()).map(|k| format!("f{k}")).collect();
                        let inner = if fields.len() == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        format!(
                            "{name}::{vn}({b}) => {{ let mut map = ::serde::Map::new(); \
                             map.insert(\"{wire}\", {inner}); ::serde::Value::Object(map) }}",
                            vn = v.name,
                            b = binds.join(", ")
                        )
                    }
                    (VariantKind::Tuple(_), Some(_)) => panic!(
                        "serde stand-in: tuple variant `{}::{}` not supported with tag",
                        name, v.name
                    ),
                };
                arms.push_str(&arm);
                arms.push(' ');
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

/// Expression producing one field's value from a map binding `obj`,
/// inside a function returning `Result<_, ::serde::Error>`.
fn field_expr(container: &str, f: &Field) -> String {
    if f.default == DefaultKind::Skip {
        return String::from("::std::default::Default::default()");
    }
    let missing = match &f.default {
        DefaultKind::Skip => unreachable!(),
        DefaultKind::DefaultTrait => String::from("::std::default::Default::default()"),
        DefaultKind::Path(path) => format!("{path}()"),
        DefaultKind::Required if f.is_option() => String::from("::std::option::Option::None"),
        DefaultKind::Required => format!(
            "return Err(::serde::Error::custom(\"missing field `{fname}` in {container}\"))",
            fname = f.name
        ),
    };
    format!(
        "match obj.get(\"{fname}\") {{ \
         Some(x) => match ::serde::Deserialize::from_value(x) {{ \
           Ok(val) => val, \
           Err(e) => return Err(::serde::Error::custom(format!(\"{container}.{fname}: {{}}\", e))) }}, \
         None => {missing} }}",
        fname = f.name
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = if let Some(repr) = input.attr_value("try_from") {
        format!(
            "let repr: {repr} = ::serde::Deserialize::from_value(v)?; \
             match <Self as ::std::convert::TryFrom<{repr}>>::try_from(repr) {{ \
               Ok(x) => Ok(x), \
               Err(e) => Err(::serde::Error::custom(format!(\"{name}: {{}}\", e))) }}"
        )
    } else {
        match &input.data {
            Data::NamedStruct(fields) => {
                if input.attr("transparent").is_some() {
                    let inner = fields
                        .iter()
                        .find(|f| f.default != DefaultKind::Skip)
                        .expect("transparent struct needs a field");
                    let others: Vec<String> = fields
                        .iter()
                        .filter(|f| f.name != inner.name)
                        .map(|f| format!("{}: ::std::default::Default::default()", f.name))
                        .collect();
                    let rest = if others.is_empty() {
                        String::new()
                    } else {
                        format!(", {}", others.join(", "))
                    };
                    format!(
                        "Ok({name} {{ {fname}: ::serde::Deserialize::from_value(v)?{rest} }})",
                        fname = inner.name
                    )
                } else {
                    let mut s = format!(
                        "let obj = match v.as_object() {{ Some(o) => o, \
                         None => return Err(::serde::Error::custom(format!(\
                         \"expected object for {name}, got {{}}\", v.kind()))) }}; \
                         Ok({name} {{ "
                    );
                    for (k, f) in fields.iter().enumerate() {
                        if k > 0 {
                            s.push_str(", ");
                        }
                        s.push_str(&format!("{}: {}", f.name, field_expr(name, f)));
                    }
                    s.push_str(" })");
                    s
                }
            }
            Data::TupleStruct(fields) => {
                if fields.len() == 1 {
                    format!("::serde::Deserialize::from_value(v).map({name})")
                } else {
                    let mut s = format!(
                        "let arr = match v.as_array() {{ Some(a) if a.len() == {n} => a, \
                         _ => return Err(::serde::Error::custom(\
                         \"expected {n}-element array for {name}\")) }}; Ok({name}(",
                        n = fields.len()
                    );
                    for k in 0..fields.len() {
                        if k > 0 {
                            s.push_str(", ");
                        }
                        s.push_str(&format!("::serde::Deserialize::from_value(&arr[{k}])?"));
                    }
                    s.push_str("))");
                    s
                }
            }
            Data::Enum(variants) => {
                if let Some(tag) = input.attr_value("tag") {
                    gen_de_tagged_enum(input, variants, tag)
                } else {
                    gen_de_external_enum(input, variants)
                }
            }
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
         {body} }} }}"
    )
}

fn struct_variant_ctor(enum_name: &str, v: &Variant, fields: &[Field]) -> String {
    let ctx = format!("{enum_name}::{}", v.name);
    let mut s = format!("Ok({enum_name}::{} {{ ", v.name);
    for (k, f) in fields.iter().enumerate() {
        if k > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("{}: {}", f.name, field_expr(&ctx, f)));
    }
    s.push_str(" })");
    s
}

fn gen_de_tagged_enum(input: &Input, variants: &[Variant], tag: &str) -> String {
    let name = &input.name;
    let mut arms = String::new();
    for v in variants {
        let wire = input.rename(&v.name);
        let arm = match &v.kind {
            VariantKind::Unit => format!("\"{wire}\" => Ok({name}::{}),", v.name),
            VariantKind::Struct(fields) => {
                format!(
                    "\"{wire}\" => {{ {} }}",
                    struct_variant_ctor(name, v, fields)
                )
            }
            VariantKind::Tuple(_) => panic!(
                "serde stand-in: tuple variant `{name}::{}` not supported with tag",
                v.name
            ),
        };
        arms.push_str(&arm);
        arms.push(' ');
    }
    format!(
        "let obj = match v.as_object() {{ Some(o) => o, \
         None => return Err(::serde::Error::custom(format!(\
         \"expected object for {name}, got {{}}\", v.kind()))) }}; \
         let tag = match obj.get(\"{tag}\").and_then(|t| t.as_str()) {{ \
           Some(t) => t, \
           None => return Err(::serde::Error::custom(\
           \"missing or non-string tag `{tag}` for {name}\")) }}; \
         match tag {{ {arms} \
           other => Err(::serde::Error::custom(format!(\
           \"unknown {name} variant `{{}}`\", other))) }}"
    )
}

fn gen_de_external_enum(input: &Input, variants: &[Variant]) -> String {
    let name = &input.name;
    let mut unit_arms = String::new();
    let mut keyed_arms = String::new();
    for v in variants {
        let wire = input.rename(&v.name);
        match &v.kind {
            VariantKind::Unit => {
                unit_arms.push_str(&format!("\"{wire}\" => Ok({name}::{}),", v.name));
                unit_arms.push(' ');
            }
            VariantKind::Struct(fields) => {
                keyed_arms.push_str(&format!(
                    "\"{wire}\" => {{ let obj = match inner.as_object() {{ Some(o) => o, \
                     None => return Err(::serde::Error::custom(format!(\
                     \"expected object for {name}::{vn}, got {{}}\", inner.kind()))) }}; {ctor} }}",
                    vn = v.name,
                    ctor = struct_variant_ctor(name, v, fields)
                ));
                keyed_arms.push(' ');
            }
            VariantKind::Tuple(fields) => {
                let ctor = if fields.len() == 1 {
                    format!(
                        "match ::serde::Deserialize::from_value(inner) {{ \
                         Ok(x) => Ok({name}::{vn}(x)), \
                         Err(e) => Err(::serde::Error::custom(format!(\
                         \"{name}::{vn}: {{}}\", e))) }}",
                        vn = v.name
                    )
                } else {
                    let n = fields.len();
                    let mut s = format!(
                        "{{ let arr = match inner.as_array() {{ Some(a) if a.len() == {n} => a, \
                         _ => return Err(::serde::Error::custom(\
                         \"expected {n}-element array for {name}::{vn}\")) }}; Ok({name}::{vn}(",
                        vn = v.name
                    );
                    for k in 0..n {
                        if k > 0 {
                            s.push_str(", ");
                        }
                        s.push_str(&format!("::serde::Deserialize::from_value(&arr[{k}])?"));
                    }
                    s.push_str(")) }");
                    s
                };
                keyed_arms.push_str(&format!("\"{wire}\" => {ctor}"));
                keyed_arms.push(' ');
            }
        }
    }
    format!(
        "match v {{ \
         ::serde::Value::String(s) => match s.as_str() {{ {unit_arms} \
           other => Err(::serde::Error::custom(format!(\
           \"unknown {name} variant `{{}}`\", other))) }}, \
         ::serde::Value::Object(m) if m.len() == 1 => {{ \
           let (key, inner) = m.iter().next().expect(\"len checked\"); \
           match key.as_str() {{ {keyed_arms} \
             other => Err(::serde::Error::custom(format!(\
             \"unknown {name} variant `{{}}`\", other))) }} }}, \
         other => Err(::serde::Error::custom(format!(\
         \"expected string or single-key object for {name}, got {{}}\", other.kind()))) }}"
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

fn emit(src: String) -> TokenStream {
    src.parse()
        .unwrap_or_else(|e| panic!("serde stand-in: generated code failed to parse: {e}\n{src}"))
}

/// Derives the value-based `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    let input = parse_input(item);
    emit(gen_serialize(&input))
}

/// Derives the value-based `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    let input = parse_input(item);
    emit(gen_deserialize(&input))
}
