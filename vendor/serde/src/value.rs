//! The in-memory JSON value model shared by the `serde` and `serde_json`
//! stand-ins.

use std::fmt;
use std::ops::Index;

/// A JSON number: unsigned/signed integer or float, like `serde_json`'s.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// Returns the value as an `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    /// Returns the value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// Returns the value as an `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            // Mixed integer/float comparisons go through f64, matching how
            // JSON itself has a single number type.
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// An insertion-ordered string→value map, so objects print their keys in
/// the order fields were serialized (struct declaration order, tag first
/// for tagged enums).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts a key, replacing (in place) any existing entry with the same
    /// key. Returns the previous value, if any.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Returns `true` if the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Short name of the value's JSON type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Returns the bool if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the number as `f64` if this is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Returns the number as `u64` if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Returns the number as `i64` if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Returns the string slice if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the element vector if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the map if this is an `Object`.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Returns `true` if this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup that returns `None` on non-objects or missing
    /// keys (mirrors `serde_json::Value::get`).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl Index<&str> for Value {
    type Output = Value;
    /// Indexing a non-object or a missing key yields `Null`, like
    /// `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Number(Number::Float(f))
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(Number::PosInt(n))
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        if n >= 0 {
            Value::Number(Number::PosInt(n as u64))
        } else {
            Value::Number(Number::NegInt(n))
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON, matching the `serde_json` stand-in's `to_string`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(Number::PosInt(n)) => write!(f, "{n}"),
            Value::Number(Number::NegInt(n)) => write!(f, "{n}"),
            Value::Number(Number::Float(x)) => {
                if x.is_finite() {
                    // `{:?}` prints the shortest string that round-trips,
                    // always with a decimal point or exponent.
                    write!(f, "{x:?}")
                } else {
                    f.write_str("null")
                }
            }
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes a JSON string literal with escapes.
pub(crate) fn write_json_string(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z", Value::from(1u64));
        m.insert("a", Value::from(2u64));
        let keys: Vec<_> = m.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn display_is_compact_json() {
        let mut m = Map::new();
        m.insert("type", Value::from("mixture"));
        m.insert("w", Value::from(0.5));
        let v = Value::Object(m);
        assert_eq!(v.to_string(), r#"{"type":"mixture","w":0.5}"#);
    }

    #[test]
    fn float_display_roundtrips() {
        assert_eq!(Value::from(1.0).to_string(), "1.0");
        assert_eq!(Value::from(0.1).to_string(), "0.1");
        assert_eq!(Value::from(1e-6).to_string(), "1e-6");
    }

    #[test]
    fn index_missing_is_null() {
        let v = Value::Null;
        assert!(v["nope"].is_null());
        assert!(v[3].is_null());
    }
}
