//! Offline stand-in for `serde`, specialized to this repository's needs.
//!
//! Real `serde` decouples data structures from data formats through a
//! visitor API. This repository only ever serializes to and from JSON, so
//! the stand-in collapses the model: [`Serialize`] converts a value into an
//! in-memory JSON [`Value`], and [`Deserialize`] reconstructs a value from
//! one. The `serde_derive` companion proc-macro generates impls for the
//! container attributes the simulator uses (`default`, `tag`,
//! `rename_all`, `transparent`, `try_from`, `skip`).
//!
//! The `serde_json` stand-in builds its string parsing/printing on top of
//! this [`Value`] type.

#![forbid(unsafe_code)]

use std::fmt;

mod value;

pub use value::{Map, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Error produced when deserialization fails.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an error describing the first shape or type mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserialization helpers, mirroring `serde::de`.
pub mod de {
    /// Owned deserialization — with a value-based model every
    /// [`Deserialize`](crate::Deserialize) is already owned.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {}", v.kind())))
    }
}

fn int_from_value(v: &Value) -> Result<i128, Error> {
    match v {
        Value::Number(Number::PosInt(n)) => Ok(*n as i128),
        Value::Number(Number::NegInt(n)) => Ok(*n as i128),
        Value::Number(Number::Float(f)) if f.fract() == 0.0 && f.is_finite() => Ok(*f as i128),
        _ => Err(Error::custom(format!("expected integer, got {}", v.kind()))),
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = int_from_value(v)?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {}", v.kind())))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {}", v.kind())))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {}", v.kind())))?;
        arr.iter().map(T::from_value).collect()
    }
}

fn tuple_slice<const N: usize>(v: &Value) -> Result<&[Value], Error> {
    let arr = v
        .as_array()
        .ok_or_else(|| Error::custom(format!("expected {N}-element array, got {}", v.kind())))?;
    if arr.len() != N {
        return Err(Error::custom(format!(
            "expected {N}-element array, got {} elements",
            arr.len()
        )));
    }
    Ok(arr)
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = tuple_slice::<2>(v)?;
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = tuple_slice::<3>(v)?;
        Ok((
            A::from_value(&a[0])?,
            B::from_value(&a[1])?,
            C::from_value(&a[2])?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"x".to_value()).unwrap(), "x");
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            <(f64, String)>::from_value(&(2.0, "y".to_string()).to_value())
                .unwrap()
                .1,
            "y"
        );
    }

    #[test]
    fn int_range_checks() {
        assert!(u8::from_value(&300u64.to_value()).is_err());
        assert!(u32::from_value(&(-1i64).to_value()).is_err());
    }

    #[test]
    fn float_accepts_integers() {
        assert_eq!(f64::from_value(&7u64.to_value()).unwrap(), 7.0);
    }
}
