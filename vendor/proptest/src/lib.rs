//! Offline stand-in for `proptest`.
//!
//! Provides the `proptest! { #[test] fn name(x in strategy, ...) { ... } }`
//! macro surface with deterministic pseudo-random case generation: each
//! test runs a fixed number of cases seeded from the test's path, so runs
//! are reproducible without any external dependency. Shrinking is not
//! implemented — a failing case reports its case index and assertion
//! message instead.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Number of generated cases per property.
pub fn default_cases() -> u64 {
    64
}

/// Deterministic generator used to drive strategies (splitmix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator from a test name and case index.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E3779B97F4A7C15),
        }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, span)` via multiply-shift.
    fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of pseudo-random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

// --- ranges ---------------------------------------------------------------

macro_rules! uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

// --- any::<T>() -----------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// --- tuples ---------------------------------------------------------------

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

// --- collections ----------------------------------------------------------

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Builds a `Vec` strategy.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeSet<T>` with a target size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.clone().generate(rng);
            let mut set = BTreeSet::new();
            // Duplicates don't grow the set; cap the attempts so a small
            // value domain cannot loop forever.
            let mut attempts = 0;
            while set.len() < target && attempts < 64 * target.max(1) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            if set.is_empty() && self.size.start > 0 {
                set.insert(self.element.generate(rng));
            }
            set
        }
    }

    /// Builds a `BTreeSet` strategy.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Arbitrary, Strategy};
}

/// Declares property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` item expands to a
/// `#[test]`-compatible function running [`default_cases`] deterministic
/// cases. Use [`prop_assert!`]/[`prop_assert_eq!`] inside the body.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let total = $crate::default_cases();
                for case in 0..total {
                    let mut proptest_rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $pat = $crate::Strategy::generate(&($strat), &mut proptest_rng);
                    )+
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(message) = outcome {
                        panic!(
                            "proptest {} failed on case {case}/{total}: {message}",
                            stringify!($name)
                        );
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!("assertion failed: {:?} != {:?}", l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!($($fmt)+));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The harness runs, ranges respect bounds, tuples compose.
        #[test]
        fn harness_smoke(
            x in 3u64..10,
            pair in (any::<bool>(), 0u32..6),
            mut xs in crate::collection::vec(0.0f64..1.0, 1..20),
            set in crate::collection::btree_set(1u32..40, 1..10),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(pair.1 < 6);
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert!(!xs.is_empty() && xs[0] >= 0.0);
            prop_assert!(!set.is_empty(), "min size 1 honored");
            prop_assert!(set.iter().all(|v| (1..40).contains(v)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_case("t", 0);
        let mut b = crate::TestRng::for_case("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
