//! A minimal scoped thread pool for coarse-grained, CPU-bound task batches.
//!
//! This is the repository's vendored stand-in for an external thread-pool
//! crate (rayon/crossbeam are unavailable in the offline build environment;
//! see the workspace `vendor/` policy in DESIGN.md). It supplies exactly
//! what the µqSim sweep runner needs and nothing more:
//!
//! * **Scoped borrows** — tasks may borrow from the caller's stack
//!   (configs, load tables); everything is built on [`std::thread::scope`],
//!   so no `'static` bounds and no `unsafe`.
//! * **Dynamic work claiming** — workers claim the next unstarted task from
//!   a shared atomic cursor, so long and short tasks load-balance the same
//!   way a work-stealing deque would for an indexed batch, without the
//!   per-worker queues (batch items here are whole simulator runs lasting
//!   milliseconds to minutes, so queue-management overhead is irrelevant).
//! * **Ordered, jobs-independent results** — results land in the slot of
//!   the task that produced them. `run(tasks)` returns `Vec<T>` in task
//!   order regardless of worker count or scheduling, which is what makes
//!   the sweep engine's aggregated output byte-identical at any `--jobs`.
//! * **Panic propagation** — a panicking task does not abort the batch
//!   mid-flight: remaining tasks still execute, then the payload of the
//!   panic from the lowest-indexed panicking task is re-raised in the
//!   caller (deterministic choice, again independent of scheduling).
//!
//! # Examples
//!
//! ```
//! let inputs = vec![1u64, 2, 3, 4, 5];
//! let pool = minipool::Pool::new(4);
//! // Borrow `inputs` from the enclosing scope — no 'static, no Arc.
//! let squares = pool.map(&inputs, |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of usable worker threads on this machine
/// ([`std::thread::available_parallelism`], falling back to 1).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A fixed-width scoped thread pool.
///
/// `Pool` itself holds no OS threads: each [`Pool::run`] call spawns up to
/// `jobs` scoped workers for the duration of that batch and joins them
/// before returning. For the intended workload — batches of independent
/// discrete-event simulator runs — thread spawn cost (microseconds) is
/// noise against task cost (milliseconds to minutes), and the scoped
/// design is what lets tasks borrow the caller's data safely.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    jobs: usize,
}

impl Pool {
    /// Creates a pool that runs batches on up to `jobs` worker threads.
    /// `jobs == 0` is treated as 1. With `jobs == 1` batches run inline on
    /// the caller's thread (no threads spawned), giving exactly serial
    /// semantics.
    pub fn new(jobs: usize) -> Self {
        Pool { jobs: jobs.max(1) }
    }

    /// A pool sized to [`available_jobs`].
    pub fn with_available_jobs() -> Self {
        Pool::new(available_jobs())
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Executes every task, returning results in task order.
    ///
    /// Results are independent of the worker count and of scheduling: task
    /// `i`'s result is always element `i`. If any task panics, every other
    /// task still runs to completion, and then the panic payload of the
    /// lowest-indexed panicking task is resumed on the caller's thread.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<std::thread::Result<T>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);

        let worker = || {
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let task = slots[i]
                    .lock()
                    .expect("task slot poisoned")
                    .take()
                    .expect("task claimed twice");
                // Catch so one panicking run cannot tear down siblings that
                // are mid-flight; the payload is re-raised by the caller.
                let outcome = catch_unwind(AssertUnwindSafe(task));
                *results[i].lock().expect("result slot poisoned") = Some(outcome);
            }
        };

        let workers = self.jobs.min(n);
        if workers <= 1 {
            worker();
        } else {
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(worker);
                }
            });
        }

        let mut out = Vec::with_capacity(n);
        for slot in results {
            let outcome = slot
                .into_inner()
                .expect("result slot poisoned")
                .expect("worker exited before finishing a claimed task");
            match outcome {
                Ok(v) => out.push(v),
                Err(payload) => resume_unwind(payload),
            }
        }
        out
    }

    /// Applies `f` to every element of `items` in parallel, preserving
    /// order. Sugar over [`Pool::run`] for the borrow-a-slice case.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        let f = &f;
        self.run((0..items.len()).map(|i| move || f(&items[i])).collect())
    }

    /// Runs `f` for every index in `0..n` in parallel, preserving order.
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let f = &f;
        self.run((0..n).map(|i| move || f(i)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_preserve_task_order_at_any_width() {
        let serial: Vec<usize> = Pool::new(1).map_indexed(64, |i| i * 3);
        for jobs in [2, 3, 8, 64, 200] {
            let parallel = Pool::new(jobs).map_indexed(64, |i| i * 3);
            assert_eq!(serial, parallel, "jobs={jobs} reordered results");
        }
    }

    #[test]
    fn tasks_borrow_from_the_callers_scope() {
        let data: Vec<u64> = (0..100).collect();
        let total = AtomicU64::new(0);
        let out = Pool::new(4).map(&data, |&x| {
            total.fetch_add(x, Ordering::Relaxed);
            x + 1
        });
        assert_eq!(out.len(), 100);
        assert_eq!(total.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn zero_jobs_behaves_as_one() {
        assert_eq!(Pool::new(0).jobs(), 1);
        assert_eq!(Pool::new(0).map_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<u8> = Pool::new(8).run(Vec::<fn() -> u8>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        assert_eq!(Pool::new(32).map_indexed(2, |i| i), vec![0, 1]);
    }

    #[test]
    fn panic_in_task_propagates_to_caller() {
        let outcome = catch_unwind(|| {
            Pool::new(4).map_indexed(8, |i| {
                if i == 5 {
                    panic!("task 5 exploded");
                }
                i
            })
        });
        let payload = outcome.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("task 5 exploded"), "payload was: {msg}");
    }

    #[test]
    fn lowest_indexed_panic_wins_deterministically() {
        for jobs in [1, 2, 8] {
            let outcome = catch_unwind(|| {
                Pool::new(jobs).map_indexed(16, |i| {
                    if i % 3 == 2 {
                        panic!("boom at {i}");
                    }
                    i
                })
            });
            let payload = outcome.expect_err("panic must propagate");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert_eq!(msg, "boom at 2", "jobs={jobs}");
        }
    }

    #[test]
    fn other_tasks_complete_despite_a_panic() {
        let done = AtomicU64::new(0);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            Pool::new(3).map_indexed(10, |i| {
                if i == 0 {
                    panic!("early");
                }
                done.fetch_add(1, Ordering::Relaxed);
            })
        }));
        assert_eq!(done.load(Ordering::Relaxed), 9, "non-panicking tasks ran");
    }
}
