//! Quickstart: build a one-service scenario from scratch with the
//! programmatic API, run it at a few loads, and print the load–latency
//! curve.
//!
//! ```text
//! cargo run --release -p uqsim-examples --example quickstart
//! ```

use uqsim_core::builder::{ExecSpec, ScenarioBuilder};
use uqsim_core::client::ClientSpec;
use uqsim_core::dist::Distribution;
use uqsim_core::ids::{PathNodeId, StageId};
use uqsim_core::machine::MachineSpec;
use uqsim_core::path::{PathNodeSpec, RequestType};
use uqsim_core::service::{ExecPath, ServiceModel};
use uqsim_core::stage::{QueueDiscipline, ServiceTimeModel, StageSpec};
use uqsim_core::time::SimDuration;
use uqsim_core::{SimResult, Simulator};

/// Builds an epoll-fronted "api" service on two dedicated cores.
fn build(qps: f64) -> SimResult<Simulator> {
    let mut b = ScenarioBuilder::new(42);
    b.warmup(SimDuration::from_millis(500));

    // A Xeon-like machine: DVFS 1.2-2.6 GHz, 4 irq cores (Table II).
    let machine = b.add_machine(MachineSpec::xeon("server0", 6));

    // Two stages: epoll (batched event harvesting) + the request handler.
    let api = b.add_service(ServiceModel::new(
        "api",
        vec![
            StageSpec::new(
                "epoll",
                QueueDiscipline::Epoll { batch_per_conn: 16 },
                ServiceTimeModel::batched(
                    Distribution::constant(5e-6),
                    Distribution::exponential(2e-6),
                    2.6,
                ),
            ),
            StageSpec::new(
                "handler",
                QueueDiscipline::Single,
                ServiceTimeModel::per_job(Distribution::exponential(80e-6), 2.6),
            ),
        ],
        vec![ExecPath::new(
            "default",
            vec![StageId::from_raw(0), StageId::from_raw(1)],
        )],
    ));
    let inst = b.add_instance("api0", api, machine, 2, ExecSpec::Simple)?;

    // Request path: client → api → client.
    let mut front = PathNodeSpec::request("api", api, inst);
    front.children = vec![PathNodeId::from_raw(1)];
    let sink = PathNodeSpec::client_sink(PathNodeId::from_raw(0));
    let ty = b.add_request_type(RequestType::new(
        "get",
        vec![front, sink],
        PathNodeId::from_raw(0),
    ))?;

    // An open-loop client like wrk2.
    b.add_client(ClientSpec::open_loop("wrk2", qps, 128, ty), vec![inst]);
    b.build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>12} {:>13} {:>9} {:>9} {:>9}",
        "offered_qps", "achieved_qps", "mean_us", "p95_us", "p99_us"
    );
    for qps in [2_000.0, 8_000.0, 14_000.0, 20_000.0, 23_000.0] {
        let mut sim = build(qps)?;
        sim.run_for(SimDuration::from_secs(4));
        let s = sim.latency_summary();
        let achieved = s.count as f64 / 3.5; // 4s minus 0.5s warmup
        println!(
            "{:>12.0} {:>13.0} {:>9.1} {:>9.1} {:>9.1}",
            qps,
            achieved,
            s.mean * 1e6,
            s.p95 * 1e6,
            s.p99 * 1e6
        );
    }
    println!("\nTwo cores at ~85us/request saturate near 23 kQPS; watch the tail blow up there.");
    Ok(())
}
