//! QoS-aware power management (the paper's §V-B): Algorithm 1 drives
//! per-tier DVFS of the 2-tier application under a diurnal load, keeping
//! the end-to-end p99 under a 5 ms target while lowering frequencies when
//! there is slack.
//!
//! ```text
//! cargo run --release -p uqsim-examples --example power_management
//! ```

use uqsim_apps::scenarios::{two_tier, TwoTierConfig};
use uqsim_core::client::{ArrivalProcess, RateSchedule};
use uqsim_core::time::SimDuration;
use uqsim_power::{PowerManager, PowerManagerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let interval = SimDuration::from_millis(100);
    let mut cfg = TwoTierConfig::at_qps(40_000.0);
    cfg.arrivals = ArrivalProcess::Poisson {
        schedule: RateSchedule::diurnal(8_000.0, 40_000.0, 30.0, 12),
    };
    cfg.common.window = Some(interval);
    let mut sim = two_tier(&cfg)?;

    let nginx = sim.instance_by_name("nginx").expect("deployed");
    let mc = sim.instance_by_name("memcached").expect("deployed");
    let (manager, trace) = PowerManager::new(PowerManagerConfig {
        qos_target_s: 5e-3,
        interval,
        tiers: vec![nginx, mc],
        levels_ghz: (0..15).map(|i| 1.2 + 0.1 * i as f64).collect(),
        ..PowerManagerConfig::default()
    });
    sim.add_controller(Box::new(manager));
    sim.run_for(SimDuration::from_secs(60));

    println!(
        "{:>8} {:>9} {:>9} {:>9} {:>9}",
        "time_s", "p99_ms", "f_nginx", "f_mc", "violated"
    );
    for e in trace.entries().iter().step_by(20).filter(|e| e.samples > 0) {
        println!(
            "{:>8.1} {:>9.3} {:>9.1} {:>9.1} {:>9}",
            e.time.as_secs_f64(),
            e.e2e_p99 * 1e3,
            e.freqs_ghz[0],
            e.freqs_ghz[1],
            if e.violated { "YES" } else { "" }
        );
    }
    println!(
        "\nQoS target 5ms | violation rate: {:.1}% | final freqs: nginx {:.1} GHz, memcached {:.1} GHz",
        trace.violation_rate() * 100.0,
        sim.instance_freq(nginx),
        sim.instance_freq(mc),
    );
    println!(
        "Frequencies drop in the diurnal trough and rise toward the peak; the\n\
         discrete DVFS levels keep the converged tail well below the 5ms target."
    );
    Ok(())
}
