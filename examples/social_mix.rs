//! The full social network with the paper's complete action set: reads
//! (cache hit and miss), composes (writes), and profile browses — plus the
//! observability features: per-request-type latency breakdowns and sampled
//! distributed-style traces.
//!
//! ```text
//! cargo run --release -p uqsim-examples --example social_mix
//! ```

use uqsim_apps::scenarios::{social_network_full, SocialNetworkFullConfig};
use uqsim_core::time::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SocialNetworkFullConfig::at_qps(3_500.0);
    let mut sim = social_network_full(&cfg)?;
    sim.enable_tracing(2_000, 4);
    sim.run_for(SimDuration::from_secs(5));

    println!("mix: 65% read, 15% read-miss, 15% compose, 5% browse @ 3.5 kQPS\n");
    println!(
        "{:>16} {:>8} {:>9} {:>9} {:>9}",
        "request type", "count", "mean_us", "p50_us", "p99_us"
    );
    for name in ["read_post", "read_post_miss", "compose_post", "browse_user"] {
        let ty = sim.request_type_by_name(name).expect("type registered");
        let s = sim.type_latency_summary(ty);
        println!(
            "{:>16} {:>8} {:>9.0} {:>9.0} {:>9.0}",
            name,
            s.count,
            s.mean * 1e6,
            s.p50 * 1e6,
            s.p99 * 1e6
        );
    }

    println!("\nper-tier p99 residency (us):");
    for name in ["frontend", "user", "post", "media", "mongod", "disk"] {
        let id = sim.instance_by_name(name).expect("tier deployed");
        println!(
            "  {:>9}: {:>8.0}",
            name,
            sim.instance_residency(id).p99 * 1e6
        );
    }

    println!("\nsampled traces (one span per path node):");
    for t in sim.traces() {
        println!(
            "  {} [{:.0}us total]",
            t.request_type,
            (t.completed - t.submitted).as_micros_f64()
        );
        for span in &t.spans {
            println!(
                "    {:>10} @ {:<10} {:>7.0}us",
                span.node,
                span.instance,
                (span.exit - span.enter).as_micros_f64()
            );
        }
    }
    println!("\nCache misses pay a ~2.5ms disk read inside the post service's blocked worker;");
    println!("watch read_post_miss's p50 sit milliseconds above read_post's.");
    Ok(())
}
