//! Tail at scale (the paper's §V-A): fan one request out to every server
//! of a growing cluster where a small fraction of servers is 10× slower,
//! and watch the p99 get pinned by the stragglers.
//!
//! ```text
//! cargo run --release -p uqsim-examples --example fanout_tail
//! ```

use uqsim_apps::scenarios::{tail_at_scale, TailAtScaleConfig};
use uqsim_core::time::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("one-stage leaves, exp(1ms) service; slow leaves are 10x; request waits for ALL\n");
    println!(
        "{:>9} {:>11} {:>9} {:>9}",
        "cluster", "slow_frac", "mean_ms", "p99_ms"
    );
    for &n in &[10usize, 50, 200] {
        for &frac in &[0.0, 0.01, 0.05] {
            let cfg = TailAtScaleConfig::new(n, frac, 60.0);
            let mut sim = tail_at_scale(&cfg)?;
            sim.run_for(SimDuration::from_secs(6));
            let s = sim.latency_summary();
            println!(
                "{:>9} {:>11.2} {:>9.2} {:>9.2}",
                n,
                frac,
                s.mean * 1e3,
                s.p99 * 1e3
            );
        }
        println!();
    }
    println!("At 200 servers even 1% slow machines dominate the tail — Dean & Barroso's effect.");
    Ok(())
}
