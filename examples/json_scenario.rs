//! Declarative configuration: run the same scenario the `uqsim` CLI runs,
//! entirely from JSON (the paper's Table I inputs), from inside a program.
//!
//! ```text
//! cargo run --release -p uqsim-examples --example json_scenario
//! ```

use uqsim_core::config::ScenarioConfig;
use uqsim_core::time::SimDuration;

/// The 2-tier NGINX→memcached scenario shipped with the CLI.
const TWO_TIER: &str = include_str!("../crates/cli/configs/two_tier.json");

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ScenarioConfig::from_json(TWO_TIER)?;
    println!(
        "loaded scenario: {} machines, {} services, {} instances, {} request types",
        cfg.machines.len(),
        cfg.services.len(),
        cfg.instances.len(),
        cfg.request_types.len()
    );

    let mut sim = cfg.build()?;
    sim.run_for(SimDuration::from_secs(5));

    let s = sim.latency_summary();
    println!("\nafter 5 simulated seconds at 20 kQPS:");
    println!("  completed: {}", sim.completed());
    println!(
        "  latency: mean {:.3}ms p50 {:.3}ms p99 {:.3}ms",
        s.mean * 1e3,
        s.p50 * 1e3,
        s.p99 * 1e3
    );
    let nginx = sim.instance_by_name("nginx").expect("deployed");
    let mc = sim.instance_by_name("memcached").expect("deployed");
    println!(
        "  utilization: nginx {:.0}%, memcached {:.0}%",
        sim.instance_utilization(nginx) * 100.0,
        sim.instance_utilization(mc) * 100.0
    );
    println!(
        "\nEdit crates/cli/configs/two_tier.json and re-run — no recompilation of models needed."
    );
    Ok(())
}
