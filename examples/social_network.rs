//! The end-to-end social network of the paper's Fig. 11: a Thrift frontend
//! fans out to User and Post services (each fronting memcached),
//! synchronizes their replies, consults the Media service, and responds.
//!
//! Demonstrates fan-out, fan-in synchronization, connection pools, and
//! synchronous-RPC thread blocking — all at once.
//!
//! ```text
//! cargo run --release -p uqsim-examples --example social_network
//! ```

use uqsim_apps::scenarios::{social_network, SocialNetworkConfig};
use uqsim_core::time::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("read-post flow: client -> frontend -> {{user, post}} -> join -> media -> reply\n");
    println!(
        "{:>12} {:>13} {:>9} {:>9} {:>9}  per-tier p99 (us)",
        "offered_qps", "achieved_qps", "mean_us", "p50_us", "p99_us"
    );
    for qps in [2_000.0, 8_000.0, 16_000.0, 24_000.0, 32_000.0] {
        let cfg = SocialNetworkConfig::at_qps(qps);
        let mut sim = social_network(&cfg)?;
        sim.run_for(SimDuration::from_secs(4));
        let s = sim.latency_summary();
        let achieved = s.count as f64 / 3.0;
        let tier_p99: Vec<String> = ["frontend", "user", "post", "media"]
            .iter()
            .map(|name| {
                let id = sim.instance_by_name(name).expect("tier deployed");
                format!("{}={:.0}", name, sim.instance_residency(id).p99 * 1e6)
            })
            .collect();
        println!(
            "{:>12.0} {:>13.0} {:>9.1} {:>9.1} {:>9.1}  {}",
            qps,
            achieved,
            s.mean * 1e6,
            s.p50 * 1e6,
            s.p99 * 1e6,
            tier_p99.join(" ")
        );
    }
    println!(
        "\nThe frontend runs two sequential synchronous phases per request, so its\n\
         blocked worker threads cap throughput well before its cores saturate."
    );
    Ok(())
}
