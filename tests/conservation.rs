//! Conservation and leak-freedom: requests and jobs are never lost or
//! duplicated, connection pools never leak, and in-flight work is bounded
//! by the configured concurrency limits — across every scenario topology.

use uqsim_apps::scenarios::{
    fanout, social_network, three_tier, two_tier, FanoutConfig, SocialNetworkConfig,
    ThreeTierConfig, TwoTierConfig,
};
use uqsim_core::time::SimDuration;
use uqsim_core::Simulator;

fn check_conservation(mut sim: Simulator, name: &str, max_inflight: usize) {
    sim.run_for(SimDuration::from_secs(3));
    let generated = sim.generated();
    let completed = sim.completed();
    let live = sim.live_requests() as u64;
    assert_eq!(
        generated,
        completed + live,
        "{name}: generated = completed + live violated ({generated} != {completed} + {live})"
    );
    assert!(
        sim.live_requests() <= max_inflight,
        "{name}: in-flight {} exceeds client concurrency bound {max_inflight}",
        sim.live_requests()
    );
    assert!(completed > 0, "{name}: nothing completed");
}

#[test]
fn two_tier_conserves_below_saturation() {
    check_conservation(
        two_tier(&TwoTierConfig::at_qps(30_000.0)).unwrap(),
        "two_tier",
        320,
    );
}

#[test]
fn two_tier_conserves_in_overload() {
    // Overload: the client conns bound the launched in-flight work; the
    // remainder queues on connections, still accounted as live.
    let mut sim = two_tier(&TwoTierConfig::at_qps(120_000.0)).unwrap();
    sim.run_for(SimDuration::from_secs(2));
    assert_eq!(
        sim.generated(),
        sim.completed() + sim.live_requests() as u64
    );
}

#[test]
fn three_tier_conserves_with_probabilistic_paths() {
    check_conservation(
        three_tier(&ThreeTierConfig::at_qps(2_500.0)).unwrap(),
        "three_tier",
        320,
    );
}

#[test]
fn fanout_conserves_with_fan_in_joins() {
    check_conservation(
        fanout(&FanoutConfig::new(16, 3_000.0)).unwrap(),
        "fanout16",
        320,
    );
}

#[test]
fn social_network_conserves_with_blocking_threads() {
    check_conservation(
        social_network(&SocialNetworkConfig::at_qps(8_000.0)).unwrap(),
        "social",
        320,
    );
}

#[test]
fn trace_auditor_is_clean_across_topologies() {
    // The span-trace auditor re-derives conservation, causality, core/thread
    // non-overlap, fan-in accounting, and pool discipline from the raw event
    // stream — run it over every scenario topology. Sequential (one log live
    // at a time) to bound memory.
    let scenarios: Vec<(&str, Simulator)> = vec![
        (
            "two_tier",
            two_tier(&TwoTierConfig::at_qps(30_000.0)).unwrap(),
        ),
        (
            "three_tier",
            three_tier(&ThreeTierConfig::at_qps(2_500.0)).unwrap(),
        ),
        ("fanout16", fanout(&FanoutConfig::new(16, 3_000.0)).unwrap()),
        (
            "social",
            social_network(&SocialNetworkConfig::at_qps(8_000.0)).unwrap(),
        ),
    ];
    for (name, mut sim) in scenarios {
        sim.enable_span_tracing(4_000_000);
        sim.run_for(SimDuration::from_secs_f64(0.5));
        let log = sim.span_log().unwrap();
        assert_eq!(log.dropped(), 0, "{name}: trace log overflowed");
        assert!(!log.is_empty(), "{name}: no trace events recorded");
        let report = sim.audit_trace().unwrap();
        assert!(
            report.is_clean(),
            "{name}: audit violations: {:#?}",
            report.violations
        );
        assert!(report.spans_checked > 0, "{name}: no spans audited");
    }
}

#[test]
fn jobs_do_not_leak_over_time() {
    // Live jobs should stay bounded over a long run (no slow leak).
    let mut sim = two_tier(&TwoTierConfig::at_qps(30_000.0)).unwrap();
    sim.run_for(SimDuration::from_secs(1));
    let early = sim.live_jobs();
    sim.run_for(SimDuration::from_secs(5));
    let late = sim.live_jobs();
    assert!(
        late <= early.max(50) * 4,
        "live jobs grew from {early} to {late} — likely a leak"
    );
}

#[test]
fn queue_depths_stable_below_saturation() {
    let mut sim = two_tier(&TwoTierConfig::at_qps(40_000.0)).unwrap();
    sim.run_for(SimDuration::from_secs(4));
    let nginx = sim.instance_by_name("nginx").unwrap();
    let mc = sim.instance_by_name("memcached").unwrap();
    assert!(sim.instance_queue_depth(nginx) < 1_000);
    assert!(sim.instance_queue_depth(mc) < 1_000);
}

#[test]
fn utilizations_are_physical() {
    let mut sim = two_tier(&TwoTierConfig::at_qps(40_000.0)).unwrap();
    sim.run_for(SimDuration::from_secs(3));
    for name in ["nginx", "memcached"] {
        let id = sim.instance_by_name(name).unwrap();
        let u = sim.instance_utilization(id);
        assert!(
            (0.0..=1.0).contains(&u),
            "{name} utilization {u} out of [0,1]"
        );
        assert!(u > 0.01, "{name} should be doing work");
    }
    for m in 0..2u32 {
        let u = sim.network_utilization(uqsim_core::ids::MachineId::from_raw(m));
        assert!(
            (0.0..=1.0).contains(&u),
            "network utilization {u} out of [0,1]"
        );
    }
}
