//! Paper-shape integration tests: the qualitative results each evaluation
//! figure reports must hold in the reproduction. These are the cheap,
//! always-on versions of the full regenerators in `uqsim-bench`.

use uqsim_apps::scenarios::{
    fanout, load_balanced, single_memcached, single_nginx, tail_at_scale, three_tier, two_tier,
    CommonOpts, FanoutConfig, LoadBalancedConfig, TailAtScaleConfig, ThreeTierConfig,
    TwoTierConfig,
};
use uqsim_bighouse::{service_distribution_for, BigHouse, BigHouseConfig};
use uqsim_core::dist::Distribution;
use uqsim_core::time::SimDuration;

fn throughput_of(mut sim: uqsim_core::Simulator, secs: u64) -> (f64, f64) {
    sim.run_for(SimDuration::from_secs(secs));
    let s = sim.latency_summary();
    let warm = sim.config().warmup.as_secs_f64();
    (s.count as f64 / (secs as f64 - warm), s.p99)
}

/// Fig. 5 shape: saturation tracks the NGINX worker count, and extra
/// memcached threads do not help.
#[test]
fn fig05_shape_nginx_binds_two_tier() {
    // 4p NGINX cannot do 50k; 8p can.
    let mut c4 = TwoTierConfig::at_qps(50_000.0);
    c4.nginx_procs = 4;
    c4.memcached_threads = 2;
    let (t4, _) = throughput_of(two_tier(&c4).unwrap(), 3);
    assert!(t4 < 45_000.0, "4p should saturate below 50k, got {t4}");

    let c8 = TwoTierConfig::at_qps(50_000.0);
    let (t8, _) = throughput_of(two_tier(&c8).unwrap(), 3);
    assert!(t8 > 47_500.0, "8p should sustain 50k, got {t8}");

    // More memcached threads at 4p: no improvement (front end binds).
    let mut c4big = c4.clone();
    c4big.memcached_threads = 4;
    let (t4b, _) = throughput_of(two_tier(&c4big).unwrap(), 3);
    assert!(
        (t4b - t4).abs() / t4 < 0.05,
        "extra memcached threads must not change throughput: {t4} vs {t4b}"
    );
}

/// Fig. 6 shape: the 3-tier app saturates at a tiny fraction of the 2-tier
/// app's load (disk-bound), with a millisecond-scale latency floor.
#[test]
fn fig06_shape_three_tier_disk_bound() {
    let cfg = ThreeTierConfig::at_qps(2_000.0);
    let mut sim = three_tier(&cfg).unwrap();
    sim.run_for(SimDuration::from_secs(3));
    let s = sim.latency_summary();
    assert!(
        s.mean > 0.4e-3,
        "disk misses should push mean latency up: {}",
        s.mean
    );
    // Overload far below the 2-tier saturation point.
    let over = ThreeTierConfig::at_qps(8_000.0);
    let (t, _) = throughput_of(three_tier(&over).unwrap(), 3);
    assert!(t < 7_000.0, "3-tier must be disk-bound well below 70k: {t}");
}

/// Fig. 8 shape: linear scaling 4→8, sub-linear at 16 (irq ceiling).
#[test]
fn fig08_shape_lb_scaling() {
    let (t4, _) = throughput_of(
        load_balanced(&LoadBalancedConfig::new(4, 45_000.0)).unwrap(),
        3,
    );
    assert!(t4 < 40_000.0, "x4 saturates near 35k, got {t4}");
    let (t8, _) = throughput_of(
        load_balanced(&LoadBalancedConfig::new(8, 65_000.0)).unwrap(),
        3,
    );
    assert!(t8 > 61_000.0, "x8 sustains 65k, got {t8}");
    // x16 is capped by the irq cores near 120k, far below 2x the x8 limit.
    let (t16, _) = throughput_of(
        load_balanced(&LoadBalancedConfig::new(16, 140_000.0)).unwrap(),
        3,
    );
    assert!(
        t16 < 132_000.0,
        "x16 must be irq-capped below 140k, got {t16}"
    );
    assert!(t16 > 95_000.0, "x16 should still exceed 95k, got {t16}");
}

/// Fig. 10 shape: tail grows with the fanout factor at fixed load.
#[test]
fn fig10_shape_fanout_tail_grows() {
    let p99_of = |factor: usize| {
        let (_, p99) = throughput_of(fanout(&FanoutConfig::new(factor, 3_000.0)).unwrap(), 3);
        p99
    };
    let p4 = p99_of(4);
    let p16 = p99_of(16);
    assert!(
        p16 > p4,
        "fanout 16 p99 ({p16}) must exceed fanout 4 p99 ({p4})"
    );
}

/// Fig. 13 shape: BigHouse (unamortized epoll) saturates earlier than
/// µqSim on both single-tier applications.
#[test]
fn fig13_shape_bighouse_saturates_earlier() {
    let opts = CommonOpts::default();
    // µqSim nginx keeps up at 8 kQPS.
    let (t, _) = throughput_of(single_nginx(8_000.0, &opts).unwrap(), 3);
    assert!(t > 7_600.0, "uqsim nginx sustains 8k: {t}");
    // BigHouse with profiled-under-load service does not.
    let bh = BigHouse::new(BigHouseConfig {
        interarrival: Distribution::exponential(1.0 / 8_000.0),
        service: service_distribution_for(
            &uqsim_apps::nginx::service_model(),
            uqsim_apps::nginx::paths::SERVE,
            16,
        ),
        servers: 1,
        seed: 42,
        warmup_s: 1.0,
    })
    .run(4.0);
    assert!(
        bh.throughput < 7_600.0,
        "bighouse must saturate below uqsim: {}",
        bh.throughput
    );

    // Same story for 4-thread memcached at 150 kQPS.
    let (tm, _) = throughput_of(single_memcached(150_000.0, 4, &opts).unwrap(), 3);
    assert!(tm > 142_000.0, "uqsim memcached sustains 150k: {tm}");
    let bh_mc = BigHouse::new(BigHouseConfig {
        interarrival: Distribution::exponential(1.0 / 150_000.0),
        service: service_distribution_for(
            &uqsim_apps::memcached::service_model(),
            uqsim_apps::memcached::paths::READ,
            16,
        ),
        servers: 4,
        seed: 42,
        warmup_s: 1.0,
    })
    .run(4.0);
    assert!(
        bh_mc.throughput < 142_000.0,
        "bighouse memcached must saturate below uqsim: {}",
        bh_mc.throughput
    );
}

/// Fig. 14 shape: beyond ~100 servers, 1% slow machines pin the tail near
/// the slow-server regime; small clusters barely notice.
#[test]
fn fig14_shape_tail_at_scale() {
    let p99_of = |n: usize, frac: f64| {
        let mut cfg = TailAtScaleConfig::new(n, frac, 60.0);
        cfg.common.warmup = SimDuration::from_secs(1);
        let mut sim = tail_at_scale(&cfg).unwrap();
        sim.run_for(SimDuration::from_secs(6));
        sim.latency_summary().p99
    };
    let small_clean = p99_of(10, 0.0);
    let big_slow = p99_of(200, 0.01);
    // 10x slow leaves have ~10ms mean service; their presence in every
    // request of the big cluster pins p99 deep into that regime.
    assert!(
        big_slow > 20e-3,
        "200-server cluster with 1% slow must have p99 in the slow regime: {big_slow}"
    );
    assert!(
        big_slow > 3.0 * small_clean,
        "tail amplification with scale"
    );
    // And the clean big cluster is much better than the contaminated one.
    let big_clean = p99_of(200, 0.0);
    assert!(big_slow > 2.0 * big_clean);
}
