//! End-to-end tests of the Algorithm 1 power manager driving the 2-tier
//! application (the §V-B experiment, Fig. 16 / Table III shapes).

use uqsim_bench::power_experiment::{run, PowerRunConfig};
use uqsim_core::time::SimDuration;

fn quick(
    interval_ms: u64,
    noisy: bool,
    seed: u64,
) -> uqsim_bench::power_experiment::PowerRunResult {
    run(&PowerRunConfig {
        interval: SimDuration::from_millis(interval_ms),
        duration: SimDuration::from_secs(30),
        period_s: 15.0,
        noisy,
        seed,
        ..PowerRunConfig::default()
    })
    .expect("power experiment builds")
}

#[test]
fn manager_lowers_frequencies_while_meeting_qos() {
    let r = quick(100, false, 42);
    // Most intervals meet the 5ms target.
    assert!(
        r.violation_rate < 0.15,
        "violation rate {}",
        r.violation_rate
    );
    // Energy was actually saved: mean frequency well below the 2.6 max.
    assert!(
        r.mean_freqs_ghz.iter().any(|&f| f < 2.45),
        "some tier must run below max: {:?}",
        r.mean_freqs_ghz
    );
}

#[test]
fn violation_rate_grows_with_decision_interval() {
    // Table III shape: slower decisions → more violating intervals.
    // Average over seeds to damp run-to-run noise.
    let avg = |ms: u64| -> f64 {
        (0..3)
            .map(|s| quick(ms, false, 42 + s).violation_rate)
            .sum::<f64>()
            / 3.0
    };
    let fast = avg(100);
    let slow = avg(1000);
    assert!(
        slow >= fast,
        "1s interval ({slow}) must violate at least as often as 0.1s ({fast})"
    );
}

#[test]
fn noisy_reference_violates_at_least_as_often() {
    // Table III shape: the real system is noisier than the simulation.
    let avg = |noisy: bool| -> f64 {
        (0..3)
            .map(|s| quick(500, noisy, 7 + s).violation_rate)
            .sum::<f64>()
            / 3.0
    };
    let sim = avg(false);
    let real = avg(true);
    assert!(
        real >= sim - 0.02,
        "noisy reference ({real}) should not violate much less than sim ({sim})"
    );
}

#[test]
fn converged_tail_sits_below_target() {
    // Fig. 16 shape: the converged tail is comfortably below the 5ms QoS
    // (the paper converges around 2ms due to DVFS granularity).
    let r = quick(100, false, 11);
    let active: Vec<&uqsim_power::PowerTraceEntry> =
        r.trace.iter().filter(|e| e.samples > 0).collect();
    let half = &active[active.len() / 2..];
    let tail = half.iter().map(|e| e.e2e_p99).sum::<f64>() / half.len() as f64;
    assert!(
        tail < 5e-3,
        "converged tail {tail} must sit below the 5ms target"
    );
    assert!(tail > 0.1e-3, "tail implausibly low: {tail}");
}

#[test]
fn trace_records_every_interval() {
    let r = quick(500, false, 3);
    // 30s at 0.5s interval → about 60 entries (first fires at t=interval).
    assert!(
        (55..=62).contains(&r.trace.len()),
        "expected ~60 trace entries, got {}",
        r.trace.len()
    );
    // Frequencies stay within the DVFS range at all times.
    for e in &r.trace {
        for &f in &e.freqs_ghz {
            assert!((1.2..=2.6).contains(&f), "frequency {f} out of range");
        }
    }
}
