//! Ground-truth validation of the discrete-event core against
//! queueing-theory closed forms: M/M/1, M/M/k (Erlang C), and M/D/1
//! (Pollaczek–Khinchine). If these hold, the engine's queueing mechanics —
//! arrivals, FIFO service, multi-server dispatch, sojourn accounting — are
//! correct.

use uqsim_core::dist::Distribution;
use uqsim_core::time::SimDuration;
use uqsim_integration::{erlang_c, station};

const WARMUP: SimDuration = SimDuration::from_secs(2);

fn run_station(
    qps: f64,
    service: Distribution,
    servers: usize,
    secs: u64,
    seed: u64,
) -> (f64, f64) {
    let mut sim = station(qps, service, servers, seed, WARMUP).expect("station builds");
    sim.run_for(SimDuration::from_secs(secs));
    let s = sim.latency_summary();
    assert!(s.count > 1_000, "too few samples: {}", s.count);
    (s.mean, s.p99)
}

#[test]
fn mm1_mean_sojourn_across_utilizations() {
    // W = 1/(mu - lambda); mu = 10k.
    let mu = 10_000.0;
    for (rho, seed) in [(0.3, 1u64), (0.6, 2), (0.8, 3)] {
        let lambda = rho * mu;
        let (mean, _) = run_station(lambda, Distribution::exponential(1.0 / mu), 1, 30, seed);
        let expect = 1.0 / (mu - lambda);
        assert!(
            (mean - expect).abs() / expect < 0.08,
            "rho={rho}: mean {mean} vs theory {expect}"
        );
    }
}

#[test]
fn mm1_p99_matches_exponential_sojourn() {
    // Sojourn time of M/M/1 is exponential with rate (mu - lambda):
    // p99 = ln(100) / (mu - lambda).
    let mu = 10_000.0;
    let lambda = 6_000.0;
    let (_, p99) = run_station(lambda, Distribution::exponential(1.0 / mu), 1, 40, 4);
    let expect = (100.0f64).ln() / (mu - lambda);
    assert!(
        (p99 - expect).abs() / expect < 0.10,
        "p99 {p99} vs theory {expect}"
    );
}

#[test]
fn mmk_mean_sojourn_matches_erlang_c() {
    // W = C(k,a)/(k*mu - lambda) + 1/mu.
    let mu = 5_000.0; // per-server
    for (k, rho, seed) in [(2usize, 0.7, 5u64), (4, 0.8, 6), (8, 0.6, 7)] {
        let lambda = rho * k as f64 * mu;
        let (mean, _) = run_station(lambda, Distribution::exponential(1.0 / mu), k, 30, seed);
        let a = lambda / mu;
        let expect = erlang_c(k, a) / (k as f64 * mu - lambda) + 1.0 / mu;
        assert!(
            (mean - expect).abs() / expect < 0.08,
            "k={k} rho={rho}: mean {mean} vs theory {expect}"
        );
    }
}

#[test]
fn md1_mean_wait_is_half_of_mm1() {
    // Pollaczek–Khinchine: deterministic service halves the mean wait.
    let mu = 10_000.0;
    let lambda = 7_000.0;
    let rho: f64 = lambda / mu;
    let (mean, _) = run_station(lambda, Distribution::constant(1.0 / mu), 1, 30, 8);
    let expect = rho / (2.0 * mu * (1.0 - rho)) + 1.0 / mu;
    assert!(
        (mean - expect).abs() / expect < 0.08,
        "mean {mean} vs theory {expect}"
    );
}

#[test]
fn mg1_pollaczek_khinchine_lognormal() {
    // M/G/1 with lognormal service (cv = 1.5):
    // Wq = lambda * E[S^2] / (2 (1 - rho)), E[S^2] = mean^2 (1 + cv^2).
    let mean_s = 1.0 / 10_000.0;
    let cv: f64 = 1.5;
    let lambda = 5_000.0;
    let rho = lambda * mean_s;
    let es2 = mean_s * mean_s * (1.0 + cv * cv);
    let expect = lambda * es2 / (2.0 * (1.0 - rho)) + mean_s;
    let (mean, _) = run_station(
        lambda,
        Distribution::lognormal_mean_cv(mean_s, cv),
        1,
        40,
        9,
    );
    assert!(
        (mean - expect).abs() / expect < 0.10,
        "mean {mean} vs theory {expect}"
    );
}

#[test]
fn latency_monotone_in_load() {
    let mu = 10_000.0;
    let mut prev = 0.0;
    for (i, rho) in [0.2, 0.5, 0.8, 0.95].iter().enumerate() {
        let (mean, _) = run_station(
            rho * mu,
            Distribution::exponential(1.0 / mu),
            1,
            20,
            10 + i as u64,
        );
        assert!(
            mean > prev,
            "latency must grow with load: {mean} after {prev}"
        );
        prev = mean;
    }
}

#[test]
fn throughput_tracks_offered_below_saturation() {
    let mu = 10_000.0;
    let lambda = 4_000.0;
    let mut sim =
        station(lambda, Distribution::exponential(1.0 / mu), 1, 21, WARMUP).expect("builds");
    sim.run_for(SimDuration::from_secs(20));
    let measured = sim.latency_summary().count as f64 / 18.0;
    assert!(
        (measured - lambda).abs() / lambda < 0.03,
        "throughput {measured}"
    );
}

mod tandem {
    //! Jackson-network validation: a tandem of two single-server stations
    //! with Poisson input behaves as two independent M/M/1 queues
    //! (Burke's theorem), so the mean end-to-end sojourn is the sum of
    //! the per-station sojourns.

    use uqsim_core::builder::{ExecSpec, ScenarioBuilder};
    use uqsim_core::client::ClientSpec;
    use uqsim_core::dist::Distribution;
    use uqsim_core::ids::{PathNodeId, StageId};
    use uqsim_core::machine::{DvfsSpec, MachineSpec, NetworkSpec};
    use uqsim_core::path::{LinkKind, PathNodeSpec, RequestType};
    use uqsim_core::service::{ExecPath, ServiceModel};
    use uqsim_core::stage::{QueueDiscipline, ServiceTimeModel, StageSpec};
    use uqsim_core::time::SimDuration;

    fn station(name: &str, mu: f64) -> ServiceModel {
        ServiceModel::new(
            name,
            vec![StageSpec::new(
                "serve",
                QueueDiscipline::Single,
                ServiceTimeModel::per_job(Distribution::exponential(1.0 / mu), 2.6),
            )],
            vec![ExecPath::new("serve", vec![StageId::from_raw(0)])],
        )
    }

    #[test]
    fn tandem_mm1_queues_sum_like_jackson() {
        let mu1 = 10_000.0;
        let mu2 = 6_000.0;
        let lambda = 4_000.0;

        let mut b = ScenarioBuilder::new(33);
        b.warmup(SimDuration::from_secs(2));
        let m = b.add_machine(MachineSpec {
            name: "m".into(),
            cores: 3,
            dvfs: DvfsSpec::fixed(2.6),
            network: NetworkSpec::passthrough(0.0),
            power: Default::default(),
        });
        let s1 = b.add_service(station("s1", mu1));
        let s2 = b.add_service(station("s2", mu2));
        // A free relay carries the response back to the client without
        // adding measurable service time or revisiting the tandem.
        let s3 = b.add_service(station("relay", 1e9));
        let i1 = b.add_instance("st1", s1, m, 1, ExecSpec::Simple).unwrap();
        let i2 = b.add_instance("st2", s2, m, 1, ExecSpec::Simple).unwrap();
        let i3 = b.add_instance("relay", s3, m, 1, ExecSpec::Simple).unwrap();

        let mut n0 = PathNodeSpec::request("st1", s1, i1);
        n0.children = vec![PathNodeId::from_raw(1)];
        let mut n1 = PathNodeSpec::request("st2", s2, i2);
        n1.children = vec![PathNodeId::from_raw(2)];
        let mut n2 = PathNodeSpec::request("relay", s3, i3);
        n2.link = LinkKind::ReplyToParent;
        n2.children = vec![PathNodeId::from_raw(3)];
        let sink = PathNodeSpec::client_sink(PathNodeId::from_raw(0));
        let ty = b
            .add_request_type(RequestType::new(
                "tandem",
                vec![n0, n1, n2, sink],
                PathNodeId::from_raw(0),
            ))
            .unwrap();
        b.add_client(ClientSpec::open_loop("c", lambda, 1_000_000, ty), vec![i1]);
        let mut sim = b.build().unwrap();

        sim.run_for(SimDuration::from_secs(30));
        let mean = sim.latency_summary().mean;
        let expect = 1.0 / (mu1 - lambda) + 1.0 / (mu2 - lambda);
        assert!(
            (mean - expect).abs() / expect < 0.08,
            "tandem mean {mean} vs Jackson {expect}"
        );
    }
}
