//! The declarative JSON front end end-to-end: the shipped configuration
//! files build, run, and agree with the equivalent programmatic scenario.

use uqsim_core::config::ScenarioConfig;
use uqsim_core::time::SimDuration;

const QUICKSTART: &str = include_str!("../crates/cli/configs/quickstart.json");
const TWO_TIER: &str = include_str!("../crates/cli/configs/two_tier.json");

#[test]
fn quickstart_config_runs() {
    let cfg = ScenarioConfig::from_json(QUICKSTART).unwrap();
    let mut sim = cfg.build().unwrap();
    sim.run_for(SimDuration::from_secs(2));
    let s = sim.latency_summary();
    assert!(s.count as f64 > 5_000.0 * 1.2, "completed {}", s.count);
    assert!(s.p99 < 5e-3);
}

#[test]
fn two_tier_config_matches_programmatic_scenario_shape() {
    let cfg = ScenarioConfig::from_json(TWO_TIER).unwrap();
    let mut from_json = cfg.build().unwrap();
    from_json.run_for(SimDuration::from_secs(3));
    let json_stats = from_json.latency_summary();

    let mut prog_cfg = uqsim_apps::scenarios::TwoTierConfig::at_qps(20_000.0);
    prog_cfg.common.warmup = SimDuration::from_millis(500);
    let mut programmatic = uqsim_apps::scenarios::two_tier(&prog_cfg).unwrap();
    programmatic.run_for(SimDuration::from_secs(3));
    let prog_stats = programmatic.latency_summary();

    // Same topology and calibration: the two should land in the same
    // latency regime (not identical — the JSON file is an independent
    // hand-authored description).
    assert!(
        (json_stats.mean - prog_stats.mean).abs() / prog_stats.mean < 0.5,
        "json mean {} vs programmatic mean {}",
        json_stats.mean,
        prog_stats.mean
    );
    assert!(json_stats.p99 < 5e-3 && prog_stats.p99 < 5e-3);
}

#[test]
fn roundtrip_preserves_behavior_exactly() {
    // Serialize → deserialize → build must reproduce the identical run.
    let cfg = ScenarioConfig::from_json(TWO_TIER).unwrap();
    let round: ScenarioConfig = ScenarioConfig::from_json(&cfg.to_json()).unwrap();
    assert_eq!(cfg, round);

    let mut a = cfg.build().unwrap();
    let mut b = round.build().unwrap();
    a.run_for(SimDuration::from_secs(2));
    b.run_for(SimDuration::from_secs(2));
    assert_eq!(a.generated(), b.generated());
    assert_eq!(a.latency_summary(), b.latency_summary());
}

#[test]
fn config_errors_are_descriptive() {
    let mut cfg = ScenarioConfig::from_json(QUICKSTART).unwrap();
    cfg.request_types[0].nodes[0].children = vec!["nope".into()];
    let err = cfg.build().unwrap_err().to_string();
    assert!(
        err.contains("nope"),
        "error should name the missing node: {err}"
    );
}

#[test]
fn listing1_shape_is_loadable_as_service() {
    // The memcached model exported in Listing 1's shape stays in sync with
    // the uqsim-apps model it was generated from.
    let json = uqsim_apps::memcached::listing1_json();
    let v: serde_json::Value = serde_json::from_str(&json).unwrap();
    let model = uqsim_apps::memcached::service_model();
    assert_eq!(v["stages"].as_array().unwrap().len(), model.stages.len());
    assert_eq!(v["paths"].as_array().unwrap().len(), model.paths.len());
}
