//! Reproducibility: for any scenario, the same seed must produce
//! bit-identical metrics, and different seeds must differ. This is what
//! makes simulation studies auditable.

use uqsim_apps::scenarios::{
    fanout, social_network, three_tier, two_tier, FanoutConfig, SocialNetworkConfig,
    ThreeTierConfig, TwoTierConfig,
};
use uqsim_core::time::SimDuration;
use uqsim_core::Simulator;

fn fingerprint(mut sim: Simulator) -> String {
    sim.run_for(SimDuration::from_secs(2));
    let s = sim.latency_summary();
    format!(
        "{}/{}/{:.12e}/{:.12e}/{:.12e}/{}",
        sim.generated(),
        sim.completed(),
        s.mean,
        s.p99,
        s.max,
        sim.events_processed()
    )
}

fn assert_deterministic(build: impl Fn(u64) -> Simulator, name: &str) {
    let a = fingerprint(build(42));
    let b = fingerprint(build(42));
    assert_eq!(a, b, "{name}: same seed must reproduce exactly");
    let c = fingerprint(build(43));
    assert_ne!(a, c, "{name}: different seeds must differ");
}

#[test]
fn two_tier_is_deterministic() {
    assert_deterministic(
        |seed| {
            let mut cfg = TwoTierConfig::at_qps(20_000.0);
            cfg.common.seed = seed;
            two_tier(&cfg).unwrap()
        },
        "two_tier",
    );
}

#[test]
fn three_tier_is_deterministic() {
    assert_deterministic(
        |seed| {
            let mut cfg = ThreeTierConfig::at_qps(2_000.0);
            cfg.common.seed = seed;
            three_tier(&cfg).unwrap()
        },
        "three_tier",
    );
}

#[test]
fn fanout_is_deterministic() {
    assert_deterministic(
        |seed| {
            let mut cfg = FanoutConfig::new(8, 3_000.0);
            cfg.common.seed = seed;
            fanout(&cfg).unwrap()
        },
        "fanout",
    );
}

#[test]
fn social_network_is_deterministic() {
    assert_deterministic(
        |seed| {
            let mut cfg = SocialNetworkConfig::at_qps(5_000.0);
            cfg.common.seed = seed;
            social_network(&cfg).unwrap()
        },
        "social_network",
    );
}

#[test]
fn determinism_survives_run_segmentation() {
    // Running 2s in one call equals running 4 x 0.5s.
    let cfg = TwoTierConfig::at_qps(15_000.0);
    let mut whole = two_tier(&cfg).unwrap();
    whole.run_for(SimDuration::from_secs(2));

    let mut parts = two_tier(&cfg).unwrap();
    for _ in 0..4 {
        parts.run_for(SimDuration::from_millis(500));
    }
    assert_eq!(whole.generated(), parts.generated());
    assert_eq!(whole.completed(), parts.completed());
    assert_eq!(whole.latency_summary(), parts.latency_summary());
}
