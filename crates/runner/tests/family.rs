//! Family sweeps: one `SweepSpec` applied across several generated
//! topologies, with seed derivation and jobs-invariance pinned.

use uqsim_core::time::SimDuration;
use uqsim_runner::sweep::{run_family_sweep, seed_for, SweepSpec};
use uqsim_synth::GenSpec;

fn small_spec() -> GenSpec {
    let mut spec = GenSpec::example();
    spec.replicas = 1;
    spec.warmup_s = 0.0;
    spec
}

fn sweep_spec(jobs: usize) -> SweepSpec {
    SweepSpec {
        qps: vec![400.0, 800.0],
        reps: 2,
        base_seed: 42,
        duration: SimDuration::from_millis(120),
        jobs,
        faults: None,
        shards: 1,
    }
}

/// Topology seeds derive from the base seed via [`seed_for`] (topology 0
/// uses the base itself), and the whole family table is byte-identical
/// at any worker count.
#[test]
fn family_sweep_is_seed_derived_and_jobs_invariant() {
    let gen_spec = small_spec();
    let generate = |seed: u64| gen_spec.generate(seed);
    let serial = run_family_sweep(&generate, 2, &sweep_spec(1), &|_| {}).unwrap();
    let parallel = run_family_sweep(&generate, 2, &sweep_spec(4), &|_| {}).unwrap();

    assert_eq!(serial.rows.len(), 2);
    assert_eq!(serial.rows[0].topology_seed, 42);
    assert_eq!(serial.rows[1].topology_seed, seed_for(42, 1));
    assert_eq!(serial.to_json(), parallel.to_json(), "jobs must not matter");
    assert_eq!(serial.to_csv(), parallel.to_csv(), "jobs must not matter");

    // Topologies differ, so their sweeps must too.
    assert_ne!(
        serial.rows[0].table.to_json(),
        serial.rows[1].table.to_json(),
        "distinct topology seeds must produce distinct sweeps"
    );

    // One header line, then (topologies × qps points) data rows, each
    // prefixed with its topology seed.
    let csv = serial.to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 1 + 2 * 2);
    assert!(lines[0].starts_with("topology_seed,offered_qps,"));
    assert!(lines[1].starts_with("42,"));
    for row in &serial.rows {
        assert!(row.table.rows.iter().all(|r| r.completed > 0));
    }
}
