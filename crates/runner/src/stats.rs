//! Across-replication statistics: sample means and 95% confidence
//! intervals via Student's t distribution.
//!
//! Replications of a stochastic simulation at the same operating point are
//! i.i.d. by construction (decoupled seeds), so the classical t-interval
//! on the replication mean applies directly — the standard presentation
//! for discrete-event simulation output analysis.

/// A sample mean with its 95% confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanCi {
    /// Sample mean over the replications.
    pub mean: f64,
    /// Half-width of the 95% confidence interval (`0.0` when fewer than
    /// two replications exist — a single run carries no spread estimate).
    pub half_width: f64,
}

/// Two-sided 97.5% Student-t quantiles for 1..=30 degrees of freedom;
/// beyond 30 the normal quantile 1.96 is within ~2%.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The two-sided 95% t critical value for `df` degrees of freedom.
pub fn t_critical_95(df: usize) -> f64 {
    match df {
        0 => f64::INFINITY,
        1..=30 => T_975[df - 1],
        _ => 1.96,
    }
}

/// Mean and 95% confidence half-width of `samples`.
///
/// Sums fold left-to-right in sample order, so the result is bit-stable
/// for a fixed input ordering — part of the sweep engine's byte-identical
/// output guarantee.
///
/// # Examples
///
/// ```
/// use uqsim_runner::stats::mean_ci95;
///
/// let ci = mean_ci95(&[10.0, 12.0, 11.0, 13.0]);
/// assert!((ci.mean - 11.5).abs() < 1e-12);
/// // half-width = t(3) * s / sqrt(4) with s ≈ 1.29
/// assert!(ci.half_width > 1.9 && ci.half_width < 2.2);
/// ```
pub fn mean_ci95(samples: &[f64]) -> MeanCi {
    let n = samples.len();
    if n == 0 {
        return MeanCi {
            mean: 0.0,
            half_width: 0.0,
        };
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    if n < 2 {
        return MeanCi {
            mean,
            half_width: 0.0,
        };
    }
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
    let half_width = t_critical_95(n - 1) * (var / n as f64).sqrt();
    MeanCi { mean, half_width }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample_has_no_spread() {
        let ci = mean_ci95(&[5.0]);
        assert_eq!(ci.mean, 5.0);
        assert_eq!(ci.half_width, 0.0);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(
            mean_ci95(&[]),
            MeanCi {
                mean: 0.0,
                half_width: 0.0
            }
        );
    }

    #[test]
    fn identical_samples_have_zero_width() {
        let ci = mean_ci95(&[3.0; 8]);
        assert_eq!(ci.mean, 3.0);
        assert!(ci.half_width < 1e-12);
    }

    #[test]
    fn width_shrinks_with_replications() {
        // Same per-sample spread, more samples → narrower interval.
        let few: Vec<f64> = (0..4).map(|i| (i % 2) as f64).collect();
        let many: Vec<f64> = (0..32).map(|i| (i % 2) as f64).collect();
        assert!(mean_ci95(&many).half_width < mean_ci95(&few).half_width);
    }

    #[test]
    fn t_table_monotone_toward_normal() {
        for df in 1..35 {
            assert!(t_critical_95(df + 1) <= t_critical_95(df));
        }
        assert_eq!(t_critical_95(100), 1.96);
    }
}
