//! # uqsim-runner
//!
//! The parallel sweep/replication engine. µqSim's discrete-event core is
//! deliberately single-threaded (deterministic replay needs a total event
//! order), so the cheapest correctness-preserving parallelism is at the
//! granularity of whole simulator runs: QPS points × seed replications ×
//! experiments are independent, and this crate fans them across cores.
//!
//! Three layers:
//!
//! * [`Pool`] (re-exported from the vendored `minipool` crate) — a scoped
//!   thread pool with dynamic work claiming, ordered results, and panic
//!   propagation.
//! * [`run_indexed`] / [`try_run_indexed`] — parallel maps over an index
//!   space, the building blocks the bench harness submits sweeps through.
//! * [`sweep`] — the scenario-level engine: take a
//!   [`ScenarioConfig`](uqsim_core::config::ScenarioConfig), a QPS grid,
//!   and a replication count; run every `(qps, seed)` cell via
//!   [`uqsim_core::run_one`]; aggregate replications into a
//!   [`SweepTable`](sweep::SweepTable) with 95% confidence intervals.
//!
//! ## Determinism
//!
//! Every task's result lands in a slot keyed by its input index and the
//! aggregation folds slots in index order, so the output — down to the
//! serialized CSV/JSON bytes — is identical at any `--jobs` value. The
//! worker count decides only *when* a cell runs, never what it computes or
//! where its result goes. This is enforced by tests (see
//! `crates/cli/tests/sweep_determinism.rs`).
//!
//! ## Example
//!
//! ```
//! use uqsim_core::config::ScenarioConfig;
//! use uqsim_core::time::SimDuration;
//! use uqsim_runner::sweep::{SweepSpec, run_scenario_sweep};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = ScenarioConfig::from_json(uqsim_core::run::EXAMPLE_SCENARIO)?;
//! let spec = SweepSpec {
//!     qps: vec![500.0, 1500.0],
//!     reps: 2,
//!     base_seed: 42,
//!     duration: SimDuration::from_millis(400),
//!     jobs: 2,
//!     faults: None,
//!     shards: 0,
//! };
//! let table = run_scenario_sweep(&cfg, &spec, &|_p| {})?;
//! assert_eq!(table.rows.len(), 2);
//! // Same seeds at a different worker count → byte-identical output.
//! let serial = run_scenario_sweep(&cfg, &SweepSpec { jobs: 1, ..spec.clone() }, &|_p| {})?;
//! assert_eq!(table.to_csv(), serial.to_csv());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub use minipool::{available_jobs, Pool};

pub mod stats;
pub mod sweep;

/// Runs `f(0..n)` across up to `jobs` threads and returns the results in
/// index order (independent of `jobs` and scheduling).
///
/// # Examples
///
/// ```
/// let doubled = uqsim_runner::run_indexed(4, 5, |i| i * 2);
/// assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
/// ```
pub fn run_indexed<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    Pool::new(jobs).map_indexed(n, f)
}

/// Fallible [`run_indexed`]: every task runs to completion, then the error
/// of the lowest-indexed failing task is returned (a deterministic choice,
/// mirroring what a serial loop would have reported first).
///
/// # Errors
///
/// The first error by task index, if any task failed.
///
/// # Examples
///
/// ```
/// let r: Result<Vec<u32>, String> =
///     uqsim_runner::try_run_indexed(2, 4, |i| if i == 1 { Err("bad".into()) } else { Ok(i as u32) });
/// assert_eq!(r, Err("bad".to_string()));
/// ```
pub fn try_run_indexed<T, E, F>(jobs: usize, n: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    Pool::new(jobs)
        .map_indexed(n, f)
        .into_iter()
        .collect::<Result<Vec<T>, E>>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_run_indexed_reports_first_error_by_index() {
        for jobs in [1, 2, 8] {
            let r: Result<Vec<usize>, usize> =
                try_run_indexed(jobs, 10, |i| if i % 4 == 3 { Err(i) } else { Ok(i) });
            assert_eq!(r, Err(3), "jobs={jobs}");
        }
    }

    #[test]
    fn try_run_indexed_collects_in_order() {
        let r: Result<Vec<usize>, ()> = try_run_indexed(3, 6, Ok);
        assert_eq!(r.unwrap(), vec![0, 1, 2, 3, 4, 5]);
    }
}
