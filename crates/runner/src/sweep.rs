//! Scenario-level sweep execution: QPS grid × seed replications, fanned
//! across a thread pool, aggregated into a stable table.
//!
//! The unit of work is [`uqsim_core::run_one`]; a sweep of `Q` QPS points
//! with `R` replications submits `Q·R` independent cells. Aggregation
//! folds replications in seed order and points in grid order, so a
//! [`SweepTable`] — and its CSV/JSON serializations — is byte-identical
//! for a fixed `(scenario, qps grid, reps, base_seed, duration)` at *any*
//! worker count.

use crate::stats::{mean_ci95, MeanCi};
use crate::try_run_indexed;
use std::sync::atomic::{AtomicUsize, Ordering};
use uqsim_core::config::ScenarioConfig;
use uqsim_core::run::{run_one_faulted, RunResult};
use uqsim_core::time::SimDuration;
use uqsim_core::{FaultPlan, SimResult};

/// SplitMix64 finalizer (same mixing the core's RNG factory uses).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The master seed of replication `rep` under `base_seed`.
///
/// Replication 0 runs `base_seed` itself (so a 1-rep sweep cross-checks
/// against `uqsim run --seed`); later replications get decorrelated seeds
/// through a SplitMix64 finalizer.
pub fn seed_for(base_seed: u64, rep: usize) -> u64 {
    if rep == 0 {
        base_seed
    } else {
        splitmix64(base_seed ^ (rep as u64).wrapping_mul(0xA076_1D64_78BD_642F))
    }
}

/// Parses a QPS grid argument: either a range `lo:hi:step` (inclusive of
/// `hi` up to float tolerance) or an explicit comma list `a,b,c`.
///
/// # Errors
///
/// A human-readable message for malformed, non-positive, or empty specs.
///
/// # Examples
///
/// ```
/// use uqsim_runner::sweep::parse_qps_spec;
///
/// assert_eq!(parse_qps_spec("1000:3000:1000").unwrap(), vec![1000.0, 2000.0, 3000.0]);
/// assert_eq!(parse_qps_spec("500,2500").unwrap(), vec![500.0, 2500.0]);
/// assert!(parse_qps_spec("3000:1000:500").is_err());
/// ```
pub fn parse_qps_spec(spec: &str) -> Result<Vec<f64>, String> {
    let bad = |what: &str| format!("invalid --qps `{spec}`: {what}");
    if spec.contains(':') {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 3 {
            return Err(bad("expected lo:hi:step"));
        }
        let nums: Vec<f64> = parts
            .iter()
            .map(|p| p.trim().parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|_| bad("non-numeric bound"))?;
        let (lo, hi, step) = (nums[0], nums[1], nums[2]);
        if !(lo > 0.0 && hi >= lo && step > 0.0) {
            return Err(bad("need 0 < lo <= hi and step > 0"));
        }
        let n = ((hi - lo) / step + 1.0 + 1e-9).floor() as usize;
        Ok((0..n).map(|i| lo + step * i as f64).collect())
    } else {
        let loads: Vec<f64> = spec
            .split(',')
            .map(|p| p.trim().parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|_| bad("non-numeric entry"))?;
        if loads.is_empty() || loads.iter().any(|&q| q <= 0.0) {
            return Err(bad("loads must be positive"));
        }
        Ok(loads)
    }
}

/// What to sweep: the QPS grid, the replication count, and how to run.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Offered loads to visit, in output order.
    pub qps: Vec<f64>,
    /// Seed replications per load (≥ 1).
    pub reps: usize,
    /// Base seed; replication seeds derive via [`seed_for`].
    pub base_seed: u64,
    /// Simulated duration per cell (warmup included; the scenario's
    /// `warmup_s` is excluded from statistics as usual).
    pub duration: SimDuration,
    /// Worker threads (0 or 1 = serial). Affects wall-clock only, never
    /// results.
    pub jobs: usize,
    /// Fault plan installed into every cell before its clock starts;
    /// `None` sweeps the healthy system. The plan is part of the
    /// determinism key: a fixed `(scenario, plan, grid, reps, base_seed,
    /// duration)` is byte-identical at any `jobs`.
    pub faults: Option<FaultPlan>,
    /// Engine selection per cell: `0` runs the classic single-simulator
    /// engine ([`run_one_faulted`]); `N ≥ 1` runs the partitioned engine
    /// ([`uqsim_core::run_partitioned`]) at `N` shards. Partitioned
    /// results are byte-identical at any `N ≥ 1` (spec invariant **P7**)
    /// but use per-cell RNG streams, so they differ numerically from
    /// `shards: 0` — pick one engine per experiment.
    pub shards: usize,
}

/// A progress tick, emitted once per finished cell from whichever worker
/// finished it. `finished` counts completions, so ticks arrive with
/// `finished` strictly increasing but cells in arbitrary order.
#[derive(Debug, Clone, Copy)]
pub struct Progress {
    /// Cells finished so far (including this one).
    pub finished: usize,
    /// Total cells in the sweep (`qps.len() × reps`).
    pub total: usize,
    /// The finished cell's offered load.
    pub offered_qps: f64,
    /// The finished cell's master seed.
    pub seed: u64,
}

/// One aggregated row: all replications of one QPS point.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Offered load.
    pub offered_qps: f64,
    /// Replications aggregated.
    pub reps: usize,
    /// Achieved post-warmup throughput across replications.
    pub achieved_qps: MeanCi,
    /// Mean latency (seconds) across replications.
    pub mean: MeanCi,
    /// Median latency across replications.
    pub p50: MeanCi,
    /// 95th-percentile latency across replications.
    pub p95: MeanCi,
    /// 99th-percentile latency across replications.
    pub p99: MeanCi,
    /// Worst single latency over all replications, seconds.
    pub max_s: f64,
    /// Post-warmup goodput (within-deadline, full-fidelity completions per
    /// second) across replications; equals `achieved_qps` when unfaulted.
    pub goodput_qps: MeanCi,
    /// Completed requests summed over replications.
    pub completed: u64,
    /// Timed-out requests summed over replications.
    pub timeouts: u64,
    /// Requests dropped by injected faults, summed over replications.
    pub dropped: u64,
    /// Requests shed by open circuit breakers, summed over replications.
    pub shed: u64,
    /// Retry emissions, summed over replications.
    pub retried: u64,
    /// Degraded responses (sheds + quorum early-fires), summed over
    /// replications.
    pub degraded: u64,
    /// Mean post-warmup instance utilization across replications.
    pub instance_util: MeanCi,
    /// Mean post-warmup network (irq-core) utilization across replications.
    pub network_util: MeanCi,
    /// Mean milliseconds per request spent in each latency component
    /// (discriminant order of [`uqsim_core::LatencyComponent`]), averaged
    /// over replications.
    pub components_ms: [f64; uqsim_core::LatencyComponent::COUNT],
    /// The p99+-cohort's top critical-path contributor as `site kind`
    /// (e.g. `backend/handler queue_wait`), from the replications' merged
    /// attribution profile; empty when no replication carried a profile.
    pub critpath_top: String,
    /// That contributor's share of the p99+ cohort's critical-path time.
    pub critpath_top_share: f64,
}

/// The aggregated result of one sweep, plus the parameters that produced
/// it (so the serialized table is self-describing).
#[derive(Debug, Clone)]
pub struct SweepTable {
    /// Simulated duration per cell, seconds.
    pub duration_s: f64,
    /// Replications per point.
    pub reps: usize,
    /// Base seed.
    pub base_seed: u64,
    /// One row per QPS point, in grid order.
    pub rows: Vec<SweepRow>,
}

impl SweepTable {
    /// Serializes the table as CSV: one header line, one row per QPS
    /// point, latencies in milliseconds, fixed-width float formatting
    /// (byte-stable for identical inputs).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "offered_qps,reps,achieved_qps,achieved_qps_ci95,mean_ms,mean_ms_ci95,\
             p50_ms,p50_ms_ci95,p95_ms,p95_ms_ci95,p99_ms,p99_ms_ci95,max_ms,completed,timeouts,\
             instance_util,network_util,client_wait_ms,network_ms,queue_wait_ms,service_ms,\
             blocking_ms,fan_in_sync_ms,goodput_qps,goodput_qps_ci95,dropped,shed,retried,\
             degraded,critpath_top,critpath_top_share\n",
        );
        for r in &self.rows {
            let ms = |c: &MeanCi| format!("{:.6},{:.6}", c.mean * 1e3, c.half_width * 1e3);
            out.push_str(&format!(
                "{:.3},{},{:.3},{:.3},{},{},{},{},{:.6},{},{},{:.4},{:.4}",
                r.offered_qps,
                r.reps,
                r.achieved_qps.mean,
                r.achieved_qps.half_width,
                ms(&r.mean),
                ms(&r.p50),
                ms(&r.p95),
                ms(&r.p99),
                r.max_s * 1e3,
                r.completed,
                r.timeouts,
                r.instance_util.mean,
                r.network_util.mean,
            ));
            for c in r.components_ms {
                out.push_str(&format!(",{c:.6}"));
            }
            out.push_str(&format!(
                ",{:.3},{:.3},{},{},{},{},{},{:.4}\n",
                r.goodput_qps.mean,
                r.goodput_qps.half_width,
                r.dropped,
                r.shed,
                r.retried,
                r.degraded,
                r.critpath_top,
                r.critpath_top_share,
            ));
        }
        out
    }

    /// Serializes the table as pretty JSON (schema documented in
    /// EXPERIMENTS.md; key order and float formatting are deterministic).
    pub fn to_json(&self) -> String {
        let rows: Vec<serde_json::Value> = self
            .rows
            .iter()
            .map(|r| {
                let ci = |c: &MeanCi| {
                    serde_json::json!({
                        "mean": c.mean,
                        "ci95": c.half_width,
                    })
                };
                let components: serde_json::Value = serde_json::Value::Object({
                    let mut m = serde_json::Map::new();
                    for (c, ms) in uqsim_core::LatencyComponent::ALL
                        .iter()
                        .zip(r.components_ms)
                    {
                        m.insert(c.name(), serde_json::json!(ms / 1e3));
                    }
                    m
                });
                serde_json::json!({
                    "offered_qps": r.offered_qps,
                    "reps": r.reps,
                    "achieved_qps": ci(&r.achieved_qps),
                    "latency_s": {
                        "mean": ci(&r.mean),
                        "p50": ci(&r.p50),
                        "p95": ci(&r.p95),
                        "p99": ci(&r.p99),
                        "max": r.max_s,
                    },
                    "completed": r.completed,
                    "timeouts": r.timeouts,
                    "goodput_qps": ci(&r.goodput_qps),
                    "faults": {
                        "dropped": r.dropped,
                        "shed": r.shed,
                        "retried": r.retried,
                        "degraded": r.degraded,
                    },
                    "utilization": {
                        "instance": ci(&r.instance_util),
                        "network": ci(&r.network_util),
                    },
                    "latency_components_s": components,
                    "critpath": {
                        "top": r.critpath_top,
                        "top_p99_share": r.critpath_top_share,
                    },
                })
            })
            .collect();
        let table = serde_json::json!({
            "duration_s": self.duration_s,
            "reps": self.reps,
            "base_seed": self.base_seed,
            "rows": serde_json::Value::Array(rows),
        });
        serde_json::to_string_pretty(&table).expect("sweep table serializes")
    }
}

/// Aggregates the replications of one QPS point into a row. Folds in
/// replication order — deterministic regardless of completion order.
fn aggregate(offered_qps: f64, reps: &[RunResult]) -> SweepRow {
    let pick = |f: &dyn Fn(&RunResult) -> f64| -> Vec<f64> { reps.iter().map(f).collect() };
    // Merge the replications' attribution profiles (rep order; the merge
    // is commutative, so the order only matters for determinism) and name
    // the p99-cohort's dominant contributor.
    let mut merged: Option<uqsim_core::CpcProfile> = None;
    for r in reps {
        if let Some(p) = &r.critpath {
            merged
                .get_or_insert_with(uqsim_core::CpcProfile::new)
                .merge(p);
        }
    }
    let mut critpath_top = String::new();
    let mut critpath_top_share = 0.0;
    if let Some(report) = merged.map(|p| p.report()) {
        if let Some(row) = report.top_p99() {
            critpath_top = format!("{} {}", row.site, row.kind.name());
            critpath_top_share = row.p99_share;
        }
    }
    SweepRow {
        offered_qps,
        reps: reps.len(),
        achieved_qps: mean_ci95(&pick(&|r| r.achieved_qps)),
        mean: mean_ci95(&pick(&|r| r.latency.mean)),
        p50: mean_ci95(&pick(&|r| r.latency.p50)),
        p95: mean_ci95(&pick(&|r| r.latency.p95)),
        p99: mean_ci95(&pick(&|r| r.latency.p99)),
        max_s: reps.iter().map(|r| r.latency.max).fold(0.0, f64::max),
        goodput_qps: mean_ci95(&pick(&|r| r.goodput_qps)),
        completed: reps.iter().map(|r| r.completed).sum(),
        timeouts: reps.iter().map(|r| r.timeouts).sum(),
        dropped: reps.iter().map(|r| r.dropped).sum(),
        shed: reps.iter().map(|r| r.shed).sum(),
        retried: reps.iter().map(|r| r.retried).sum(),
        degraded: reps.iter().map(|r| r.degraded).sum(),
        instance_util: mean_ci95(&pick(&|r| r.metrics.instance_utilization)),
        network_util: mean_ci95(&pick(&|r| r.metrics.network_utilization)),
        components_ms: {
            let mut ms = [0.0; uqsim_core::LatencyComponent::COUNT];
            if !reps.is_empty() {
                for (i, slot) in ms.iter_mut().enumerate() {
                    *slot = reps
                        .iter()
                        .map(|r| r.metrics.component_mean_s[i] * 1e3)
                        .sum::<f64>()
                        / reps.len() as f64;
                }
            }
            ms
        },
        critpath_top,
        critpath_top_share,
    }
}

/// Runs the full `qps × reps` grid of `spec` over `cfg` and aggregates.
///
/// Each cell re-scales the scenario to its offered load
/// ([`ScenarioConfig::with_offered_qps`]) and re-seeds it ([`seed_for`]),
/// then runs [`run_one_faulted`] with the spec's fault plan (if any).
/// `progress` is invoked once per finished cell, possibly from worker
/// threads (hence `Sync`).
///
/// # Errors
///
/// If any cell's scenario fails to build, every cell still runs, then the
/// error of the lowest-indexed failing cell is returned.
pub fn run_scenario_sweep(
    cfg: &ScenarioConfig,
    spec: &SweepSpec,
    progress: &(dyn Fn(Progress) + Sync),
) -> SimResult<SweepTable> {
    let reps = spec.reps.max(1);
    // One re-scaled scenario per QPS point, shared read-only by its cells.
    let scaled: Vec<ScenarioConfig> = spec.qps.iter().map(|&q| cfg.with_offered_qps(q)).collect();
    let total = scaled.len() * reps;
    let finished = AtomicUsize::new(0);
    let results: Vec<RunResult> = try_run_indexed(spec.jobs, total, |i| {
        let (qi, rep) = (i / reps, i % reps);
        let seed = seed_for(spec.base_seed, rep);
        let out = if spec.shards >= 1 {
            uqsim_core::run_partitioned(
                &scaled[qi],
                spec.faults.as_ref(),
                seed,
                spec.duration,
                &uqsim_core::PartitionOptions::with_shards(spec.shards),
            )
            .map(|run| run.result)
        } else {
            run_one_faulted(&scaled[qi], spec.faults.as_ref(), seed, spec.duration)
        };
        progress(Progress {
            finished: finished.fetch_add(1, Ordering::Relaxed) + 1,
            total,
            offered_qps: spec.qps[qi],
            seed,
        });
        out
    })?;
    let rows = spec
        .qps
        .iter()
        .enumerate()
        .map(|(qi, &q)| aggregate(q, &results[qi * reps..(qi + 1) * reps]))
        .collect();
    Ok(SweepTable {
        duration_s: spec.duration.as_secs_f64(),
        reps,
        base_seed: spec.base_seed,
        rows,
    })
}

/// One generated topology's aggregated sweep within a family sweep.
#[derive(Debug, Clone)]
pub struct FamilyRow {
    /// The seed the topology was generated from (see [`run_family_sweep`]
    /// for the derivation).
    pub topology_seed: u64,
    /// The full QPS × reps sweep over that topology.
    pub table: SweepTable,
}

/// The result of sweeping a whole *family* of generated topologies: one
/// [`FamilyRow`] per topology, in generation order.
#[derive(Debug, Clone)]
pub struct FamilyTable {
    /// Base seed the topology seeds derive from.
    pub base_seed: u64,
    /// One row per topology, in seed-derivation order.
    pub rows: Vec<FamilyRow>,
}

impl FamilyTable {
    /// Serializes the family as CSV: the [`SweepTable::to_csv`] schema
    /// with a leading `topology_seed` column, one header line total.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for (i, row) in self.rows.iter().enumerate() {
            let csv = row.table.to_csv();
            let mut lines = csv.lines();
            let header = lines.next().unwrap_or_default();
            if i == 0 {
                out.push_str(&format!("topology_seed,{header}\n"));
            }
            for line in lines {
                out.push_str(&format!("{},{line}\n", row.topology_seed));
            }
        }
        out
    }

    /// Serializes the family as pretty JSON: `base_seed`, `topologies`,
    /// and one entry per topology embedding its [`SweepTable::to_json`]
    /// value under `"table"`.
    pub fn to_json(&self) -> String {
        let rows: Vec<serde_json::Value> = self
            .rows
            .iter()
            .map(|r| {
                let table: serde_json::Value =
                    serde_json::from_str(&r.table.to_json()).expect("sweep table JSON re-parses");
                serde_json::json!({
                    "topology_seed": r.topology_seed,
                    "table": table,
                })
            })
            .collect();
        let family = serde_json::json!({
            "base_seed": self.base_seed,
            "topologies": self.rows.len(),
            "rows": serde_json::Value::Array(rows),
        });
        serde_json::to_string_pretty(&family).expect("family table serializes")
    }
}

/// Sweeps a family of `topologies` generated scenarios: topology `k` is
/// built by `generate(seed_for(spec.base_seed, k))` and swept with
/// [`run_scenario_sweep`] under the same `spec`.
///
/// Topology 0 therefore uses `base_seed` itself, so its scenario
/// cross-checks against `uqsim gen --seed <base_seed>`. Reusing the base
/// seed for both generation and the run is harmless: generation draws
/// exclusively from the `"gen"` RNG stream, which no run-time consumer
/// touches. Topologies run sequentially (each inner sweep already fans
/// its cells across `spec.jobs` workers), so the output is byte-identical
/// at any worker count; `progress` ticks restart per topology.
///
/// # Errors
///
/// The first failing generation or sweep, by topology order.
pub fn run_family_sweep(
    generate: &(dyn Fn(u64) -> SimResult<ScenarioConfig> + Sync),
    topologies: usize,
    spec: &SweepSpec,
    progress: &(dyn Fn(Progress) + Sync),
) -> SimResult<FamilyTable> {
    let mut rows = Vec::with_capacity(topologies);
    for k in 0..topologies {
        let topology_seed = seed_for(spec.base_seed, k);
        let cfg = generate(topology_seed)?;
        let table = run_scenario_sweep(&cfg, spec, progress)?;
        rows.push(FamilyRow {
            topology_seed,
            table,
        });
    }
    Ok(FamilyTable {
        base_seed: spec.base_seed,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qps_range_is_inclusive_and_tolerant() {
        assert_eq!(
            parse_qps_spec("1000:2000:250").unwrap(),
            vec![1000.0, 1250.0, 1500.0, 1750.0, 2000.0]
        );
        // hi not on the grid: stop below it.
        assert_eq!(parse_qps_spec("100:250:100").unwrap(), vec![100.0, 200.0]);
        // single-point range and single-value list both work.
        assert_eq!(parse_qps_spec("500:500:1").unwrap(), vec![500.0]);
        assert_eq!(parse_qps_spec("500").unwrap(), vec![500.0]);
    }

    #[test]
    fn qps_spec_rejects_nonsense() {
        for bad in ["", "a:b:c", "10:5:1", "0:10:1", "10:20:0", "1,-2", "x,y"] {
            assert!(parse_qps_spec(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn seeds_are_stable_and_decorrelated() {
        assert_eq!(seed_for(42, 0), 42);
        assert_eq!(seed_for(42, 3), seed_for(42, 3));
        let seeds: Vec<u64> = (0..16).map(|r| seed_for(42, r)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "collision in {seeds:?}");
    }

    fn tiny_spec(jobs: usize) -> SweepSpec {
        SweepSpec {
            qps: vec![500.0, 1500.0],
            reps: 3,
            base_seed: 42,
            duration: SimDuration::from_millis(300),
            jobs,
            faults: None,
            shards: 0,
        }
    }

    #[test]
    fn sweep_output_is_jobs_invariant() {
        let cfg = ScenarioConfig::from_json(uqsim_core::run::EXAMPLE_SCENARIO).unwrap();
        let serial = run_scenario_sweep(&cfg, &tiny_spec(1), &|_| {}).unwrap();
        for jobs in [2, 4, 8] {
            let parallel = run_scenario_sweep(&cfg, &tiny_spec(jobs), &|_| {}).unwrap();
            assert_eq!(serial.to_csv(), parallel.to_csv(), "jobs={jobs} CSV drift");
            assert_eq!(
                serial.to_json(),
                parallel.to_json(),
                "jobs={jobs} JSON drift"
            );
        }
    }

    #[test]
    fn faulted_sweep_is_jobs_invariant_and_counts_fault_activity() {
        let cfg = ScenarioConfig::from_json(uqsim_core::run::EXAMPLE_SCENARIO).unwrap();
        let plan = FaultPlan::from_json(uqsim_core::run::EXAMPLE_FAULTS).unwrap();
        let spec = |jobs| SweepSpec {
            qps: vec![1000.0, 2000.0],
            reps: 2,
            base_seed: 42,
            duration: SimDuration::from_millis(500),
            jobs,
            faults: Some(plan.clone()),
            shards: 0,
        };
        let serial = run_scenario_sweep(&cfg, &spec(1), &|_| {}).unwrap();
        let parallel = run_scenario_sweep(&cfg, &spec(4), &|_| {}).unwrap();
        assert_eq!(serial.to_csv(), parallel.to_csv(), "faulted CSV drift");
        assert_eq!(serial.to_json(), parallel.to_json(), "faulted JSON drift");
        let r = &serial.rows[0];
        assert!(r.dropped > 0, "crash window should drop requests");
        assert!(r.retried > 0, "drops should trigger retries");
        assert!(
            r.goodput_qps.mean <= r.achieved_qps.mean,
            "goodput can never exceed achieved throughput"
        );
    }

    #[test]
    fn partitioned_sweep_is_shard_and_jobs_invariant() {
        let cfg = ScenarioConfig::from_json(uqsim_core::run::EXAMPLE_SCENARIO).unwrap();
        let spec = |jobs, shards| SweepSpec {
            shards,
            ..tiny_spec(jobs)
        };
        let base = run_scenario_sweep(&cfg, &spec(1, 1), &|_| {}).unwrap();
        for (jobs, shards) in [(1, 2), (4, 2), (2, 4)] {
            let other = run_scenario_sweep(&cfg, &spec(jobs, shards), &|_| {}).unwrap();
            assert_eq!(
                base.to_csv(),
                other.to_csv(),
                "jobs={jobs} shards={shards} CSV drift"
            );
            assert_eq!(base.to_json(), other.to_json());
        }
        // The partitioned engine draws per-cell RNG streams, so it is a
        // different (equally valid) statistical sample from shards: 0.
        let classic = run_scenario_sweep(&cfg, &spec(1, 0), &|_| {}).unwrap();
        assert_ne!(base.to_csv(), classic.to_csv());
    }

    #[test]
    fn sweep_reports_every_cell_once() {
        let cfg = ScenarioConfig::from_json(uqsim_core::run::EXAMPLE_SCENARIO).unwrap();
        let ticks = AtomicUsize::new(0);
        let table = run_scenario_sweep(&cfg, &tiny_spec(4), &|p| {
            assert!(p.finished <= p.total && p.total == 6);
            ticks.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(ticks.load(Ordering::Relaxed), 6);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.rows[0].reps, 3);
        assert!(table.rows[1].achieved_qps.mean > table.rows[0].achieved_qps.mean);
    }

    #[test]
    fn replications_disagree_enough_to_give_a_width() {
        let cfg = ScenarioConfig::from_json(uqsim_core::run::EXAMPLE_SCENARIO).unwrap();
        let table = run_scenario_sweep(&cfg, &tiny_spec(2), &|_| {}).unwrap();
        // Stochastic replications of a queueing sim at distinct seeds
        // essentially never agree to the last bit.
        assert!(table.rows[0].mean.half_width > 0.0);
    }
}
