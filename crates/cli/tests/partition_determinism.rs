//! End-to-end determinism gate for `--shards` (spec invariant **P7**,
//! DESIGN.md §11): on a 110-machine cluster, every byte the binary emits —
//! run summary, metrics files, Chrome trace, chaos report — must be
//! identical at `--shards 1` and `--shards 4`. The shard count is a
//! wall-clock knob, never a results knob.
//!
//! These tests drive the real binary (via `CARGO_BIN_EXE_uqsim`) against a
//! generated [`uqsim_apps::scenarios::pod_cluster`] scenario, so they pin
//! the output framing (results on stdout, partition diagnostics on stderr)
//! as well as the merged bytes.

use std::path::PathBuf;
use std::process::{Command, Output};

/// 55 pods × 2 machines = 110 machines, 55 independent cells.
const PODS: usize = 55;

/// Writes the generated pod-cluster scenario under a unique directory in
/// the target tmpdir and returns its path.
fn cluster_config(tag: &str) -> PathBuf {
    let cfg = uqsim_apps::scenarios::pod_cluster(PODS, 600.0).expect("pod cluster builds");
    let dir = std::env::temp_dir().join(format!("uqsim-partition-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("cluster.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&cfg).expect("scenario serializes"),
    )
    .expect("write scenario");
    path
}

/// A fault plan that bites several distinct pods, plus a client retry
/// policy, exercising the per-cell plan split end to end.
fn faults_file(dir: &std::path::Path) -> PathBuf {
    let path = dir.join("faults.json");
    std::fs::write(
        &path,
        r#"{
  "faults": [
    { "kind": "instance_crash", "instance": "p3-front",
      "at_s": 0.15, "restart_after_s": 0.1 },
    { "kind": "machine_slowdown", "machine": "p5-be",
      "at_s": 0.2, "duration_s": 0.15, "factor": 4.0 }
  ],
  "policy": {
    "clients": [
      { "client": "wrk1", "max_retries": 2,
        "backoff_base_s": 0.002, "backoff_cap_s": 0.05, "jitter": 0.5 }
    ]
  }
}"#,
    )
    .expect("write faults");
    path
}

fn uqsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_uqsim"))
        .args(args)
        .output()
        .expect("uqsim binary runs")
}

#[test]
fn run_and_metrics_are_byte_identical_across_shards() {
    let cfg = cluster_config("run");
    let dir = cfg.parent().unwrap();
    let mut outs = Vec::new();
    for shards in ["1", "4"] {
        let metrics = dir.join(format!("metrics-{shards}"));
        let out = uqsim(&[
            "run",
            cfg.to_str().unwrap(),
            "--duration",
            "0.4",
            "--shards",
            shards,
            "--metrics-out",
            metrics.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "run --shards {shards} failed: {out:?}"
        );
        outs.push((out.stdout, metrics));
    }
    let (base_stdout, base_dir) = &outs[0];
    let (other_stdout, other_dir) = &outs[1];
    assert_eq!(base_stdout, other_stdout, "stdout drifted across shards");
    assert!(!base_stdout.is_empty());
    for file in ["metrics.prom", "metrics.csv", "metrics.json"] {
        let a = std::fs::read(base_dir.join(file)).expect(file);
        let b = std::fs::read(other_dir.join(file)).expect(file);
        assert_eq!(a, b, "{file} drifted across shards");
        assert!(!a.is_empty(), "{file} is empty");
    }
}

#[test]
fn chrome_trace_is_byte_identical_across_shards() {
    let cfg = cluster_config("trace");
    let dir = cfg.parent().unwrap();
    let mut traces = Vec::new();
    for shards in ["1", "4"] {
        let out_file = dir.join(format!("trace-{shards}.json"));
        let out = uqsim(&[
            "trace",
            "--config",
            cfg.to_str().unwrap(),
            "--duration",
            "0.3",
            "--events",
            "2000000",
            "--shards",
            shards,
            "--out",
            out_file.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "trace --shards {shards} failed (audit must be clean): {out:?}"
        );
        traces.push(std::fs::read(&out_file).expect("trace file"));
    }
    assert_eq!(traces[0], traces[1], "Chrome trace drifted across shards");
    // The merged trace really covers the whole cluster: every pod's pid
    // block appears.
    let text = String::from_utf8(traces[0].clone()).expect("trace is UTF-8");
    for pod in [0, PODS / 2, PODS - 1] {
        assert!(
            text.contains(&format!("p{pod}-fe")),
            "pod {pod} missing from merged trace"
        );
    }
}

#[test]
fn chaos_report_is_byte_identical_across_shards() {
    let cfg = cluster_config("chaos");
    let dir = cfg.parent().unwrap();
    let faults = faults_file(dir);
    let mut reports = Vec::new();
    for shards in ["1", "4"] {
        let out = uqsim(&[
            "chaos",
            cfg.to_str().unwrap(),
            "--faults",
            faults.to_str().unwrap(),
            "--duration",
            "0.5",
            "--events",
            "4000000",
            "--shards",
            shards,
            "--json",
        ]);
        assert!(
            out.status.success(),
            "chaos --shards {shards} failed (audit must be clean): {out:?}"
        );
        reports.push(out.stdout);
    }
    assert_eq!(reports[0], reports[1], "chaos report drifted across shards");
    let text = String::from_utf8(reports[0].clone()).expect("report is UTF-8");
    let v: serde_json::Value = serde_json::from_str(&text).expect("chaos report is valid JSON");
    // The plan actually bit: the crash window fired and the audit is clean.
    assert!(!v["timeline"].as_array().unwrap().is_empty());
    assert_eq!(v["audit"]["clean"].as_bool(), Some(true));
    assert_eq!(v["cells"].as_u64(), Some(PODS as u64));
}
