//! End-to-end gates for `uqsim why`, the critical-path attribution
//! report.
//!
//! Three properties are pinned, driving the real binary (via
//! `CARGO_BIN_EXE_uqsim`) so the report framing is covered too:
//!
//! 1. **Golden report** — the full text report for the faulted quickstart
//!    scenario at a fixed seed is byte-stable. Regenerate after an
//!    intentional change with:
//!
//!    ```text
//!    UQSIM_BLESS=1 cargo test -p uqsim-cli --test why_golden
//!    ```
//!
//! 2. **Shard invariance** — `why --shards 1` and `why --shards 4` print
//!    byte-identical stdout (spec invariant P7 extended to attribution).
//!
//! 3. **Truncation refusal** — when the span log overflows, `why` exits
//!    non-zero with a clear stderr message instead of attributing from an
//!    incomplete stream.

use std::path::Path;
use std::process::{Command, Output};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/quickstart_why.txt"
);

/// Runs from the crate root with *relative* config paths so the report
/// header — which echoes them — is byte-identical on any checkout.
fn why(extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_uqsim"))
        .current_dir(Path::new(env!("CARGO_MANIFEST_DIR")))
        .args([
            "why",
            "--config",
            "configs/quickstart.json",
            "--faults",
            "configs/quickstart_faults.json",
            "--duration",
            "4",
        ])
        .args(extra)
        .output()
        .expect("uqsim binary runs")
}

#[test]
fn why_report_matches_golden() {
    let out = why(&[]);
    assert!(
        out.status.success(),
        "why failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let produced = String::from_utf8(out.stdout).expect("report is UTF-8");
    if std::env::var_os("UQSIM_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &produced).expect("write golden");
        return;
    }
    let golden = include_str!("golden/quickstart_why.txt");
    assert_eq!(
        produced, golden,
        "why report drifted from the golden snapshot; if the change is \
         intentional, regenerate with UQSIM_BLESS=1 (see the module docs)"
    );
}

#[test]
fn why_json_is_byte_deterministic() {
    let a = why(&["--json"]);
    let b = why(&["--json"]);
    assert!(a.status.success() && b.status.success());
    assert_eq!(
        a.stdout, b.stdout,
        "identical why invocations produced different bytes"
    );
}

#[test]
fn why_attribution_is_shard_invariant() {
    let one = why(&["--shards", "1"]);
    assert!(
        one.status.success(),
        "why --shards 1 failed: {}",
        String::from_utf8_lossy(&one.stderr)
    );
    let four = why(&["--shards", "4"]);
    assert!(four.status.success());
    assert_eq!(
        one.stdout, four.stdout,
        "attribution bytes drifted between --shards 1 and --shards 4"
    );
}

#[test]
fn why_refuses_truncated_span_stream() {
    let out = why(&["--events", "100"]);
    assert!(
        !out.status.success(),
        "why must exit non-zero when the span log truncates"
    );
    let stderr = String::from_utf8(out.stderr).expect("stderr is UTF-8");
    assert!(
        stderr.contains("truncated") && stderr.contains("--events"),
        "truncation message missing or unclear:\n{stderr}"
    );
}
