//! End-to-end gates for the workload-synthesis surface (`uqsim gen`):
//! the bundled DeathStarBench-class spec must hit the headline scale
//! (≥300 services, ≥1000 instances), regenerate byte-identically per
//! (spec, seed), run TraceAuditor-clean, and produce byte-identical
//! output at `--shards 1` vs `--shards 4`.

use std::path::Path;
use std::process::{Command, Output};
use uqsim_core::partition::{run_partitioned, PartitionOptions};
use uqsim_core::telemetry::TelemetryConfig;
use uqsim_core::time::SimDuration;
use uqsim_synth::{summarize, GenSpec};

fn spec_path() -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("configs")
        .join("gen_dsb.json")
        .to_string_lossy()
        .into_owned()
}

fn gen(extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_uqsim"))
        .args(["gen", "--spec", &spec_path()])
        .args(extra)
        .output()
        .expect("uqsim binary runs")
}

/// `uqsim gen --json` is byte-identical across invocations at one seed
/// and diverges across seeds.
#[test]
fn gen_json_is_deterministic_per_seed() {
    let a = gen(&["--seed", "5", "--json"]);
    let b = gen(&["--seed", "5", "--json"]);
    assert!(a.status.success(), "gen failed: {a:?}");
    assert_eq!(
        a.stdout, b.stdout,
        "same (spec, seed) must be byte-identical"
    );
    let c = gen(&["--seed", "6", "--json"]);
    assert_ne!(a.stdout, c.stdout, "different seeds must differ");
}

/// The bundled spec reaches the paper-scale cluster the subsystem exists
/// for: ≥300 services and ≥1000 instances, split into one cell per
/// replica.
#[test]
fn bundled_spec_hits_headline_scale() {
    let spec = GenSpec::from_file(Path::new(&spec_path())).unwrap();
    let cfg = spec.generate(spec.seed).unwrap();
    let s = summarize(&cfg);
    assert!(s.services >= 300, "only {} services", s.services);
    assert!(s.instances >= 1000, "only {} instances", s.instances);
    let cells = uqsim_core::partition::split_cells(&cfg).unwrap();
    assert_eq!(cells.len(), spec.replicas, "one cell per replica");
}

/// The generated cluster runs end-to-end: the merged trace audit is
/// clean, and every output is byte-identical at shards 1 vs 4.
#[test]
fn generated_cluster_runs_audit_clean_and_shard_invariant() {
    let spec = GenSpec::from_file(Path::new(&spec_path())).unwrap();
    let cfg = spec.generate(11).unwrap();
    let opts = |shards: usize| PartitionOptions {
        shards,
        telemetry: TelemetryConfig::default(),
        span_tracing: Some(1 << 16),
        sync_windows: 8,
    };
    let d = SimDuration::from_millis(350);
    let one = run_partitioned(&cfg, None, 11, d, &opts(1)).unwrap();
    let four = run_partitioned(&cfg, None, 11, d, &opts(4)).unwrap();
    assert!(one.result.completed > 0, "requests must complete");
    assert_eq!(one.result, four.result, "results at shards 1 vs 4");
    assert_eq!(
        one.prometheus(),
        four.prometheus(),
        "prometheus at shards 1 vs 4"
    );
    let audit = one.audit().expect("span tracing on");
    assert!(
        audit.violations.is_empty(),
        "audit must be clean: {:?}",
        audit.violations
    );
    assert!(audit.events_checked > 0);
}
