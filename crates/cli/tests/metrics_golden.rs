//! Golden-file test for the Prometheus metrics export.
//!
//! The snapshot pins the exact text `metrics_prometheus()` produces for
//! the quickstart scenario at a fixed seed and duration. The export is
//! built entirely from simulated state (no wall-clock channels), so the
//! bytes must be stable across machines and runs; any drift means either
//! the exporter's format or the simulation itself changed. Regenerate
//! after an intentional change with:
//!
//! ```text
//! UQSIM_BLESS=1 cargo test -p uqsim-cli --test metrics_golden
//! ```

use uqsim_core::config::ScenarioConfig;
use uqsim_core::telemetry::TelemetryConfig;
use uqsim_core::time::SimDuration;

const QUICKSTART: &str = include_str!("../configs/quickstart.json");
const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/quickstart_metrics.prom"
);

fn quickstart_prometheus() -> String {
    let cfg = ScenarioConfig::from_json(QUICKSTART).expect("bundled config parses");
    let mut sim = cfg.build().expect("bundled config builds");
    sim.enable_telemetry(TelemetryConfig {
        sample_interval: Some(SimDuration::from_millis(10)),
        ..TelemetryConfig::default()
    });
    // Past the 0.5 s quickstart warmup, so the since-warmup utilization
    // gauges cover a non-empty measured window.
    sim.run_for(SimDuration::from_millis(1500));
    sim.metrics_prometheus()
}

#[test]
fn quickstart_prometheus_matches_golden() {
    let produced = quickstart_prometheus();
    if std::env::var_os("UQSIM_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &produced).expect("write golden");
        return;
    }
    let golden = include_str!("golden/quickstart_metrics.prom");
    assert_eq!(
        produced, golden,
        "Prometheus export drifted from the golden snapshot; if the \
         change is intentional, regenerate with UQSIM_BLESS=1 (see the \
         module docs)"
    );
}

/// The export is deterministic: two identical runs produce identical
/// bytes (the property the golden test depends on).
#[test]
fn prometheus_export_is_deterministic() {
    assert_eq!(quickstart_prometheus(), quickstart_prometheus());
}
