//! Golden-file test for the Prometheus metrics export.
//!
//! The snapshot pins the exact text `metrics_prometheus()` produces for
//! the quickstart scenario at a fixed seed and duration. The export is
//! built entirely from simulated state (no wall-clock channels), so the
//! bytes must be stable across machines and runs; any drift means either
//! the exporter's format or the simulation itself changed. Regenerate
//! after an intentional change with:
//!
//! ```text
//! UQSIM_BLESS=1 cargo test -p uqsim-cli --test metrics_golden
//! ```

use uqsim_core::config::ScenarioConfig;
use uqsim_core::telemetry::TelemetryConfig;
use uqsim_core::time::SimDuration;

const QUICKSTART: &str = include_str!("../configs/quickstart.json");
const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/quickstart_metrics.prom"
);

fn quickstart_prometheus() -> String {
    let cfg = ScenarioConfig::from_json(QUICKSTART).expect("bundled config parses");
    let mut sim = cfg.build().expect("bundled config builds");
    sim.enable_telemetry(TelemetryConfig {
        sample_interval: Some(SimDuration::from_millis(10)),
        ..TelemetryConfig::default()
    });
    // Past the 0.5 s quickstart warmup, so the since-warmup utilization
    // gauges cover a non-empty measured window.
    sim.run_for(SimDuration::from_millis(1500));
    sim.metrics_prometheus()
}

#[test]
fn quickstart_prometheus_matches_golden() {
    let produced = quickstart_prometheus();
    if std::env::var_os("UQSIM_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &produced).expect("write golden");
        return;
    }
    let golden = include_str!("golden/quickstart_metrics.prom");
    assert_eq!(
        produced, golden,
        "Prometheus export drifted from the golden snapshot; if the \
         change is intentional, regenerate with UQSIM_BLESS=1 (see the \
         module docs)"
    );
}

/// The export is deterministic: two identical runs produce identical
/// bytes (the property the golden test depends on).
#[test]
fn prometheus_export_is_deterministic() {
    assert_eq!(quickstart_prometheus(), quickstart_prometheus());
}

const CSV_GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/quickstart_metrics.csv"
);

fn quickstart_csv() -> String {
    let cfg = ScenarioConfig::from_json(QUICKSTART).expect("bundled config parses");
    let mut sim = cfg.build().expect("bundled config builds");
    sim.enable_telemetry(TelemetryConfig {
        sample_interval: Some(SimDuration::from_millis(10)),
        ..TelemetryConfig::default()
    });
    sim.run_for(SimDuration::from_millis(1500));
    sim.metrics_csv().expect("sampler is enabled")
}

/// Pins the `metrics_csv` row/label ordering contract (see the
/// `Simulator::metrics_csv` docs): per tick, the five unlabeled
/// `windowed_*` rows in fixed order, then every gauge series in
/// configuration order. Regenerate with `UQSIM_BLESS=1`.
#[test]
fn quickstart_metrics_csv_matches_golden() {
    let produced = quickstart_csv();
    if std::env::var_os("UQSIM_BLESS").is_some() {
        std::fs::write(CSV_GOLDEN_PATH, &produced).expect("write golden");
        return;
    }
    let golden = include_str!("golden/quickstart_metrics.csv");
    assert_eq!(
        produced, golden,
        "metrics CSV drifted from the golden snapshot; if the change is \
         intentional, regenerate with UQSIM_BLESS=1 (see the module docs)"
    );
}

/// The partitioned merge of a single-cell run must be the byte-identity:
/// the two merge paths (single-run vs partitioned) may only diverge when
/// there is more than one windowed summary to keep apart.
#[test]
fn single_cell_partitioned_csv_is_passthrough() {
    let cfg = ScenarioConfig::from_json(QUICKSTART).expect("bundled config parses");
    let mut opts = uqsim_core::PartitionOptions::with_shards(1);
    opts.telemetry.sample_interval = Some(SimDuration::from_millis(10));
    let run =
        uqsim_core::run_partitioned(&cfg, None, cfg.seed, SimDuration::from_millis(1500), &opts)
            .expect("partitioned run succeeds");
    assert_eq!(
        run.cells.len(),
        1,
        "quickstart is a single request-closed cell"
    );
    assert_eq!(
        run.csv().expect("sampler on"),
        run.cells[0].csv.clone().expect("sampler on"),
        "single-cell merge_csv is not a pass-through"
    );
}
