//! End-to-end smoke and determinism gates for the fault-injection surface:
//! `uqsim chaos` must report real fault activity and a clean trace audit,
//! its JSON report must be byte-reproducible, and a faulted sweep must stay
//! byte-identical at any `--jobs` value.
//!
//! These tests drive the real binary (via `CARGO_BIN_EXE_uqsim`), so they
//! pin the report framing as well as the numbers.

use std::path::Path;
use std::process::{Command, Output};

fn config(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("configs")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

/// Runs `uqsim chaos quickstart.json --faults quickstart_faults.json ...`.
fn chaos(extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_uqsim"))
        .args([
            "chaos",
            &config("quickstart.json"),
            "--faults",
            &config("quickstart_faults.json"),
            "--duration",
            "4",
        ])
        .args(extra)
        .output()
        .expect("uqsim binary runs")
}

#[test]
fn chaos_reports_fault_activity_and_audits_clean() {
    let out = chaos(&["--json"]);
    assert!(out.status.success(), "chaos run failed: {out:?}");
    let text = String::from_utf8(out.stdout).expect("report is UTF-8");
    let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");

    // The bundled plan must actually bite: sheds from the breaker, retries
    // from the client policy, kills from the crash window.
    assert!(v["outcomes"]["shed"].as_u64().unwrap() > 0, "no sheds");
    assert!(
        v["resilience"]["retried"].as_u64().unwrap() > 0,
        "no retries"
    );
    assert!(
        v["resilience"]["jobs_killed"].as_u64().unwrap() > 0,
        "no jobs killed"
    );
    assert!(
        !v["timeline"].as_array().unwrap().is_empty(),
        "no fault windows fired"
    );
    // Goodput can only lose requests relative to raw throughput.
    assert!(
        v["goodput_qps"].as_f64().unwrap() <= v["throughput_qps"].as_f64().unwrap() + 1e-9,
        "goodput exceeds throughput"
    );
    // Every request reached exactly one terminal state.
    assert_eq!(
        v["audit"]["clean"],
        serde_json::Value::Bool(true),
        "audit violations: {}",
        v["audit"]["violations"]
    );
}

#[test]
fn chaos_text_report_mentions_audit_verdict() {
    let out = chaos(&[]);
    assert!(out.status.success(), "chaos run failed: {out:?}");
    let text = String::from_utf8(out.stdout).expect("report is UTF-8");
    assert!(
        text.contains("timeline:"),
        "report framing drifted:\n{text}"
    );
    assert!(text.contains("audit: clean"), "audit not clean:\n{text}");
}

#[test]
fn chaos_json_is_byte_deterministic() {
    let a = chaos(&["--json"]);
    let b = chaos(&["--json"]);
    assert!(a.status.success() && b.status.success());
    assert_eq!(
        a.stdout, b.stdout,
        "identical chaos invocations produced different bytes"
    );
}

/// Runs `uqsim sweep --faults ... --jobs <jobs>`. The 1.6 s duration
/// reaches past the plan's 1.0 s crash window so fault counters are live.
fn faulted_sweep(jobs: usize) -> Output {
    Command::new(env!("CARGO_BIN_EXE_uqsim"))
        .args([
            "sweep",
            "--config",
            &config("quickstart.json"),
            "--faults",
            &config("quickstart_faults.json"),
            "--qps",
            "1000:2000:1000",
            "--reps",
            "2",
            "--duration",
            "1.6",
            "--jobs",
            &jobs.to_string(),
        ])
        .output()
        .expect("uqsim binary runs")
}

#[test]
fn faulted_sweep_is_byte_identical_across_jobs() {
    let serial = faulted_sweep(1);
    assert!(serial.status.success(), "serial sweep failed: {serial:?}");
    let parallel = faulted_sweep(4);
    assert!(
        parallel.status.success(),
        "parallel sweep failed: {parallel:?}"
    );
    assert_eq!(
        serial.stdout, parallel.stdout,
        "faulted sweep bytes drifted between --jobs 1 and --jobs 4"
    );

    let text = String::from_utf8(serial.stdout).expect("CSV is UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines[0].ends_with(
            "goodput_qps,goodput_qps_ci95,dropped,shed,retried,degraded,\
             critpath_top,critpath_top_share"
        ),
        "fault/attribution columns missing from header: {}",
        lines[0]
    );
    // The crash window inside the measurement interval must register in at
    // least one row's fault counters (the four columns before the two
    // attribution columns).
    let activity: u64 = lines[1..]
        .iter()
        .map(|row| {
            let cells: Vec<&str> = row.split(',').collect();
            cells[cells.len() - 6..cells.len() - 2]
                .iter()
                .map(|c| c.parse::<u64>().expect("fault counters are integers"))
                .sum::<u64>()
        })
        .sum();
    assert!(activity > 0, "no fault activity in any sweep row:\n{text}");
    // Every row names a top tail contributor with a sane share.
    for row in &lines[1..] {
        let cells: Vec<&str> = row.split(',').collect();
        let top = cells[cells.len() - 2];
        let share: f64 = cells[cells.len() - 1].parse().expect("share is numeric");
        assert!(!top.is_empty(), "row without a critpath_top: {row}");
        assert!((0.0..=1.0).contains(&share), "share out of range: {row}");
    }
}
