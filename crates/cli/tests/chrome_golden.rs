//! Golden-file and determinism tests for the Chrome `trace_event` export.
//!
//! The golden snapshot pins the exact JSON the quickstart scenario produces
//! for its first 64 trace events — regenerate it with:
//!
//! ```text
//! cargo run --release -p uqsim-cli -- trace \
//!     --config crates/cli/configs/quickstart.json \
//!     --out crates/cli/tests/golden/quickstart_trace.json \
//!     --duration 0.05 --events 64
//! ```

use uqsim_core::config::ScenarioConfig;
use uqsim_core::time::SimDuration;

const QUICKSTART: &str = include_str!("../configs/quickstart.json");

/// Builds the quickstart scenario, runs it for `secs` with span tracing
/// capped at `events`, and returns the pretty-printed Chrome trace.
fn quickstart_chrome(secs: f64, events: usize) -> String {
    let cfg = ScenarioConfig::from_json(QUICKSTART).expect("bundled config parses");
    let mut sim = cfg.build().expect("bundled config builds");
    sim.enable_span_tracing(events);
    sim.run_for(SimDuration::from_secs_f64(secs));
    let chrome = sim.chrome_trace().expect("span tracing is enabled");
    serde_json::to_string_pretty(&chrome).expect("trace serializes")
}

#[test]
fn quickstart_chrome_trace_matches_golden() {
    let produced = quickstart_chrome(0.05, 64);
    let golden = include_str!("golden/quickstart_trace.json");
    assert_eq!(
        produced.trim(),
        golden.trim(),
        "Chrome trace drifted from the golden snapshot; if the change is \
         intentional, regenerate it (see the module docs)"
    );
}

#[test]
fn identical_seeds_produce_identical_traces() {
    let a = quickstart_chrome(0.1, 1_000_000);
    let b = quickstart_chrome(0.1, 1_000_000);
    assert_eq!(a, b, "same seed must replay to a byte-identical trace");
}

#[test]
fn different_seeds_produce_different_traces() {
    let a = quickstart_chrome(0.1, 1_000_000);
    let mut cfg = ScenarioConfig::from_json(QUICKSTART).expect("bundled config parses");
    cfg.seed ^= 0xDEAD_BEEF;
    let mut sim = cfg.build().expect("bundled config builds");
    sim.enable_span_tracing(1_000_000);
    sim.run_for(SimDuration::from_secs_f64(0.1));
    let chrome = sim.chrome_trace().expect("span tracing is enabled");
    let b = serde_json::to_string_pretty(&chrome).expect("trace serializes");
    assert_ne!(a, b, "different seeds should diverge");
}
