//! End-to-end determinism gate for `uqsim sweep --config`: the emitted
//! table must be byte-identical at any `--jobs` value, because results are
//! keyed by (qps point, replication) — never by completion order — and
//! every float is formatted with fixed precision.
//!
//! These tests drive the real binary (via `CARGO_BIN_EXE_uqsim`) so they
//! also pin the output *framing*: table bytes on stdout, progress on
//! stderr.

use std::path::Path;
use std::process::{Command, Output};

fn quickstart_config() -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("configs/quickstart.json")
        .to_string_lossy()
        .into_owned()
}

/// Runs `uqsim sweep --config quickstart.json --jobs <jobs> <extra...>`.
fn sweep_with_jobs(jobs: usize, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_uqsim"))
        .args([
            "sweep",
            "--config",
            &quickstart_config(),
            "--qps",
            "1000:3000:1000",
            "--reps",
            "2",
            // Past quickstart's 0.5s warmup, so rows carry real measured
            // stats and the byte-compare covers live float formatting.
            "--duration",
            "0.8",
            "--jobs",
            &jobs.to_string(),
        ])
        .args(extra)
        .output()
        .expect("uqsim binary runs")
}

#[test]
fn csv_is_byte_identical_across_jobs() {
    let serial = sweep_with_jobs(1, &[]);
    assert!(serial.status.success(), "serial sweep failed: {serial:?}");
    let parallel = sweep_with_jobs(8, &[]);
    assert!(
        parallel.status.success(),
        "parallel sweep failed: {parallel:?}"
    );
    assert_eq!(
        serial.stdout, parallel.stdout,
        "CSV bytes drifted between --jobs 1 and --jobs 8"
    );
    let text = String::from_utf8(serial.stdout).expect("CSV is UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "header + one row per qps point:\n{text}");
    assert!(lines[0].starts_with("offered_qps,reps,achieved_qps"));
    assert!(lines[1].starts_with("1000.000,2,"));
}

#[test]
fn json_is_byte_identical_across_jobs() {
    let serial = sweep_with_jobs(1, &["--json"]);
    assert!(serial.status.success(), "serial sweep failed: {serial:?}");
    let parallel = sweep_with_jobs(8, &["--json"]);
    assert!(
        parallel.status.success(),
        "parallel sweep failed: {parallel:?}"
    );
    assert_eq!(
        serial.stdout, parallel.stdout,
        "JSON bytes drifted between --jobs 1 and --jobs 8"
    );
    let text = String::from_utf8(serial.stdout).expect("JSON is UTF-8");
    let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    assert_eq!(v["rows"].as_array().map(Vec::len), Some(3));
    assert_eq!(v["reps"].as_u64(), Some(2));
}

#[test]
fn bad_qps_spec_fails_with_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_uqsim"))
        .args([
            "sweep",
            "--config",
            &quickstart_config(),
            "--qps",
            "3000:1000:500",
        ])
        .output()
        .expect("uqsim binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid --qps"), "stderr: {err}");
}
