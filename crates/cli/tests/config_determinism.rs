//! Byte-identity gate across worker counts for every bundled config.
//!
//! `sweep --config` must emit identical bytes at `--jobs 1` and
//! `--jobs 4` — results are keyed by (qps point, replication), never by
//! completion order — and that must hold for each scenario shipped under
//! `configs/`, with and without a fault plan installed. This complements
//! `sweep_determinism.rs`, which pins the quickstart output *shape*; here
//! the concern is that no bundled topology (multi-instance pools,
//! fan-out DAGs) smuggles scheduling nondeterminism into the results.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Every scenario config bundled with the CLI (fault plans excluded).
const CONFIGS: [&str; 3] = ["quickstart.json", "two_tier.json", "social_network.json"];

fn config_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("configs")
        .join(name)
}

/// Runs a short sweep of `config` on `jobs` workers, optionally faulted.
fn sweep(config: &str, jobs: usize, faults: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_uqsim"));
    cmd.arg("sweep")
        .arg("--config")
        .arg(config_path(config))
        .args(["--qps", "500:1000:500", "--reps", "2", "--duration", "0.8"])
        .args(["--jobs", &jobs.to_string()]);
    if let Some(f) = faults {
        cmd.arg("--faults").arg(config_path(f));
    }
    cmd.output().expect("uqsim binary runs")
}

fn assert_jobs_invariant(config: &str, faults: Option<&str>) {
    let serial = sweep(config, 1, faults);
    assert!(
        serial.status.success(),
        "{config}: serial sweep failed: {serial:?}"
    );
    let parallel = sweep(config, 4, faults);
    assert!(
        parallel.status.success(),
        "{config}: parallel sweep failed: {parallel:?}"
    );
    assert_eq!(
        serial.stdout, parallel.stdout,
        "{config}: table bytes drifted between --jobs 1 and --jobs 4 (faults: {faults:?})"
    );
    // Sanity: the table is not trivially empty (header + one row per point).
    let text = String::from_utf8(serial.stdout).expect("output is UTF-8");
    assert!(
        text.lines().count() >= 3,
        "{config}: expected header + 2 qps rows, got:\n{text}"
    );
}

#[test]
fn every_bundled_config_is_byte_identical_across_jobs() {
    for config in CONFIGS {
        assert_jobs_invariant(config, None);
    }
}

#[test]
fn faulted_sweep_is_byte_identical_across_jobs() {
    // The bundled fault plan names quickstart's instances, so it only
    // applies to that scenario; fault-path determinism for the other
    // topologies is covered by the core crate's property tests.
    assert_jobs_invariant("quickstart.json", Some("quickstart_faults.json"));
}
