//! `uqsim` — run a simulation scenario described entirely in JSON.
//!
//! ```text
//! uqsim run <scenario.json> [--duration <secs>] [--seed <n>] [--json]
//!           [--metrics-out <dir>] [--sample-interval <secs>] [--faults <faults.json>]
//!           [--shards <n>]
//! uqsim chaos <scenario.json> --faults <faults.json> [--duration <secs>]
//!             [--seed <n>] [--json] [--events <n>] [--shards <n>]
//! uqsim top --config <scenario.json> [--duration <secs>] [--interval <secs>]
//!           [--seed <n>] [--no-ansi]
//! uqsim sweep --config <scenario.json> --qps <lo:hi:step|a,b,..> [--reps <k>]
//!             [--jobs <n>] [--duration <secs>] [--seed <n>] [--json] [--out <file>]
//!             [--faults <faults.json>] [--shards <n>]
//! uqsim sweep <scenario.json> --loads <qps,...> [--duration <secs>]
//! uqsim trace <scenario.json> [--duration <secs>] [--every <n>] [--max <n>]
//! uqsim trace --config <scenario.json> [--out <trace.json>] [--duration <secs>] [--events <n>]
//!             [--shards <n>]
//! uqsim gen --spec <gen.json> [--seed <n>] [--out <dir>] [--json]
//! uqsim validate <scenario.json>
//! uqsim split <scenario.json> <dir>
//! uqsim example
//! ```
//!
//! Every command accepting `<scenario.json>` also accepts a *directory* in
//! the paper's Table I layout (`machines.json`, `services.json`,
//! `graph.json`, `path.json`, `client.json`, optional `sim.json`); `split`
//! converts a single-file scenario into that layout.
//!
//! `run` executes the scenario and prints a latency/throughput summary
//! (machine-readable with `--json`). With `--metrics-out <dir>` it enables
//! the telemetry layer (periodic sampler + self-profiling) and writes
//! `metrics.prom` (Prometheus text), `metrics.csv` (long-form
//! `t_s,metric,label,value` time series), and `metrics.json` (full
//! telemetry dump) into the directory. `top` is a live terminal view: it
//! steps the simulation one sampler interval at a time and redraws a
//! per-instance utilization / queue-depth / thread-occupancy table plus
//! the latest windowed latency percentiles, like `top(1)` for the
//! simulated cluster. `sweep --config` runs the scenario
//! across a QPS grid × seed replications on the [`uqsim_runner`] thread
//! pool and emits an aggregated CSV (or `--json`) table with 95%
//! confidence intervals; its output is byte-identical at any `--jobs`
//! value. The legacy positional `sweep <path> --loads` form runs a serial
//! single-seed sweep and prints a human-readable table. `trace` with a
//! positional path samples
//! distributed-tracing-style request traces and prints them as JSON lines;
//! `trace --config` instead records the full per-request span log, writes
//! it as Chrome `trace_event` JSON (open the file in `about:tracing` or
//! <https://ui.perfetto.dev>), and audits it against the simulator's
//! invariants, exiting non-zero on any violation. `validate` parses and
//! builds without running. `example` prints a complete scenario file to
//! start from; more elaborate ones ship under `crates/cli/configs/`.
//!
//! `run` and `sweep --config` accept `--faults <faults.json>`: a fault
//! plan ([`uqsim_core::FaultPlan`]) of scheduled fault windows (instance
//! crashes, machine slowdowns, network degradation, pool leaks) plus
//! per-client resilience policies (retries with backoff and jitter,
//! hedging, retry budgets, circuit breakers). `chaos` runs one faulted
//! scenario with full span tracing, audits request-outcome conservation,
//! and prints a failure-mode report (timeline, terminal-outcome counters,
//! resilience activity, goodput vs. achieved throughput); it exits
//! non-zero if the audit finds violations. Faulted runs stay
//! deterministic: the same scenario + plan + seed reproduces the same
//! report byte-for-byte at any `--jobs` value.
//!
//! `run`, `chaos`, `trace --config`, and `sweep --config` accept
//! `--shards <n>`: the scenario is split into request-closed *cells*
//! (DESIGN.md §11) and the cells execute on `n` worker threads via
//! [`uqsim_core::run_partitioned`]. Every output — the printed summary,
//! metrics files, Chrome trace, chaos report, sweep table — is
//! byte-identical at any `--shards` value, so `--shards` is purely a
//! wall-clock knob, like `--jobs` for sweeps. (The partitioned engine
//! draws per-cell RNG streams, so its results are statistically
//! equivalent but not bitwise equal to a run *without* `--shards`;
//! compare partitioned runs against partitioned runs.) Partition
//! diagnostics go to stderr, keeping stdout shard-invariant.
//!
//! `gen` synthesizes a DeathStarBench-class scenario from a compact
//! generation spec ([`uqsim_synth::GenSpec`]): layered service graphs with
//! sampled widths and fan-outs, instance placement, pools, request DAGs,
//! and clients. Generation is deterministic per `(spec, seed)` — `--json`
//! output is byte-identical across runs and machines. `run`, `chaos`,
//! `why`, and `sweep --config` accept `--gen <gen.json>` in place of a
//! scenario path: the spec is generated on the fly (the command's `--seed`
//! doubles as the generation seed) and then treated exactly like a
//! hand-written scenario directory. An example spec ships at
//! `crates/cli/configs/gen_dsb.json`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use uqsim_core::config::ScenarioConfig;
use uqsim_core::telemetry::TelemetryConfig;
use uqsim_core::time::SimDuration;

const EXAMPLE: &str = include_str!("../configs/quickstart.json");

/// Heap allocations made by this process. `uqsim-core` forbids `unsafe`
/// and so cannot count allocations itself; the binary installs this
/// counting wrapper around the system allocator and hands the counter to
/// the self-profiler via [`uqsim_core::telemetry::set_alloc_probe`].
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: every method delegates to `System` unchanged; the only addition
// is a relaxed atomic increment, which cannot violate allocator contracts.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  uqsim run <scenario.json> [--duration <secs>] [--json] \
         [--metrics-out <dir>] [--sample-interval <secs>] [--faults <faults.json>] \
         [--shards <n>]\n  \
         uqsim chaos <scenario.json> --faults <faults.json> [--duration <secs>] \
         [--seed <n>] [--json] [--events <n>] [--shards <n>]\n  \
         uqsim why --config <scenario.json> [--faults <faults.json>] [--duration <secs>] \
         [--seed <n>] [--json] [--events <n>] [--shards <n>] [--out <dir>]\n  \
         uqsim top --config <scenario.json> [--duration <secs>] [--interval <secs>] \
         [--seed <n>] [--no-ansi]\n  \
         uqsim sweep --config <scenario.json> --qps <lo:hi:step|a,b,..> [--reps <k>] \
         [--jobs <n>] [--duration <secs>] [--seed <n>] [--json] [--out <file>] \
         [--faults <faults.json>] [--shards <n>]\n  \
         uqsim sweep <scenario.json> --loads <qps,...> [--duration <secs>]\n  \
         uqsim trace <scenario.json> [--duration <secs>] [--every <n>] [--max <n>]\n  \
         uqsim trace --config <scenario.json> [--out <trace.json>] [--duration <secs>] \
         [--events <n>] [--shards <n>]\n  \
         uqsim gen --spec <gen.json> [--seed <n>] [--out <dir>] [--json]\n  \
         uqsim validate <scenario.json|dir>\n  uqsim split <scenario.json> <dir>\n  uqsim example\n\
         \nrun, chaos, why, and sweep --config also accept --gen <gen.json> in place of a\n\
         scenario path: the spec is generated (seed = --seed) and run like any scenario."
    );
    ExitCode::from(2)
}

/// Loads a scenario from a single file or a Table I directory.
fn load(path: &Path) -> Result<ScenarioConfig, uqsim_core::SimError> {
    if path.is_dir() {
        ScenarioConfig::from_dir(path)
    } else {
        ScenarioConfig::from_file(path)
    }
}

/// `--gen <spec>` support: generates the spec's scenario into a temp
/// Table I directory and returns its path, so every command can load it
/// exactly like a hand-written scenario directory. The command's `--seed`
/// doubles as the generation seed (falling back to the spec's own
/// default), keeping `(spec, seed) → scenario` reproducible from any
/// entry point. The summary goes to stderr; stdout stays reserved for
/// the command's own (byte-stable) output.
fn materialize_gen(
    spec_path: &Path,
    seed: Option<u64>,
) -> Result<std::path::PathBuf, uqsim_core::SimError> {
    let spec = uqsim_synth::GenSpec::from_file(spec_path)?;
    let seed = seed.unwrap_or(spec.seed);
    let cfg = spec.generate(seed)?;
    let dir = std::env::temp_dir().join(format!(
        "uqsim-gen-{}-{}-{seed}",
        std::process::id(),
        spec.name
    ));
    cfg.write_dir(&dir)?;
    eprintln!(
        "generated {} seed {seed}: {} -> {}",
        spec.name,
        uqsim_synth::summarize(&cfg),
        dir.display()
    );
    Ok(dir)
}

/// `uqsim gen`: generate a scenario from a spec, deterministically per
/// `(spec, seed)`. `--out <dir>` writes the Table I layout the other
/// commands load; `--json` prints the single-file scenario to stdout
/// (byte-identical across runs — CI regenerates and `cmp`s it); with
/// neither, the spec is validated, generated, and built, and only the
/// summary line is printed.
fn gen_cmd(
    spec_path: &Path,
    seed: Option<u64>,
    out: Option<&Path>,
    json: bool,
) -> Result<(), uqsim_core::SimError> {
    let spec = uqsim_synth::GenSpec::from_file(spec_path)?;
    let seed = seed.unwrap_or(spec.seed);
    let cfg = spec.generate(seed)?;
    if let Some(dir) = out {
        cfg.write_dir(dir)?;
        eprintln!("wrote Table I layout to {}", dir.display());
    }
    if json {
        println!("{}", cfg.to_json());
    }
    if out.is_none() && !json {
        // Dry run: prove the generated scenario actually builds.
        cfg.build()?;
    }
    eprintln!(
        "generated {} seed {seed}: {}",
        spec.name,
        uqsim_synth::summarize(&cfg)
    );
    Ok(())
}

fn main() -> ExitCode {
    uqsim_core::telemetry::set_alloc_probe(|| ALLOCATIONS.load(Ordering::Relaxed));
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("example") => {
            println!("{EXAMPLE}");
            ExitCode::SUCCESS
        }
        Some("split") => {
            let (Some(src), Some(dst)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            match load(Path::new(src)).and_then(|c| c.write_dir(Path::new(dst))) {
                Ok(()) => {
                    println!("wrote Table I layout to {dst}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("validate") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            match load(Path::new(path)).and_then(|c| c.build()) {
                Ok(sim) => {
                    println!(
                        "ok: {} instances, {} pending events at t=0",
                        sim.instance_count(),
                        sim.live_requests()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("invalid: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("gen") => {
            let mut spec_path = None;
            let mut seed = None;
            let mut out = None;
            let mut json = false;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--spec" => {
                        let Some(v) = args.get(i + 1) else {
                            return usage();
                        };
                        spec_path = Some(v.clone());
                        i += 2;
                    }
                    "--seed" => {
                        let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                            return usage();
                        };
                        seed = Some(v);
                        i += 2;
                    }
                    "--out" => {
                        let Some(v) = args.get(i + 1) else {
                            return usage();
                        };
                        out = Some(std::path::PathBuf::from(v));
                        i += 2;
                    }
                    "--json" => {
                        json = true;
                        i += 1;
                    }
                    _ => return usage(),
                }
            }
            let Some(spec_path) = spec_path else {
                return usage();
            };
            match gen_cmd(Path::new(&spec_path), seed, out.as_deref(), json) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("sweep") if args.iter().any(|a| a == "--config" || a == "--gen") => {
            sweep_grid(&args[1..])
        }
        Some("sweep") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let mut duration = 5.0f64;
            let mut loads: Vec<f64> = Vec::new();
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--duration" => {
                        let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                            return usage();
                        };
                        duration = v;
                        i += 2;
                    }
                    "--loads" => {
                        let Some(list) = args.get(i + 1) else {
                            return usage();
                        };
                        loads = list.split(',').filter_map(|x| x.parse().ok()).collect();
                        i += 2;
                    }
                    _ => return usage(),
                }
            }
            if loads.is_empty() {
                return usage();
            }
            match sweep(Path::new(path), &loads, duration) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("trace") => {
            let mut positional = None;
            let mut config = None;
            let mut out = None;
            let mut duration = 2.0f64;
            let mut every = 100u64;
            let mut max = 20usize;
            let mut events = 1_000_000usize;
            let mut shards = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--config" => {
                        let Some(v) = args.get(i + 1) else {
                            return usage();
                        };
                        config = Some(v.clone());
                        i += 2;
                    }
                    "--out" => {
                        let Some(v) = args.get(i + 1) else {
                            return usage();
                        };
                        out = Some(v.clone());
                        i += 2;
                    }
                    "--duration" => {
                        let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                            return usage();
                        };
                        duration = v;
                        i += 2;
                    }
                    "--every" => {
                        let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                            return usage();
                        };
                        every = v;
                        i += 2;
                    }
                    "--max" => {
                        let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                            return usage();
                        };
                        max = v;
                        i += 2;
                    }
                    "--events" => {
                        let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                            return usage();
                        };
                        events = v;
                        i += 2;
                    }
                    "--shards" => {
                        let Some(v) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) else {
                            return usage();
                        };
                        if v == 0 {
                            return usage();
                        }
                        shards = Some(v);
                        i += 2;
                    }
                    flag if flag.starts_with("--") => return usage(),
                    _ if positional.is_none() => {
                        positional = Some(args[i].clone());
                        i += 1;
                    }
                    _ => return usage(),
                }
            }
            if let Some(config) = config {
                // Chrome trace_event export with invariant auditing.
                let outcome = match shards {
                    Some(shards) => chrome_export_sharded(
                        Path::new(&config),
                        duration,
                        out.as_deref(),
                        events,
                        shards,
                    ),
                    None => chrome_export(Path::new(&config), duration, out.as_deref(), events),
                };
                match outcome {
                    Ok(true) => ExitCode::SUCCESS,
                    Ok(false) => ExitCode::FAILURE,
                    Err(e) => {
                        eprintln!("error: {e}");
                        ExitCode::FAILURE
                    }
                }
            } else {
                // Legacy JSON-lines sampled request traces.
                if shards.is_some() {
                    // Sampled JSON-lines traces have no partitioned form.
                    return usage();
                }
                let Some(path) = positional else {
                    return usage();
                };
                match trace(Path::new(&path), duration, every, max) {
                    Ok(()) => ExitCode::SUCCESS,
                    Err(e) => {
                        eprintln!("error: {e}");
                        ExitCode::FAILURE
                    }
                }
            }
        }
        Some("run") => {
            let mut positional: Option<String> = None;
            let mut gen_spec: Option<String> = None;
            let mut duration = 5.0f64;
            let mut json = false;
            let mut seed = None;
            let mut metrics_out = None;
            let mut sample_interval = 0.1f64;
            let mut faults = None;
            let mut shards = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--gen" => {
                        let Some(v) = args.get(i + 1) else {
                            return usage();
                        };
                        gen_spec = Some(v.clone());
                        i += 2;
                    }
                    "--duration" => {
                        let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                            return usage();
                        };
                        duration = v;
                        i += 2;
                    }
                    "--seed" => {
                        let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                            return usage();
                        };
                        seed = Some(v);
                        i += 2;
                    }
                    "--json" => {
                        json = true;
                        i += 1;
                    }
                    "--metrics-out" => {
                        let Some(v) = args.get(i + 1) else {
                            return usage();
                        };
                        metrics_out = Some(std::path::PathBuf::from(v));
                        i += 2;
                    }
                    "--sample-interval" => {
                        let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                            return usage();
                        };
                        if v <= 0.0 {
                            return usage();
                        }
                        sample_interval = v;
                        i += 2;
                    }
                    "--faults" => {
                        let Some(v) = args.get(i + 1) else {
                            return usage();
                        };
                        faults = Some(std::path::PathBuf::from(v));
                        i += 2;
                    }
                    "--shards" => {
                        let Some(v) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) else {
                            return usage();
                        };
                        if v == 0 {
                            return usage();
                        }
                        shards = Some(v);
                        i += 2;
                    }
                    flag if flag.starts_with("--") => return usage(),
                    _ if positional.is_none() => {
                        positional = Some(args[i].clone());
                        i += 1;
                    }
                    _ => return usage(),
                }
            }
            let path = match (positional, gen_spec) {
                (Some(p), None) => std::path::PathBuf::from(p),
                (None, Some(spec)) => match materialize_gen(Path::new(&spec), seed) {
                    Ok(dir) => dir,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                _ => return usage(),
            };
            let path = path.as_path();
            let outcome = match shards {
                Some(shards) => run_sharded(
                    path,
                    duration,
                    seed,
                    json,
                    metrics_out.as_deref(),
                    sample_interval,
                    faults.as_deref(),
                    shards,
                ),
                None => run(
                    path,
                    duration,
                    seed,
                    json,
                    metrics_out.as_deref(),
                    sample_interval,
                    faults.as_deref(),
                ),
            };
            match outcome {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("chaos") => {
            let mut positional: Option<String> = None;
            let mut gen_spec: Option<String> = None;
            let mut duration = 5.0f64;
            let mut seed = None;
            let mut json = false;
            let mut faults = None;
            let mut events = 4_000_000usize;
            let mut shards = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--gen" => {
                        let Some(v) = args.get(i + 1) else {
                            return usage();
                        };
                        gen_spec = Some(v.clone());
                        i += 2;
                    }
                    "--duration" => {
                        let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                            return usage();
                        };
                        duration = v;
                        i += 2;
                    }
                    "--seed" => {
                        let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                            return usage();
                        };
                        seed = Some(v);
                        i += 2;
                    }
                    "--json" => {
                        json = true;
                        i += 1;
                    }
                    "--faults" => {
                        let Some(v) = args.get(i + 1) else {
                            return usage();
                        };
                        faults = Some(std::path::PathBuf::from(v));
                        i += 2;
                    }
                    "--events" => {
                        let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                            return usage();
                        };
                        events = v;
                        i += 2;
                    }
                    "--shards" => {
                        let Some(v) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) else {
                            return usage();
                        };
                        if v == 0 {
                            return usage();
                        }
                        shards = Some(v);
                        i += 2;
                    }
                    flag if flag.starts_with("--") => return usage(),
                    _ if positional.is_none() => {
                        positional = Some(args[i].clone());
                        i += 1;
                    }
                    _ => return usage(),
                }
            }
            let Some(faults) = faults else {
                return usage();
            };
            let path = match (positional, gen_spec) {
                (Some(p), None) => std::path::PathBuf::from(p),
                (None, Some(spec)) => match materialize_gen(Path::new(&spec), seed) {
                    Ok(dir) => dir,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                _ => return usage(),
            };
            let path = path.as_path();
            let outcome = match shards {
                Some(shards) => chaos_sharded(path, &faults, duration, seed, json, events, shards),
                None => chaos(path, &faults, duration, seed, json, events),
            };
            match outcome {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::FAILURE,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("why") => {
            let mut config = None;
            let mut gen_spec: Option<String> = None;
            let mut faults = None;
            let mut duration = 5.0f64;
            let mut seed = None;
            let mut json = false;
            let mut events = 4_000_000usize;
            let mut shards = None;
            let mut out = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--gen" => {
                        let Some(v) = args.get(i + 1) else {
                            return usage();
                        };
                        gen_spec = Some(v.clone());
                        i += 2;
                    }
                    "--config" => {
                        let Some(v) = args.get(i + 1) else {
                            return usage();
                        };
                        config = Some(v.clone());
                        i += 2;
                    }
                    "--faults" => {
                        let Some(v) = args.get(i + 1) else {
                            return usage();
                        };
                        faults = Some(std::path::PathBuf::from(v));
                        i += 2;
                    }
                    "--duration" => {
                        let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                            return usage();
                        };
                        duration = v;
                        i += 2;
                    }
                    "--seed" => {
                        let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                            return usage();
                        };
                        seed = Some(v);
                        i += 2;
                    }
                    "--json" => {
                        json = true;
                        i += 1;
                    }
                    "--events" => {
                        let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                            return usage();
                        };
                        events = v;
                        i += 2;
                    }
                    "--shards" => {
                        let Some(v) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) else {
                            return usage();
                        };
                        if v == 0 {
                            return usage();
                        }
                        shards = Some(v);
                        i += 2;
                    }
                    "--out" => {
                        let Some(v) = args.get(i + 1) else {
                            return usage();
                        };
                        out = Some(std::path::PathBuf::from(v));
                        i += 2;
                    }
                    _ => return usage(),
                }
            }
            let config = match (config, gen_spec) {
                (Some(c), None) => std::path::PathBuf::from(c),
                (None, Some(spec)) => match materialize_gen(Path::new(&spec), seed) {
                    Ok(dir) => dir,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                _ => return usage(),
            };
            let outcome = match shards {
                Some(shards) => why_sharded(
                    Path::new(&config),
                    faults.as_deref(),
                    duration,
                    seed,
                    json,
                    shards,
                    out.as_deref(),
                ),
                None => why(
                    Path::new(&config),
                    faults.as_deref(),
                    duration,
                    seed,
                    json,
                    events,
                    out.as_deref(),
                ),
            };
            match outcome {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::FAILURE,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("top") => {
            let mut config = None;
            let mut duration = 10.0f64;
            let mut interval = 1.0f64;
            let mut seed = None;
            let mut ansi = true;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--config" => {
                        let Some(v) = args.get(i + 1) else {
                            return usage();
                        };
                        config = Some(v.clone());
                        i += 2;
                    }
                    "--duration" => {
                        let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                            return usage();
                        };
                        duration = v;
                        i += 2;
                    }
                    "--interval" => {
                        let Some(v) = args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) else {
                            return usage();
                        };
                        if v <= 0.0 {
                            return usage();
                        }
                        interval = v;
                        i += 2;
                    }
                    "--seed" => {
                        let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                            return usage();
                        };
                        seed = Some(v);
                        i += 2;
                    }
                    "--no-ansi" => {
                        ansi = false;
                        i += 1;
                    }
                    _ => return usage(),
                }
            }
            let Some(config) = config else {
                return usage();
            };
            match top(Path::new(&config), duration, interval, seed, ansi) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

#[allow(clippy::too_many_arguments)]
fn run(
    path: &Path,
    duration_s: f64,
    seed: Option<u64>,
    json: bool,
    metrics_out: Option<&Path>,
    sample_interval_s: f64,
    faults: Option<&Path>,
) -> Result<(), uqsim_core::SimError> {
    let mut cfg = load(path)?;
    if let Some(seed) = seed {
        cfg.seed = seed;
    }
    let mut sim = cfg.build()?;
    if let Some(faults) = faults {
        let plan = uqsim_core::FaultPlan::from_file(faults)?;
        sim.install_faults(&plan)?;
    }
    if metrics_out.is_some() {
        sim.enable_telemetry(TelemetryConfig {
            sample_interval: Some(SimDuration::from_secs_f64(sample_interval_s)),
            self_profile: true,
            ..TelemetryConfig::default()
        });
    }
    sim.run_for(SimDuration::from_secs_f64(duration_s));
    let s = sim.latency_summary();
    let measured_span = duration_s - cfg.warmup_s;
    let throughput = s.count as f64 / measured_span.max(f64::EPSILON);
    let goodput = (s.count as u64).saturating_sub(sim.degraded_measured()) as f64
        / measured_span.max(f64::EPSILON);
    if json {
        let mut out = serde_json::json!({
            "duration_s": duration_s,
            "warmup_s": cfg.warmup_s,
            "generated": sim.generated(),
            "completed": sim.completed(),
            "throughput_qps": throughput,
            "latency_s": {
                "count": s.count, "mean": s.mean, "p50": s.p50,
                "p95": s.p95, "p99": s.p99, "max": s.max,
            },
            "events_processed": sim.events_processed(),
        });
        if let Some(f) = sim.fault_summary() {
            if let serde_json::Value::Object(obj) = &mut out {
                obj.insert("goodput_qps", serde_json::json!(goodput));
                obj.insert(
                    "faults",
                    serde_json::to_value(&f).expect("fault summary serializes"),
                );
            }
        }
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("summary serializes")
        );
    } else {
        println!("simulated {duration_s}s (warmup {}s)", cfg.warmup_s);
        println!(
            "requests: generated {}, completed {}",
            sim.generated(),
            sim.completed()
        );
        println!("throughput: {throughput:.0} req/s over the measured window");
        println!(
            "latency: mean {:.3}ms p50 {:.3}ms p95 {:.3}ms p99 {:.3}ms max {:.3}ms ({} samples)",
            s.mean * 1e3,
            s.p50 * 1e3,
            s.p95 * 1e3,
            s.p99 * 1e3,
            s.max * 1e3,
            s.count
        );
        println!("engine: {} events processed", sim.events_processed());
        if let Some(f) = sim.fault_summary() {
            println!(
                "faults: {} dropped, {} shed, {} timed out, {} retries, {} degraded \
                 ({:.0} req/s goodput)",
                f.dropped, f.shed, f.timed_out, f.retried, f.degraded, goodput
            );
        }
    }
    if let Some(dir) = metrics_out {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("metrics.prom"), sim.metrics_prometheus())?;
        std::fs::write(
            dir.join("metrics.csv"),
            sim.metrics_csv().expect("sampler is enabled"),
        )?;
        std::fs::write(
            dir.join("metrics.json"),
            serde_json::to_string_pretty(&sim.metrics_json()).expect("metrics serialize"),
        )?;
        eprintln!(
            "wrote metrics.prom, metrics.csv, metrics.json to {}",
            dir.display()
        );
    }
    Ok(())
}

/// `run --shards N`: the partitioned sibling of [`run`]. The scenario is
/// split into request-closed cells ([`uqsim_core::run_partitioned`]) and
/// the cells execute on `shards` worker threads; every stdout byte and
/// every metrics file is identical at any `--shards` value. Partition
/// diagnostics (cell count, shard count) go to stderr so stdout stays
/// shard-invariant.
#[allow(clippy::too_many_arguments)]
fn run_sharded(
    path: &Path,
    duration_s: f64,
    seed: Option<u64>,
    json: bool,
    metrics_out: Option<&Path>,
    sample_interval_s: f64,
    faults: Option<&Path>,
    shards: usize,
) -> Result<(), uqsim_core::SimError> {
    let cfg = load(path)?;
    let seed = seed.unwrap_or(cfg.seed);
    let plan = match faults {
        Some(p) => Some(uqsim_core::FaultPlan::from_file(p)?),
        None => None,
    };
    let mut opts = uqsim_core::PartitionOptions::with_shards(shards);
    if metrics_out.is_some() {
        opts.telemetry.sample_interval = Some(SimDuration::from_secs_f64(sample_interval_s));
    }
    let run = uqsim_core::run_partitioned(
        &cfg,
        plan.as_ref(),
        seed,
        SimDuration::from_secs_f64(duration_s),
        &opts,
    )?;
    eprintln!(
        "partition: {} cell(s) on {} shard(s)",
        run.cells.len(),
        run.shards
    );
    let r = &run.result;
    if json {
        let mut out = serde_json::json!({
            "duration_s": duration_s,
            "warmup_s": cfg.warmup_s,
            "cells": run.cells.len(),
            "generated": r.generated,
            "completed": r.completed,
            "throughput_qps": r.achieved_qps,
            "latency_s": {
                "count": r.latency.count, "mean": r.latency.mean, "p50": r.latency.p50,
                "p95": r.latency.p95, "p99": r.latency.p99, "max": r.latency.max,
            },
            "events_processed": r.events_processed,
        });
        if let Some(f) = &r.fault {
            if let serde_json::Value::Object(obj) = &mut out {
                obj.insert("goodput_qps", serde_json::json!(r.goodput_qps));
                obj.insert(
                    "faults",
                    serde_json::to_value(f).expect("fault summary serializes"),
                );
            }
        }
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("summary serializes")
        );
    } else {
        println!("simulated {duration_s}s (warmup {}s)", cfg.warmup_s);
        println!(
            "requests: generated {}, completed {}",
            r.generated, r.completed
        );
        println!(
            "throughput: {:.0} req/s over the measured window",
            r.achieved_qps
        );
        println!(
            "latency: mean {:.3}ms p50 {:.3}ms p95 {:.3}ms p99 {:.3}ms max {:.3}ms ({} samples)",
            r.latency.mean * 1e3,
            r.latency.p50 * 1e3,
            r.latency.p95 * 1e3,
            r.latency.p99 * 1e3,
            r.latency.max * 1e3,
            r.latency.count
        );
        println!("engine: {} events processed", r.events_processed);
        if let Some(f) = &r.fault {
            println!(
                "faults: {} dropped, {} shed, {} timed out, {} retries, {} degraded \
                 ({:.0} req/s goodput)",
                f.dropped, f.shed, f.timed_out, f.retried, f.degraded, r.goodput_qps
            );
        }
    }
    if let Some(dir) = metrics_out {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("metrics.prom"), run.prometheus())?;
        std::fs::write(
            dir.join("metrics.csv"),
            run.csv().expect("sampler is enabled"),
        )?;
        std::fs::write(
            dir.join("metrics.json"),
            serde_json::to_string_pretty(&run.json()).expect("metrics serialize"),
        )?;
        eprintln!(
            "wrote metrics.prom, metrics.csv, metrics.json to {}",
            dir.display()
        );
    }
    Ok(())
}

/// Runs one faulted scenario with full span tracing, audits
/// request-outcome conservation, and prints a failure-mode report: the
/// fault timeline, terminal-outcome counters, resilience activity, and
/// goodput vs. achieved throughput. Returns whether the audit was clean.
///
/// The report is deterministic: the same scenario + plan + seed prints
/// byte-identical text on every run.
fn chaos(
    path: &Path,
    faults_path: &Path,
    duration_s: f64,
    seed: Option<u64>,
    json: bool,
    events: usize,
) -> Result<bool, uqsim_core::SimError> {
    let mut cfg = load(path)?;
    if let Some(seed) = seed {
        cfg.seed = seed;
    }
    let plan = uqsim_core::FaultPlan::from_file(faults_path)?;
    let mut sim = cfg.build()?;
    sim.install_faults(&plan)?;
    sim.enable_span_tracing(events);
    sim.enable_telemetry(TelemetryConfig {
        critpath: true,
        ..TelemetryConfig::default()
    });
    sim.run_for(SimDuration::from_secs_f64(duration_s));

    let f = sim.fault_summary().expect("fault plan is installed");
    let s = sim.latency_summary();
    let ts = sim.timeout_latency_summary();
    let measured = (duration_s - cfg.warmup_s).max(f64::EPSILON);
    let achieved = s.count as f64 / measured;
    let goodput = (s.count as u64).saturating_sub(sim.degraded_measured()) as f64 / measured;
    let log = sim.span_log().expect("span tracing is enabled");
    let truncated = log.dropped() > 0;
    if truncated {
        eprintln!(
            "warning: span log truncated ({} events dropped at capacity {events}); \
             audit skipped — raise --events",
            log.dropped()
        );
    }
    let report = (!truncated).then(|| sim.audit_trace().expect("span tracing is enabled"));
    let clean = report.as_ref().is_some_and(|r| r.is_clean());
    let critpath = sim
        .critpath_profile()
        .map(|p| p.report())
        .filter(|r| r.requests > 0);

    if json {
        let out = serde_json::json!({
            "scenario": path.display().to_string(),
            "faults": faults_path.display().to_string(),
            "seed": cfg.seed,
            "duration_s": duration_s,
            "warmup_s": cfg.warmup_s,
            "generated": sim.generated(),
            "completed": sim.completed(),
            "outcomes": {
                "dropped": f.dropped,
                "shed": f.shed,
                "timed_out": f.timed_out,
                "degraded": f.degraded,
            },
            "resilience": {
                "retried": f.retried,
                "hedged": f.hedged,
                "breaker_trips": f.breaker_trips,
                "jobs_killed": f.jobs_killed,
                "packets_dropped": f.packets_dropped,
                "retransmits": f.retransmits,
            },
            "throughput_qps": achieved,
            "goodput_qps": goodput,
            "latency_s": {
                "count": s.count, "mean": s.mean, "p50": s.p50,
                "p95": s.p95, "p99": s.p99, "max": s.max,
            },
            "timeout_latency_s": { "count": ts.count, "p50": ts.p50, "p99": ts.p99 },
            "timeline": serde_json::to_value(&f.timeline).expect("timeline serializes"),
            "critpath": critpath.as_ref().map(|r| r.to_json()),
            "audit": if truncated {
                serde_json::json!({ "skipped": "span log truncated; raise --events" })
            } else {
                let r = report.as_ref().expect("audited");
                serde_json::json!({
                    "clean": r.is_clean(),
                    "violations": r.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>(),
                })
            },
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("report serializes")
        );
    } else {
        println!(
            "chaos report: {} + {} (seed {}, {duration_s}s simulated, warmup {}s)",
            path.display(),
            faults_path.display(),
            cfg.seed,
            cfg.warmup_s
        );
        println!();
        println!("timeline:");
        if f.timeline.is_empty() {
            println!("  (no fault windows fired)");
        }
        for entry in &f.timeline {
            println!("  t={:>8.3}s  {}", entry.t_s, entry.what);
        }
        println!();
        println!("outcomes:");
        println!(
            "  generated {}  completed {}  dropped {}  shed {}  timed out {}",
            sim.generated(),
            sim.completed(),
            f.dropped,
            f.shed,
            f.timed_out
        );
        println!(
            "  degraded responses {} (breaker sheds + quorum early-fires)",
            f.degraded
        );
        println!();
        println!("resilience:");
        println!(
            "  retries {}  hedges {}  breaker trips {}",
            f.retried, f.hedged, f.breaker_trips
        );
        println!(
            "  jobs killed {}  packets dropped {}  retransmits {}",
            f.jobs_killed, f.packets_dropped, f.retransmits
        );
        println!();
        println!(
            "latency (within-deadline completions): mean {:.3}ms p50 {:.3}ms p95 {:.3}ms \
             p99 {:.3}ms ({} samples)",
            s.mean * 1e3,
            s.p50 * 1e3,
            s.p95 * 1e3,
            s.p99 * 1e3,
            s.count
        );
        if ts.count > 0 {
            println!(
                "latency at timeout deadline: p50 {:.3}ms p99 {:.3}ms ({} requests)",
                ts.p50 * 1e3,
                ts.p99 * 1e3,
                ts.count
            );
        }
        println!(
            "goodput: {goodput:.0} req/s of {achieved:.0} req/s achieved \
             ({:.1}% full fidelity)",
            100.0 * goodput / achieved.max(f64::EPSILON)
        );
        println!();
        if let Some(rep) = &critpath {
            print_tail_attribution(rep);
        }
        if truncated {
            println!(
                "audit: skipped ({} span events dropped; raise --events)",
                log.dropped()
            );
        } else {
            let r = report.as_ref().expect("audited");
            if r.is_clean() {
                println!(
                    "audit: clean — every request reached exactly one terminal state \
                     ({} spans checked)",
                    r.spans_checked
                );
            } else {
                println!("audit: {} violations", r.violations.len());
                for v in &r.violations {
                    println!("  {v}");
                }
            }
        }
    }
    Ok(clean)
}

/// `chaos --shards N`: the partitioned chaos runner. The fault plan is
/// validated against the whole scenario, split per cell, and installed in
/// every cell; per-cell timelines, counters, audits, and latency samples
/// are merged deterministically, so the printed report is byte-identical
/// at any `--shards` value.
#[allow(clippy::too_many_arguments)]
fn chaos_sharded(
    path: &Path,
    faults_path: &Path,
    duration_s: f64,
    seed: Option<u64>,
    json: bool,
    events: usize,
    shards: usize,
) -> Result<bool, uqsim_core::SimError> {
    let cfg = load(path)?;
    let seed = seed.unwrap_or(cfg.seed);
    let plan = uqsim_core::FaultPlan::from_file(faults_path)?;
    let mut opts = uqsim_core::PartitionOptions::with_shards(shards);
    opts.span_tracing = Some(events);
    let run = uqsim_core::run_partitioned(
        &cfg,
        Some(&plan),
        seed,
        SimDuration::from_secs_f64(duration_s),
        &opts,
    )?;
    eprintln!(
        "partition: {} cell(s) on {} shard(s)",
        run.cells.len(),
        run.shards
    );
    let r = &run.result;
    let f = r.fault.as_ref().expect("fault plan is installed");
    let s = &r.latency;
    let ts = &r.timeout_latency;
    let dropped_spans: u64 = run.cells.iter().map(|c| c.span_dropped).sum();
    let truncated = dropped_spans > 0;
    if truncated {
        for c in &run.cells {
            if c.span_dropped > 0 {
                eprintln!(
                    "warning: cell {} span log truncated ({} events dropped at \
                     capacity {events}); audit skipped — raise --events",
                    c.cell, c.span_dropped
                );
            }
        }
    }
    let report = (!truncated).then(|| run.audit().expect("span tracing is enabled"));
    let clean = report.as_ref().is_some_and(|rep| rep.is_clean());
    let critpath = run
        .result
        .critpath
        .as_ref()
        .map(|p| p.report())
        .filter(|rep| rep.requests > 0);

    if json {
        let out = serde_json::json!({
            "scenario": path.display().to_string(),
            "faults": faults_path.display().to_string(),
            "seed": seed,
            "duration_s": duration_s,
            "warmup_s": cfg.warmup_s,
            "cells": run.cells.len(),
            "generated": r.generated,
            "completed": r.completed,
            "outcomes": {
                "dropped": f.dropped,
                "shed": f.shed,
                "timed_out": f.timed_out,
                "degraded": f.degraded,
            },
            "resilience": {
                "retried": f.retried,
                "hedged": f.hedged,
                "breaker_trips": f.breaker_trips,
                "jobs_killed": f.jobs_killed,
                "packets_dropped": f.packets_dropped,
                "retransmits": f.retransmits,
            },
            "throughput_qps": r.achieved_qps,
            "goodput_qps": r.goodput_qps,
            "latency_s": {
                "count": s.count, "mean": s.mean, "p50": s.p50,
                "p95": s.p95, "p99": s.p99, "max": s.max,
            },
            "timeout_latency_s": { "count": ts.count, "p50": ts.p50, "p99": ts.p99 },
            "timeline": serde_json::to_value(&f.timeline).expect("timeline serializes"),
            "critpath": critpath.as_ref().map(|rep| rep.to_json()),
            "audit": if truncated {
                serde_json::json!({ "skipped": "span log truncated; raise --events" })
            } else {
                let rep = report.as_ref().expect("audited");
                serde_json::json!({
                    "clean": rep.is_clean(),
                    "violations": rep.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>(),
                })
            },
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("report serializes")
        );
    } else {
        println!(
            "chaos report: {} + {} (seed {}, {duration_s}s simulated, warmup {}s)",
            path.display(),
            faults_path.display(),
            seed,
            cfg.warmup_s
        );
        println!();
        println!("timeline:");
        if f.timeline.is_empty() {
            println!("  (no fault windows fired)");
        }
        for entry in &f.timeline {
            println!("  t={:>8.3}s  {}", entry.t_s, entry.what);
        }
        println!();
        println!("outcomes:");
        println!(
            "  generated {}  completed {}  dropped {}  shed {}  timed out {}",
            r.generated, r.completed, f.dropped, f.shed, f.timed_out
        );
        println!(
            "  degraded responses {} (breaker sheds + quorum early-fires)",
            f.degraded
        );
        println!();
        println!("resilience:");
        println!(
            "  retries {}  hedges {}  breaker trips {}",
            f.retried, f.hedged, f.breaker_trips
        );
        println!(
            "  jobs killed {}  packets dropped {}  retransmits {}",
            f.jobs_killed, f.packets_dropped, f.retransmits
        );
        println!();
        println!(
            "latency (within-deadline completions): mean {:.3}ms p50 {:.3}ms p95 {:.3}ms \
             p99 {:.3}ms ({} samples)",
            s.mean * 1e3,
            s.p50 * 1e3,
            s.p95 * 1e3,
            s.p99 * 1e3,
            s.count
        );
        if ts.count > 0 {
            println!(
                "latency at timeout deadline: p50 {:.3}ms p99 {:.3}ms ({} requests)",
                ts.p50 * 1e3,
                ts.p99 * 1e3,
                ts.count
            );
        }
        println!(
            "goodput: {:.0} req/s of {:.0} req/s achieved ({:.1}% full fidelity)",
            r.goodput_qps,
            r.achieved_qps,
            100.0 * r.goodput_qps / r.achieved_qps.max(f64::EPSILON)
        );
        println!();
        if let Some(rep) = &critpath {
            print_tail_attribution(rep);
        }
        if truncated {
            println!("audit: skipped ({dropped_spans} span events dropped; raise --events)");
        } else {
            let rep = report.as_ref().expect("audited");
            if rep.is_clean() {
                println!(
                    "audit: clean — every request reached exactly one terminal state \
                     ({} spans checked)",
                    rep.spans_checked
                );
            } else {
                println!("audit: {} violations", rep.violations.len());
                for v in &rep.violations {
                    println!("  {v}");
                }
            }
        }
    }
    Ok(clean)
}

/// Prints the chaos report's tail-attribution section: where the
/// p99+-band requests spent their critical path, and which `(site, kind)`
/// components grew the most from the median cohort to the tail — the
/// direct answer to "which fault inflated the tail, and through what
/// mechanism". Deterministic: share-ranked with `(site, kind)` tie-breaks.
fn print_tail_attribution(rep: &uqsim_core::CpcReport) {
    println!("tail attribution (critical path):");
    if let Some(top) = rep.top_p99() {
        println!(
            "  p99+ cohort spends {:.1}% of its critical path in {} {}",
            top.p99_share * 100.0,
            top.site,
            top.kind.name()
        );
    }
    let mut any = false;
    for row in rep.ranked_by_diff().into_iter().take(3) {
        // Half a percentage point keeps sub-noise rows out of the report.
        if row.diff_share < 0.005 {
            break;
        }
        any = true;
        println!(
            "  {} {}: {:.1}% of the median cohort's path -> {:.1}% of the tail's \
             (+{:.1} pts)",
            row.site,
            row.kind.name(),
            row.p50_share * 100.0,
            row.p99_share * 100.0,
            row.diff_share * 100.0
        );
    }
    if !any {
        println!("  (no component grows from the median cohort to the tail)");
    }
    println!();
}

/// `uqsim why`: critical-path extraction and tail-latency attribution.
///
/// Runs the scenario (optionally faulted) with both streaming critical-path
/// accumulation and full span tracing, cross-checks the streaming profile
/// against an independent replay of the recorded trace, audits the trace,
/// and prints the cohort/differential attribution report. Fails (non-zero
/// exit) when the span log truncated — a truncated stream would silently
/// under-attribute — when the audit finds violations, or when streaming and
/// replayed attribution disagree.
#[allow(clippy::too_many_arguments)]
fn why(
    path: &Path,
    faults: Option<&Path>,
    duration_s: f64,
    seed: Option<u64>,
    json: bool,
    events: usize,
    out: Option<&Path>,
) -> Result<bool, uqsim_core::SimError> {
    let mut cfg = load(path)?;
    if let Some(seed) = seed {
        cfg.seed = seed;
    }
    let mut sim = cfg.build()?;
    if let Some(faults) = faults {
        let plan = uqsim_core::FaultPlan::from_file(faults)?;
        sim.install_faults(&plan)?;
    }
    sim.enable_span_tracing(events);
    sim.enable_telemetry(TelemetryConfig {
        critpath: true,
        ..TelemetryConfig::default()
    });
    sim.run_for(SimDuration::from_secs_f64(duration_s));

    let log = sim.span_log().expect("span tracing is enabled");
    if log.dropped() > 0 {
        eprintln!(
            "error: span log truncated ({} events dropped at capacity {events}); \
             attribution would be incomplete — raise --events",
            log.dropped()
        );
        return Ok(false);
    }
    let audit = sim.audit_trace().expect("span tracing is enabled");
    if !audit.is_clean() {
        eprintln!(
            "error: trace audit found {} violation(s); refusing to attribute",
            audit.violations.len()
        );
        for v in &audit.violations {
            eprintln!("  {v}");
        }
        return Ok(false);
    }
    let streaming = sim
        .critpath_profile()
        .expect("critpath telemetry is enabled");
    let replayed = match uqsim_core::CpcProfile::from_trace(log, &sim.trace_meta()) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("error: {msg}");
            return Ok(false);
        }
    };
    if replayed != streaming {
        eprintln!(
            "error: streaming and trace-replayed attribution disagree; \
             this is an engine bug — please report it"
        );
        return Ok(false);
    }
    eprintln!(
        "why: {} span events replayed, {} spans audited, streaming == replay",
        log.len(),
        audit.spans_checked
    );
    emit_why(
        path,
        faults,
        cfg.seed,
        duration_s,
        cfg.warmup_s,
        json,
        &streaming,
        out,
    )?;
    Ok(true)
}

/// `why --shards N`: the partitioned attribution runner. Each cell streams
/// its own bounded-memory profile; the merged profile — and therefore
/// every rendered output — is byte-identical at any `--shards` value
/// (cell decomposition depends on the scenario, not the worker count).
#[allow(clippy::too_many_arguments)]
fn why_sharded(
    path: &Path,
    faults: Option<&Path>,
    duration_s: f64,
    seed: Option<u64>,
    json: bool,
    shards: usize,
    out: Option<&Path>,
) -> Result<bool, uqsim_core::SimError> {
    let cfg = load(path)?;
    let seed = seed.unwrap_or(cfg.seed);
    let plan = match faults {
        Some(p) => Some(uqsim_core::FaultPlan::from_file(p)?),
        None => None,
    };
    let opts = uqsim_core::PartitionOptions::with_shards(shards);
    let run = uqsim_core::run_partitioned(
        &cfg,
        plan.as_ref(),
        seed,
        SimDuration::from_secs_f64(duration_s),
        &opts,
    )?;
    eprintln!(
        "partition: {} cell(s) on {} shard(s)",
        run.cells.len(),
        run.shards
    );
    let profile = run
        .result
        .critpath
        .as_ref()
        .expect("partitioned runs stream critpath profiles");
    emit_why(
        path,
        faults,
        seed,
        duration_s,
        cfg.warmup_s,
        json,
        profile,
        out,
    )?;
    Ok(true)
}

/// Renders an attribution profile to stdout (text, or the full report JSON
/// with `--json`) and, with `--out <dir>`, writes the machine-readable
/// artifact set: `critpath.txt`, `critpath.csv`, `critpath.json`,
/// `critpath.folded` (flame-graph folded stacks), and `critpath.prom`
/// (Prometheus `uqsim_critpath_*` exposition). All renderings are
/// deterministic functions of the profile.
#[allow(clippy::too_many_arguments)]
fn emit_why(
    path: &Path,
    faults: Option<&Path>,
    seed: u64,
    duration_s: f64,
    warmup_s: f64,
    json: bool,
    profile: &uqsim_core::CpcProfile,
    out: Option<&Path>,
) -> Result<(), uqsim_core::SimError> {
    let report = profile.report();
    if json {
        let mut doc = report.to_json();
        if let serde_json::Value::Object(obj) = &mut doc {
            obj.insert(
                "scenario".to_string(),
                serde_json::json!(path.display().to_string()),
            );
            obj.insert(
                "faults".to_string(),
                serde_json::json!(faults.map(|f| f.display().to_string())),
            );
            obj.insert("seed".to_string(), serde_json::json!(seed));
            obj.insert("duration_s".to_string(), serde_json::json!(duration_s));
            obj.insert("warmup_s".to_string(), serde_json::json!(warmup_s));
        }
        println!(
            "{}",
            serde_json::to_string_pretty(&doc).expect("report serializes")
        );
    } else {
        println!(
            "why: {}{} (seed {seed}, {duration_s}s simulated, warmup {warmup_s}s)",
            path.display(),
            faults
                .map(|f| format!(" + {}", f.display()))
                .unwrap_or_default()
        );
        println!();
        print!("{}", report.to_text());
    }
    if let Some(dir) = out {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("critpath.txt"), report.to_text())?;
        std::fs::write(dir.join("critpath.csv"), report.to_csv())?;
        std::fs::write(
            dir.join("critpath.json"),
            serde_json::to_string_pretty(&report.to_json()).expect("report serializes"),
        )?;
        std::fs::write(dir.join("critpath.folded"), profile.to_folded())?;
        std::fs::write(
            dir.join("critpath.prom"),
            profile.registry().to_prometheus(),
        )?;
        eprintln!(
            "wrote critpath.txt, critpath.csv, critpath.json, critpath.folded, \
             critpath.prom to {}",
            dir.display()
        );
    }
    Ok(())
}

/// `top(1)` for the simulated cluster: steps the simulation one sampler
/// interval at a time and redraws per-instance utilization, queue depth,
/// and thread occupancy plus the latest windowed latency percentiles.
/// With ANSI enabled each frame overdraws the previous one; `--no-ansi`
/// appends frames instead (useful for piping to a file).
fn top(
    path: &Path,
    duration_s: f64,
    interval_s: f64,
    seed: Option<u64>,
    ansi: bool,
) -> Result<(), uqsim_core::SimError> {
    let mut cfg = load(path)?;
    if let Some(seed) = seed {
        cfg.seed = seed;
    }
    let mut sim = cfg.build()?;
    let interval = SimDuration::from_secs_f64(interval_s);
    sim.enable_telemetry(TelemetryConfig {
        sample_interval: Some(interval),
        self_profile: true,
        ..TelemetryConfig::default()
    });
    let deadline = sim.now() + SimDuration::from_secs_f64(duration_s);
    while sim.now() < deadline {
        let step = interval.min(deadline - sim.now());
        sim.run_for(step);
        if ansi {
            // Clear the screen and home the cursor before each frame.
            print!("\x1b[2J\x1b[H");
        }
        print_top_frame(&sim, interval_s);
    }
    Ok(())
}

/// Renders one `uqsim top` frame from the latest sampler tick.
fn print_top_frame(sim: &uqsim_core::sim::Simulator, interval_s: f64) {
    println!(
        "uqsim top — t={:.3}s  (sampler interval {interval_s}s)",
        sim.now().as_secs_f64()
    );
    if let Some(p) = sim.self_profile().last() {
        let allocs = p
            .allocs_per_sim_s
            .map(|a| format!(", {a:.0} allocs/sim-s"))
            .unwrap_or_default();
        println!(
            "engine: {} events total, {:.0} events/wall-s, heap {}{allocs}",
            p.events_processed, p.events_per_wall_s, p.event_heap
        );
    }
    println!(
        "in flight: {} requests, {} jobs;  completed {} / generated {} ({} timeouts)",
        sim.live_requests(),
        sim.live_jobs(),
        sim.completed(),
        sim.generated(),
        sim.timeouts()
    );
    if let Some(w) = sim.telemetry_windows().last() {
        println!(
            "window: {} done, {:.0} qps, p50 {:.3}ms p95 {:.3}ms p99 {:.3}ms",
            w.count,
            w.throughput,
            w.p50_s * 1e3,
            w.p95_s * 1e3,
            w.p99_s * 1e3
        );
    }
    let Some(series) = sim.telemetry_series() else {
        return;
    };
    println!();
    println!(
        "{:<24} {:>6} {:>7} {:>5} {:>5}",
        "INSTANCE", "UTIL", "QDEPTH", "RUN", "BLK"
    );
    for def in series.defs() {
        if def.metric != "instance_queue_depth" {
            continue;
        }
        let Some((_, name)) = &def.label else {
            continue;
        };
        let get = |metric| series.latest(metric, Some(name.as_str())).unwrap_or(0.0);
        println!(
            "{name:<24} {:>5.1}% {:>7} {:>5} {:>5}",
            get("instance_utilization") * 100.0,
            get("instance_queue_depth") as u64,
            get("threads_running") as u64,
            get("threads_blocked") as u64
        );
    }
    println!();
    println!("{:<24} {:>8} {:>6}", "MACHINE", "NET-UTIL", "NETQ");
    for def in series.defs() {
        if def.metric != "network_utilization" {
            continue;
        }
        let Some((_, name)) = &def.label else {
            continue;
        };
        let get = |metric| series.latest(metric, Some(name.as_str())).unwrap_or(0.0);
        println!(
            "{name:<24} {:>7.1}% {:>6}",
            get("network_utilization") * 100.0,
            get("net_queue_depth") as u64
        );
    }
    let pools: Vec<&String> = series
        .defs()
        .iter()
        .filter(|d| d.metric == "pool_free")
        .filter_map(|d| d.label.as_ref().map(|(_, v)| v))
        .collect();
    if !pools.is_empty() {
        println!();
        println!("{:<32} {:>6} {:>8}", "POOL", "FREE", "WAITERS");
        for name in pools {
            let get = |metric| series.latest(metric, Some(name.as_str())).unwrap_or(0.0);
            println!(
                "{name:<32} {:>6} {:>8}",
                get("pool_free") as u64,
                get("pool_waiters") as u64
            );
        }
    }
}

/// The parallel grid sweep: `Q` QPS points × `K` seed replications fanned
/// across the [`uqsim_runner`] pool, aggregated into a CSV/JSON table with
/// across-replication 95% confidence intervals. Progress goes to stderr;
/// the table goes to stdout (or `--out`), and its bytes do not depend on
/// `--jobs`.
fn sweep_grid(args: &[String]) -> ExitCode {
    let mut config = None;
    let mut gen_spec: Option<String> = None;
    let mut qps_spec = None;
    let mut reps = 3usize;
    let mut jobs = uqsim_runner::available_jobs();
    let mut duration = 5.0f64;
    let mut seed = None;
    let mut json = false;
    let mut out = None;
    let mut faults = None;
    let mut shards = 0usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--shards" => {
                let Some(v) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) else {
                    return usage();
                };
                if v == 0 {
                    return usage();
                }
                shards = v;
                i += 2;
            }
            "--faults" => {
                let Some(v) = args.get(i + 1) else {
                    return usage();
                };
                faults = Some(std::path::PathBuf::from(v));
                i += 2;
            }
            "--config" => {
                let Some(v) = args.get(i + 1) else {
                    return usage();
                };
                config = Some(v.clone());
                i += 2;
            }
            "--gen" => {
                let Some(v) = args.get(i + 1) else {
                    return usage();
                };
                gen_spec = Some(v.clone());
                i += 2;
            }
            "--qps" => {
                let Some(v) = args.get(i + 1) else {
                    return usage();
                };
                qps_spec = Some(v.clone());
                i += 2;
            }
            "--reps" => {
                let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                reps = v;
                i += 2;
            }
            "--jobs" => {
                let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                jobs = v;
                i += 2;
            }
            "--duration" => {
                let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                duration = v;
                i += 2;
            }
            "--seed" => {
                let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                seed = Some(v);
                i += 2;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "--out" => {
                let Some(v) = args.get(i + 1) else {
                    return usage();
                };
                out = Some(v.clone());
                i += 2;
            }
            _ => return usage(),
        }
    }
    let Some(qps_spec) = qps_spec else {
        return usage();
    };
    let config = match (config, gen_spec) {
        (Some(c), None) => std::path::PathBuf::from(c),
        (None, Some(spec)) => match materialize_gen(Path::new(&spec), seed) {
            Ok(dir) => dir,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        _ => return usage(),
    };
    let qps = match uqsim_runner::sweep::parse_qps_spec(&qps_spec) {
        Ok(qps) => qps,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let cfg = match load(Path::new(&config)) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let plan = match faults.map(|p| uqsim_core::FaultPlan::from_file(&p)) {
        None => None,
        Some(Ok(plan)) => Some(plan),
        Some(Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = uqsim_runner::sweep::SweepSpec {
        qps,
        reps: reps.max(1),
        base_seed: seed.unwrap_or(cfg.seed),
        duration: SimDuration::from_secs_f64(duration),
        jobs: jobs.max(1),
        faults: plan,
        shards,
    };
    eprintln!(
        "sweep: {} qps points x {} reps = {} cells on {} worker(s){}",
        spec.qps.len(),
        spec.reps,
        spec.qps.len() * spec.reps,
        spec.jobs,
        if spec.shards >= 1 {
            format!(", partitioned engine at {} shard(s) per cell", spec.shards)
        } else {
            String::new()
        }
    );
    let table = match uqsim_runner::sweep::run_scenario_sweep(&cfg, &spec, &|p| {
        eprintln!(
            "  [{}/{}] qps={:.0} seed={}",
            p.finished, p.total, p.offered_qps, p.seed
        );
    }) {
        Ok(table) => table,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut text = if json {
        table.to_json()
    } else {
        table.to_csv()
    };
    if !text.ends_with('\n') {
        text.push('\n');
    }
    match out {
        Some(file) => {
            if let Err(e) = std::fs::write(&file, &text) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {file}");
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

/// Runs the scenario once per offered load, scaling every client's rate
/// schedule so the configured rates act as a load *shape*.
fn sweep(path: &Path, loads: &[f64], duration_s: f64) -> Result<(), uqsim_core::SimError> {
    let base = load(path)?;
    println!(
        "{:>12} {:>13} {:>9} {:>9} {:>9} {:>9}",
        "offered_qps", "achieved_qps", "mean_ms", "p50_ms", "p95_ms", "p99_ms"
    );
    for &qps in loads {
        // `with_offered_qps` scales every client kind uniformly (schedules
        // pinned, MMPP/session rates rescaled, traces left as-is).
        let cfg = base.with_offered_qps(qps);
        let mut sim = cfg.build()?;
        sim.run_for(SimDuration::from_secs_f64(duration_s));
        let s = sim.latency_summary();
        let achieved = s.count as f64 / (duration_s - cfg.warmup_s).max(f64::EPSILON);
        println!(
            "{:>12.0} {:>13.0} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            qps,
            achieved,
            s.mean * 1e3,
            s.p50 * 1e3,
            s.p95 * 1e3,
            s.p99 * 1e3
        );
    }
    Ok(())
}

/// Runs the scenario with span tracing enabled, writes a Chrome
/// `trace_event` JSON file (viewable in `about:tracing` or Perfetto), and
/// audits the trace against the simulator's invariants. Returns whether the
/// audit came back clean.
fn chrome_export(
    path: &Path,
    duration_s: f64,
    out: Option<&str>,
    events: usize,
) -> Result<bool, uqsim_core::SimError> {
    let cfg = load(path)?;
    let mut sim = cfg.build()?;
    sim.enable_span_tracing(events);
    sim.run_for(SimDuration::from_secs_f64(duration_s));
    let chrome = sim.chrome_trace().expect("span tracing is enabled");
    let text = serde_json::to_string_pretty(&chrome).expect("trace serializes");
    match out {
        Some(file) => {
            std::fs::write(file, text)?;
            eprintln!("wrote {file}");
        }
        None => println!("{text}"),
    }
    let log = sim.span_log().expect("span tracing is enabled");
    let report = sim.audit_trace().expect("span tracing is enabled");
    eprintln!(
        "trace: {} events ({} dropped), {} spans audited, {} completed requests",
        log.len(),
        log.dropped(),
        report.spans_checked,
        sim.completed()
    );
    if report.is_clean() {
        eprintln!("audit: clean");
    } else {
        eprintln!("audit: {} violations", report.violations.len());
        for v in &report.violations {
            eprintln!("  {v}");
        }
    }
    if log.dropped() > 0 {
        eprintln!(
            "error: span log truncated ({} events dropped at capacity {events}); \
             the trace is incomplete — raise --events",
            log.dropped()
        );
        return Ok(false);
    }
    Ok(report.is_clean())
}

/// `trace --config --shards N`: partitioned Chrome export. Per-cell
/// traces merge with disjoint pid ranges and `c<i>:`-prefixed scope ids;
/// the written JSON and the audit verdict are byte-identical at any
/// `--shards` value.
fn chrome_export_sharded(
    path: &Path,
    duration_s: f64,
    out: Option<&str>,
    events: usize,
    shards: usize,
) -> Result<bool, uqsim_core::SimError> {
    let cfg = load(path)?;
    let mut opts = uqsim_core::PartitionOptions::with_shards(shards);
    opts.span_tracing = Some(events);
    let run = uqsim_core::run_partitioned(
        &cfg,
        None,
        cfg.seed,
        SimDuration::from_secs_f64(duration_s),
        &opts,
    )?;
    eprintln!(
        "partition: {} cell(s) on {} shard(s)",
        run.cells.len(),
        run.shards
    );
    let chrome = run.chrome_trace().expect("span tracing is enabled");
    let text = serde_json::to_string_pretty(&chrome).expect("trace serializes");
    match out {
        Some(file) => {
            std::fs::write(file, text)?;
            eprintln!("wrote {file}");
        }
        None => println!("{text}"),
    }
    let dropped: u64 = run.cells.iter().map(|c| c.span_dropped).sum();
    let report = run.audit().expect("span tracing is enabled");
    eprintln!(
        "trace: {} events ({} dropped), {} spans audited, {} completed requests",
        chrome["traceEvents"].as_array().map_or(0, Vec::len),
        dropped,
        report.spans_checked,
        run.result.completed
    );
    if report.is_clean() {
        eprintln!("audit: clean");
    } else {
        eprintln!("audit: {} violations", report.violations.len());
        for v in &report.violations {
            eprintln!("  {v}");
        }
    }
    if dropped > 0 {
        for c in &run.cells {
            if c.span_dropped > 0 {
                eprintln!(
                    "error: cell {} span log truncated ({} events dropped at \
                     capacity {events}); the trace is incomplete — raise --events",
                    c.cell, c.span_dropped
                );
            }
        }
        return Ok(false);
    }
    Ok(report.is_clean())
}

/// Runs the scenario with tracing enabled and prints sampled request
/// traces as JSON lines.
fn trace(path: &Path, duration_s: f64, every: u64, max: usize) -> Result<(), uqsim_core::SimError> {
    let cfg = load(path)?;
    let mut sim = cfg.build()?;
    sim.enable_tracing(every.max(1), max);
    sim.run_for(SimDuration::from_secs_f64(duration_s));
    for t in sim.traces() {
        println!("{}", serde_json::to_string(t).expect("trace serializes"));
    }
    eprintln!(
        "{} traces over {} completed requests",
        sim.traces().len(),
        sim.completed()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundled_quickstart_builds_and_runs() {
        let cfg = ScenarioConfig::from_json(EXAMPLE).unwrap();
        let mut sim = cfg.build().unwrap();
        sim.run_for(SimDuration::from_secs(1));
        assert!(sim.completed() > 100);
    }

    #[test]
    fn bundled_social_network_builds_and_runs() {
        // Exercises block_thread_until / pin_thread_of / reply_via purely
        // from JSON.
        let text = include_str!("../configs/social_network.json");
        let cfg = ScenarioConfig::from_json(text).unwrap();
        let mut sim = cfg.build().unwrap();
        sim.run_for(SimDuration::from_secs(2));
        assert!(sim.completed() > 10_000, "completed {}", sim.completed());
        let s = sim.latency_summary();
        assert!(s.p99 < 20e-3, "p99 {}", s.p99);
        assert_eq!(
            sim.generated(),
            sim.completed() + sim.live_requests() as u64
        );
    }

    #[test]
    fn bundled_two_tier_builds_and_runs() {
        let text = include_str!("../configs/two_tier.json");
        let cfg = ScenarioConfig::from_json(text).unwrap();
        let mut sim = cfg.build().unwrap();
        sim.run_for(SimDuration::from_secs(1));
        assert!(sim.completed() > 1_000, "completed {}", sim.completed());
        let s = sim.latency_summary();
        assert!(s.p99 < 10e-3, "p99 {}", s.p99);
    }

    /// Runs one bundled config with span tracing on and asserts the trace
    /// audit comes back with zero violations and the Chrome export is
    /// well-formed.
    fn audit_config(text: &str, secs: u64) {
        let cfg = ScenarioConfig::from_json(text).unwrap();
        let mut sim = cfg.build().unwrap();
        sim.enable_span_tracing(2_000_000);
        sim.run_for(SimDuration::from_secs(secs));
        let log = sim.span_log().expect("tracing enabled");
        assert_eq!(log.dropped(), 0, "event capacity too small for this test");
        let report = sim.audit_trace().expect("tracing enabled");
        assert!(report.is_clean(), "violations: {:#?}", report.violations);
        assert!(report.spans_checked > 0, "no spans correlated");
        let chrome = sim.chrome_trace().expect("tracing enabled");
        let events = chrome["traceEvents"].as_array().expect("traceEvents array");
        assert!(events.len() > 100, "only {} chrome events", events.len());
        // Every event carries the mandatory Chrome trace_event keys.
        for ev in events {
            assert!(ev["ph"].as_str().is_some(), "event without ph: {ev}");
            assert!(ev["pid"].as_u64().is_some(), "event without pid: {ev}");
        }
    }

    /// The PR's acceptance scenario: under the bundled retry-storm fault
    /// plan, the p99-cohort's top critical-path contributor must be the
    /// faulted backend tier's queueing (or retry) component — attribution
    /// points at the fault, not at healthy services.
    #[test]
    fn social_network_retry_storm_attributes_tail_to_faulted_tier() {
        let cfg =
            ScenarioConfig::from_json(include_str!("../configs/social_network.json")).unwrap();
        let plan =
            uqsim_core::FaultPlan::from_json(include_str!("../configs/social_network_faults.json"))
                .unwrap();
        let result = uqsim_core::run::run_one_faulted(
            &cfg,
            Some(&plan),
            cfg.seed,
            SimDuration::from_secs(3),
        )
        .unwrap();
        assert!(result.retried > 0, "retry storm produced no retries");
        let report = result
            .critpath
            .expect("run_one_faulted streams a critpath profile")
            .report();
        let top = report.top_p99().expect("profile is non-empty");
        assert!(
            matches!(
                top.kind,
                uqsim_core::EdgeKind::QueueWait | uqsim_core::EdgeKind::RetryBackoff
            ),
            "top p99 contributor is {} {}, expected queue_wait/retry_backoff",
            top.site,
            top.kind.name()
        );
        assert!(
            ["user", "post", "media"]
                .iter()
                .any(|b| top.site.starts_with(b)),
            "top p99 contributor {} is not on the faulted backend tier",
            top.site
        );
    }

    #[test]
    fn quickstart_trace_audits_clean() {
        audit_config(EXAMPLE, 1);
    }

    #[test]
    fn two_tier_trace_audits_clean() {
        audit_config(include_str!("../configs/two_tier.json"), 1);
    }

    #[test]
    fn social_network_trace_audits_clean() {
        audit_config(include_str!("../configs/social_network.json"), 1);
    }
}
