//! Directional gate on the retry-storm experiment: naive unbounded
//! retries must turn a transient slowdown into a persistent (metastable)
//! goodput collapse, while the same retries behind a budget + breaker —
//! and plain no-retry — must recover once the fault clears. The recorded
//! numbers live in `BENCH_faults.json` at the repository root.

use uqsim_bench::experiments::retry_storm;

#[test]
fn naive_retries_collapse_where_budget_and_breaker_recover() {
    let s = retry_storm::run().expect("experiment runs");

    // Pre-fault, all three policies are healthy and equivalent (no
    // failures yet, so no policy has acted): near the offered load.
    for o in [&s.no_retry, &s.naive, &s.guarded] {
        assert!(
            o.pre_goodput > 0.9 * retry_storm::OFFERED_QPS,
            "{} unhealthy before the fault: {:.0} qps",
            o.name,
            o.pre_goodput
        );
    }

    // The storm phase hurts everyone: the 4x slowdown caps capacity well
    // under the offered load.
    for o in [&s.no_retry, &s.naive, &s.guarded] {
        assert!(
            o.storm_goodput < 0.8 * o.pre_goodput,
            "{} unaffected by the fault: {:.0} qps",
            o.name,
            o.storm_goodput
        );
    }

    // The metastable cliff: with the trigger long gone, naive retries keep
    // the system collapsed ...
    assert!(
        s.naive.recovery_goodput < 0.3 * s.naive.pre_goodput,
        "naive retries recovered ({:.0} of {:.0} qps) — no metastable regime",
        s.naive.recovery_goodput,
        s.naive.pre_goodput
    );
    assert!(
        s.naive.retried > 10_000,
        "naive policy barely retried: {}",
        s.naive.retried
    );
    // ... while the guarded policy (and no-retry) return to health.
    for o in [&s.no_retry, &s.guarded] {
        assert!(
            o.recovery_goodput > 0.8 * o.pre_goodput,
            "{} failed to recover: {:.0} of {:.0} qps",
            o.name,
            o.recovery_goodput,
            o.pre_goodput
        );
    }
    // The guard rails actually engaged.
    assert!(s.guarded.breaker_trips > 0, "breaker never tripped");
    assert!(
        s.guarded.retried < s.naive.retried / 10,
        "budget failed to bound retries: {} vs naive {}",
        s.guarded.retried,
        s.naive.retried
    );
}
