//! End-to-end smoke test for the experiment harness under the parallel
//! sweep engine: one real figure (Fig. 8, load-balancing validation) runs
//! at `jobs = 2` with quick settings, must finish inside a generous
//! wall-clock budget, and its curves are exported as a CSV artifact
//! (`target/smoke_fig08.csv`) that CI uploads.

use std::time::{Duration, Instant};
use uqsim_bench::{experiments::fig08, RunOpts};
use uqsim_core::time::SimDuration;

/// Quick settings mirroring `--quick` (sub-2 s duration selects the small
/// sweep grids) pinned to two workers.
fn smoke_opts() -> RunOpts {
    RunOpts {
        duration: SimDuration::from_secs(1),
        warmup: SimDuration::from_millis(250),
        jobs: 2,
    }
}

#[test]
fn fig08_runs_end_to_end_and_exports_csv() {
    let start = Instant::now();
    let results = fig08::run(&smoke_opts()).expect("fig08 runs");
    let elapsed = start.elapsed();

    assert_eq!(results.len(), 3, "one curve per scale-out factor");
    for r in &results {
        assert!(
            !r.points.is_empty(),
            "scale-out {} has no points",
            r.scale_out
        );
        assert!(
            r.saturation_qps > 0.0,
            "scale-out {} never saturated in range",
            r.scale_out
        );
    }
    // Scaling out raises the saturation load.
    assert!(results[0].saturation_qps < results[2].saturation_qps);

    // Budget: quick mode simulates 3 curves x 5 points x 1.25s. An order
    // of magnitude of headroom over observed times keeps CI boxes honest
    // about regressions without flaking on noise.
    let budget = Duration::from_secs(300);
    assert!(
        elapsed < budget,
        "fig08 smoke took {elapsed:?}, budget {budget:?}"
    );

    // Export the curves as the CI artifact.
    let mut csv = String::from("scale_out,offered_qps,achieved_qps,p99_ms\n");
    for r in &results {
        for p in &r.points {
            csv.push_str(&format!(
                "{},{:.3},{:.3},{:.6}\n",
                r.scale_out,
                p.offered_qps,
                p.achieved_qps,
                p.latency.p99 * 1e3
            ));
        }
    }
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/smoke_fig08.csv");
    std::fs::write(&out, csv).expect("artifact CSV writes");
}

#[test]
fn fig08_results_do_not_depend_on_jobs() {
    let serial = fig08::run(&RunOpts {
        jobs: 1,
        ..smoke_opts()
    })
    .expect("serial fig08 runs");
    let parallel = fig08::run(&smoke_opts()).expect("parallel fig08 runs");
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.scale_out, b.scale_out);
        assert_eq!(
            a.saturation_qps, b.saturation_qps,
            "saturation drifted with jobs at scale-out {}",
            a.scale_out
        );
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.offered_qps, pb.offered_qps);
            assert_eq!(pa.achieved_qps, pb.achieved_qps);
            assert_eq!(pa.latency.p99, pb.latency.p99);
        }
    }
}
