//! Allocation ratchet for the dispatch hot path.
//!
//! Before the event-core rewrite the engine allocated ~0.94 times per
//! event at steady state (per-event heap boxes, cloned job vectors,
//! rebuilt batch buffers). The ladder queue + arena/pool recycling took
//! that to ~0.001 (see `BENCH_engine.json`). This test pins the property
//! with two orders of magnitude of headroom: if steady-state dispatch
//! starts allocating per event again, it fails regardless of machine
//! speed (counts, not wall-clock, so it is noise-immune and runs
//! unconditionally — no `UQSIM_ENFORCE_BENCH` gate).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use uqsim_apps::scenarios::{two_tier, TwoTierConfig};
use uqsim_core::time::SimDuration;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: every method delegates to `System` unchanged; the only addition
// is a relaxed atomic increment, which cannot violate allocator contracts.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Pre-rewrite steady state was ~0.944 allocations/event; post-rewrite is
/// ~0.001. The ratchet sits well below the old number and well above the
/// new one, so real regressions trip it and arena-growth jitter does not.
const MAX_ALLOCS_PER_EVENT: f64 = 0.05;

#[test]
fn steady_state_dispatch_does_not_allocate_per_event() {
    let mut sim = two_tier(&TwoTierConfig::at_qps(5_000.0)).expect("scenario builds");
    // Warm arenas, queues, and pools past first-touch growth.
    sim.run_for(SimDuration::from_secs_f64(0.5));
    let ev0 = sim.events_processed();
    let a0 = ALLOCATIONS.load(Ordering::Relaxed);
    sim.run_for(SimDuration::from_secs_f64(1.0));
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - a0;
    let events = sim.events_processed() - ev0;
    assert!(
        events > 10_000,
        "scenario too small to measure: {events} events"
    );
    let per_event = allocs as f64 / events as f64;
    assert!(
        per_event < MAX_ALLOCS_PER_EVENT,
        "steady-state dispatch allocates {per_event:.4} times per event \
         ({allocs} allocations over {events} events); the ratchet is \
         {MAX_ALLOCS_PER_EVENT} — the hot path has started heap-allocating again"
    );
}
