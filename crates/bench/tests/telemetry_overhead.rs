//! Telemetry overhead regression tests.
//!
//! Two layers: an always-on check that telemetry *observes without
//! perturbing* — the simulation trajectory (completions, latency
//! percentiles) is bit-identical with telemetry on and off — plus a
//! wall-clock engine-speed floor against the recorded
//! `BENCH_telemetry.json` baseline, gated behind `UQSIM_ENFORCE_BENCH=1`
//! because absolute events/second only means something on the machine
//! class the baseline was recorded on (CI sets the variable; laptops
//! should not).

use std::time::Instant;
use uqsim_apps::scenarios::{two_tier, TwoTierConfig};
use uqsim_core::telemetry::TelemetryConfig;
use uqsim_core::time::SimDuration;
use uqsim_core::Simulator;

const QPS: f64 = 20_000.0;
const SIM_SECS: f64 = 1.0;

fn build() -> Simulator {
    two_tier(&TwoTierConfig::at_qps(QPS)).expect("scenario builds")
}

/// Telemetry must be a pure observer: enabling the full stack (sampler,
/// self-profiling, breakdowns, critical-path attribution) must not change
/// a single completion or latency sample. Sampler ticks are extra
/// *events*, but they only read state, so the trajectory every other event
/// takes is unchanged.
#[test]
fn telemetry_does_not_perturb_the_simulation() {
    let mut plain = build();
    plain.run_for(SimDuration::from_secs_f64(SIM_SECS));

    let mut instrumented = build();
    instrumented.enable_telemetry(TelemetryConfig {
        sample_interval: Some(SimDuration::from_millis(10)),
        breakdown_capacity: 100_000,
        self_profile: true,
        critpath: true,
    });
    instrumented.run_for(SimDuration::from_secs_f64(SIM_SECS));

    assert_eq!(plain.generated(), instrumented.generated());
    assert_eq!(plain.completed(), instrumented.completed());
    assert_eq!(plain.timeouts(), instrumented.timeouts());
    assert_eq!(
        plain.latency_summary(),
        instrumented.latency_summary(),
        "latency distribution drifted under telemetry"
    );
    // The only event-count difference is the sampler's own ticks.
    let extra = instrumented.events_processed() - plain.events_processed();
    let expected_ticks = (SIM_SECS / 0.010) as u64;
    assert!(
        extra <= expected_ticks + 2,
        "telemetry added {extra} events, expected at most {} sampler ticks",
        expected_ticks + 2
    );
}

/// Loose, noise-proof sanity bound that runs everywhere: the decomposition
/// hooks on the disabled path are `Option::is_none` checks, so a run with
/// telemetry disabled must not be dramatically slower than one with the
/// full stack enabled (they do the same simulation work).
#[test]
fn disabled_telemetry_is_not_slower_than_enabled() {
    // Warm both paths once so neither measurement pays first-touch costs.
    let mut warm = build();
    warm.run_for(SimDuration::from_millis(100));

    let start = Instant::now();
    let mut off = build();
    off.run_for(SimDuration::from_secs_f64(SIM_SECS));
    let off_wall = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut on = build();
    on.enable_telemetry(TelemetryConfig {
        sample_interval: Some(SimDuration::from_millis(10)),
        self_profile: true,
        ..TelemetryConfig::default()
    });
    on.run_for(SimDuration::from_secs_f64(SIM_SECS));
    let on_wall = start.elapsed().as_secs_f64();

    // 3x headroom: this guards against pathological regressions (e.g. a
    // hook doing real work on the disabled path), not percentage points.
    assert!(
        off_wall < on_wall * 3.0,
        "telemetry-disabled run ({off_wall:.3}s) is much slower than enabled ({on_wall:.3}s)"
    );
}

/// Engine-speed floor against the recorded baseline, enforced only where
/// the baseline is comparable. The constant mirrors the `telemetry_off`
/// mode of `BENCH_telemetry.json` (regenerate with
/// `cargo run --release -p uqsim-bench --bin bench_telemetry`); the floor
/// factor below discounts it for measured host noise.
#[test]
fn engine_speed_with_telemetry_disabled_meets_baseline() {
    if std::env::var_os("UQSIM_ENFORCE_BENCH").is_none() {
        eprintln!("UQSIM_ENFORCE_BENCH not set; skipping absolute engine-speed check");
        return;
    }
    // Keep in sync with BENCH_telemetry.json "telemetry_off".events_per_sec.
    // Pre-ladder-queue engine: 3_332_458. Event-core rewrite: 6_717_300.
    const BASELINE_EVENTS_PER_SEC: f64 = 6_717_300.0;

    // Best of nine, same protocol as the bench binary (shared-vCPU hosts
    // need the extra reps for the minimum to reach the true cost floor).
    let mut best = f64::MAX;
    let mut events = 0;
    for _ in 0..9 {
        let mut sim = build();
        let start = Instant::now();
        sim.run_for(SimDuration::from_secs_f64(SIM_SECS));
        let wall = start.elapsed().as_secs_f64();
        if wall < best {
            best = wall;
            events = sim.events_processed();
        }
    }
    // Shared-vCPU hosts show up to ±20% day-to-day drift on identical
    // binaries, so the floor sits at 75% of the recorded best pass — still
    // 51% above the pre-rewrite engine (3.33M ev/s), which cannot pass it.
    const FLOOR_FACTOR: f64 = 0.75;
    let events_per_sec = events as f64 / best;
    assert!(
        events_per_sec >= FLOOR_FACTOR * BASELINE_EVENTS_PER_SEC,
        "engine speed {events_per_sec:.0} ev/s fell below {:.0}% of the \
         recorded {BASELINE_EVENTS_PER_SEC:.0} ev/s baseline",
        FLOOR_FACTOR * 100.0
    );
}
