//! Scalability benchmark: wall-clock cost of simulating clusters of
//! growing size (the tail-at-scale topology, 10 → 500 leaves). µqSim's
//! claim is that simulation makes >100-server studies tractable; this
//! tracks how the engine's cost grows with cluster size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use uqsim_apps::scenarios::{tail_at_scale, TailAtScaleConfig};
use uqsim_core::time::SimDuration;

fn bench_cluster_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("tail_at_scale_cluster");
    g.sample_size(10);
    for n in [10usize, 50, 100, 500] {
        let cfg = TailAtScaleConfig::new(n, 0.01, 60.0);
        let mut probe = tail_at_scale(&cfg).expect("scenario builds");
        probe.run_for(SimDuration::from_millis(500));
        g.throughput(Throughput::Elements(probe.events_processed()));
        g.bench_with_input(BenchmarkId::new("sim_500ms", n), &n, |b, &n| {
            b.iter(|| {
                let cfg = TailAtScaleConfig::new(n, 0.01, 60.0);
                let mut sim = tail_at_scale(&cfg).expect("scenario builds");
                sim.run_for(SimDuration::from_millis(500));
                sim.completed()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cluster_sizes);
criterion_main!(benches);
