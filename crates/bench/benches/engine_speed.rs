//! Simulator-performance benchmarks: how fast the DES core processes
//! events on the paper's scenario mix. µqSim's headline property is being
//! *scalable*; these benches track simulated-seconds-per-wall-second and
//! events/second on representative topologies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use uqsim_apps::scenarios::{
    fanout, social_network, two_tier, FanoutConfig, SocialNetworkConfig, TwoTierConfig,
};
use uqsim_core::time::SimDuration;

fn bench_two_tier(c: &mut Criterion) {
    let mut g = c.benchmark_group("two_tier");
    g.sample_size(10);
    for qps in [10_000.0, 50_000.0] {
        // Count events for throughput reporting.
        let mut probe = two_tier(&TwoTierConfig::at_qps(qps)).expect("scenario builds");
        probe.run_for(SimDuration::from_millis(500));
        g.throughput(Throughput::Elements(probe.events_processed()));
        g.bench_with_input(
            BenchmarkId::new("sim_500ms", qps as u64),
            &qps,
            |b, &qps| {
                b.iter(|| {
                    let mut sim = two_tier(&TwoTierConfig::at_qps(qps)).expect("scenario builds");
                    sim.run_for(SimDuration::from_millis(500));
                    sim.completed()
                })
            },
        );
    }
    g.finish();
}

fn bench_social(c: &mut Criterion) {
    let mut g = c.benchmark_group("social_network");
    g.sample_size(10);
    let qps = 10_000.0;
    let mut probe = social_network(&SocialNetworkConfig::at_qps(qps)).expect("scenario builds");
    probe.run_for(SimDuration::from_millis(500));
    g.throughput(Throughput::Elements(probe.events_processed()));
    g.bench_function("sim_500ms_10kqps", |b| {
        b.iter(|| {
            let mut sim =
                social_network(&SocialNetworkConfig::at_qps(qps)).expect("scenario builds");
            sim.run_for(SimDuration::from_millis(500));
            sim.completed()
        })
    });
    g.finish();
}

fn bench_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("fanout16");
    g.sample_size(10);
    let qps = 4_000.0;
    let mut probe = fanout(&FanoutConfig::new(16, qps)).expect("scenario builds");
    probe.run_for(SimDuration::from_millis(500));
    g.throughput(Throughput::Elements(probe.events_processed()));
    g.bench_function("sim_500ms_4kqps", |b| {
        b.iter(|| {
            let mut sim = fanout(&FanoutConfig::new(16, qps)).expect("scenario builds");
            sim.run_for(SimDuration::from_millis(500));
            sim.completed()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_two_tier, bench_social, bench_fanout);
criterion_main!(benches);
