//! Reference anchors digitized from the paper's prose and figures.
//!
//! The real-system curves themselves are not published as data; the prose,
//! however, pins the following quantitative anchors, which the harness
//! prints next to the simulated results so every figure regeneration can be
//! checked for shape.

/// §IV-B: load-balancing saturation points — `(scale_out, saturation_qps)`.
/// "The saturation load scales linearly for a scale out factor of 4 and 8
/// from 35kQPS to 70kQPS, and sub-linearly beyond that, e.g., for scale-out
/// of 16, saturation happens at 120kQPS."
pub const LB_SATURATION: [(usize, f64); 3] = [(4, 35_000.0), (8, 70_000.0), (16, 120_000.0)];

/// §IV-C: "the Thrift server saturates beyond 50kQPS".
pub const THRIFT_SATURATION_QPS: f64 = 50_000.0;

/// §IV-C: "the low-load latency does not exceed 100us".
pub const THRIFT_LOW_LOAD_LATENCY_S: f64 = 100e-6;

/// §IV-A: 2-tier pre-saturation deviation between sim and real — mean
/// latencies "on average 0.17ms away", tails "on average 0.83ms away".
pub const TWO_TIER_MEAN_DEV_MS: f64 = 0.17;
/// See [`TWO_TIER_MEAN_DEV_MS`].
pub const TWO_TIER_TAIL_DEV_MS: f64 = 0.83;

/// §IV-A: 3-tier deviations — 1.55 ms mean, 2.32 ms tail.
pub const THREE_TIER_MEAN_DEV_MS: f64 = 1.55;
/// See [`THREE_TIER_MEAN_DEV_MS`].
pub const THREE_TIER_TAIL_DEV_MS: f64 = 2.32;

/// §V-A: "for cluster sizes greater than 100 servers, 1% of slow servers
/// is sufficient to drive tail latency high".
pub const TAIL_AT_SCALE_CRITICAL_CLUSTER: usize = 100;

/// Table III: QoS violation rates — `(interval_s, simulated, real)`.
pub const TABLE3_VIOLATION_RATES: [(f64, f64, f64); 3] = [
    (0.1, 0.006, 0.015),
    (0.5, 0.022, 0.027),
    (1.0, 0.050, 0.060),
];

/// §V-B: the QoS target of the power experiment.
pub const POWER_QOS_TARGET_S: f64 = 5e-3;

/// §V-B: "tail latency in both cases converges to around 2ms despite a 5ms
/// QoS target" (DVFS granularity).
pub const POWER_CONVERGED_TAIL_S: f64 = 2e-3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lb_reference_scales_linearly_then_sublinearly() {
        assert_eq!(LB_SATURATION[1].1, 2.0 * LB_SATURATION[0].1);
        assert!(LB_SATURATION[2].1 < 4.0 * LB_SATURATION[0].1);
    }

    #[test]
    fn table3_rates_increase_with_interval() {
        for w in TABLE3_VIOLATION_RATES.windows(2) {
            assert!(w[1].1 > w[0].1 && w[1].2 > w[0].2);
        }
        // Real is noisier than sim at every interval.
        for (_, sim, real) in TABLE3_VIOLATION_RATES {
            assert!(real >= sim);
        }
    }
}
