//! # uqsim-bench
//!
//! The experiment harness: load sweeps, saturation detection, table
//! printing, the paper's reference anchors, and the power-management
//! experiment driver. Each `src/bin/figXX_*.rs` binary regenerates one
//! table or figure of the evaluation; see EXPERIMENTS.md at the repository
//! root for the full index and recorded outputs.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use uqsim_core::metrics::LatencySummary;
use uqsim_core::time::SimDuration;
use uqsim_core::{SimResult, Simulator};

pub mod experiments;
pub mod power_experiment;
pub mod reference;

/// One measured point of a load–latency curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPoint {
    /// Offered load, requests/second.
    pub offered_qps: f64,
    /// Achieved post-warmup throughput, requests/second.
    pub achieved_qps: f64,
    /// End-to-end latency over post-warmup completions.
    pub latency: LatencySummary,
}

impl LoadPoint {
    /// True if the system kept up with the offered load (within 5%).
    pub fn kept_up(&self) -> bool {
        self.achieved_qps >= 0.95 * self.offered_qps
    }
}

/// Harness-wide run options.
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    /// Simulated measurement duration per point (after warmup).
    pub duration: SimDuration,
    /// Simulated warmup per point.
    pub warmup: SimDuration,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            duration: SimDuration::from_secs(4),
            warmup: SimDuration::from_secs(1),
        }
    }
}

impl RunOpts {
    /// Reads `--quick` from the process arguments (or `UQSIM_QUICK=1` from
    /// the environment) and shortens runs accordingly.
    pub fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("UQSIM_QUICK")
                .map(|v| v == "1")
                .unwrap_or(false);
        if quick {
            RunOpts {
                duration: SimDuration::from_millis(1500),
                warmup: SimDuration::from_millis(500),
            }
        } else {
            RunOpts::default()
        }
    }

    /// Total simulated time per point.
    pub fn total(&self) -> SimDuration {
        self.warmup + self.duration
    }
}

/// Runs a built simulator for `opts.total()` and summarizes one point.
///
/// The simulator must have been built with `warmup` matching `opts.warmup`
/// (the scenario builders take it via `CommonOpts`).
pub fn measure(mut sim: Simulator, offered_qps: f64, opts: &RunOpts) -> LoadPoint {
    sim.run_for(opts.total());
    let latency = sim.latency_summary();
    let achieved = latency.count as f64 / opts.duration.as_secs_f64();
    LoadPoint {
        offered_qps,
        achieved_qps: achieved,
        latency,
    }
}

/// Sweeps a list of offered loads through a scenario constructor.
///
/// # Errors
///
/// Propagates the first scenario-construction failure.
pub fn sweep(
    loads: &[f64],
    opts: &RunOpts,
    mut build: impl FnMut(f64) -> SimResult<Simulator>,
) -> SimResult<Vec<LoadPoint>> {
    let mut out = Vec::with_capacity(loads.len());
    for &qps in loads {
        let sim = build(qps)?;
        out.push(measure(sim, qps, opts));
    }
    Ok(out)
}

/// The offered load at which the system stops keeping up (or the tail
/// exceeds `p99_limit_s`), linearly interpreted as "the previous point
/// still held". Returns the last offered load if no point saturated.
pub fn saturation_qps(points: &[LoadPoint], p99_limit_s: f64) -> f64 {
    for (i, p) in points.iter().enumerate() {
        if !p.kept_up() || p.latency.p99 > p99_limit_s {
            return if i == 0 {
                p.offered_qps
            } else {
                points[i - 1].offered_qps
            };
        }
    }
    points.last().map(|p| p.offered_qps).unwrap_or(0.0)
}

/// Prints a load–latency series as an aligned table.
pub fn print_series(label: &str, points: &[LoadPoint]) {
    println!("## {label}");
    println!(
        "{:>12} {:>13} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "offered_qps", "achieved_qps", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "kept_up"
    );
    for p in points {
        println!(
            "{:>12.0} {:>13.0} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9}",
            p.offered_qps,
            p.achieved_qps,
            p.latency.mean * 1e3,
            p.latency.p50 * 1e3,
            p.latency.p95 * 1e3,
            p.latency.p99 * 1e3,
            if p.kept_up() { "yes" } else { "NO" },
        );
    }
}

/// Mean absolute deviation between two series' means and p99s (the
/// sim-vs-real deviation statistic of §IV-A), over points where both kept
/// up *and* stayed out of the saturation knee (p99 under 20 ms) —
/// pre-saturation, as the paper measures.
pub fn deviation_ms(a: &[LoadPoint], b: &[LoadPoint]) -> (f64, f64) {
    let pairs: Vec<(&LoadPoint, &LoadPoint)> = a
        .iter()
        .zip(b)
        .filter(|(x, y)| {
            x.kept_up() && y.kept_up() && x.latency.p99 < 20e-3 && y.latency.p99 < 20e-3
        })
        .collect();
    if pairs.is_empty() {
        return (0.0, 0.0);
    }
    let n = pairs.len() as f64;
    let mean_dev = pairs
        .iter()
        .map(|(x, y)| (x.latency.mean - y.latency.mean).abs())
        .sum::<f64>()
        / n;
    let tail_dev = pairs
        .iter()
        .map(|(x, y)| (x.latency.p99 - y.latency.p99).abs())
        .sum::<f64>()
        / n;
    (mean_dev * 1e3, tail_dev * 1e3)
}

/// Geometrically spaced loads from `lo` to `hi` (inclusive-ish).
pub fn geometric_loads(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2 && lo > 0.0 && hi > lo);
    let ratio = (hi / lo).powf(1.0 / (n - 1) as f64);
    (0..n).map(|i| lo * ratio.powi(i as i32)).collect()
}

/// Linearly spaced loads from `lo` to `hi` inclusive.
pub fn linear_loads(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2);
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(offered: f64, achieved: f64, p99: f64) -> LoadPoint {
        LoadPoint {
            offered_qps: offered,
            achieved_qps: achieved,
            latency: LatencySummary {
                count: 100,
                mean: p99 / 2.0,
                p50: p99 / 2.0,
                p95: p99 * 0.9,
                p99,
                max: p99,
            },
        }
    }

    #[test]
    fn saturation_detects_throughput_collapse() {
        let pts = vec![
            point(10.0, 10.0, 1e-3),
            point(20.0, 19.9, 1e-3),
            point(30.0, 22.0, 1e-3),
        ];
        assert_eq!(saturation_qps(&pts, 1.0), 20.0);
    }

    #[test]
    fn saturation_detects_tail_blowup() {
        let pts = vec![point(10.0, 10.0, 1e-3), point(20.0, 20.0, 0.5)];
        assert_eq!(saturation_qps(&pts, 0.1), 10.0);
    }

    #[test]
    fn saturation_none_returns_last() {
        let pts = vec![point(10.0, 10.0, 1e-3), point(20.0, 20.0, 1e-3)];
        assert_eq!(saturation_qps(&pts, 1.0), 20.0);
    }

    #[test]
    fn deviation_ignores_saturated_points() {
        let a = vec![point(10.0, 10.0, 2e-3), point(20.0, 12.0, 50e-3)];
        let b = vec![point(10.0, 10.0, 3e-3), point(20.0, 20.0, 1e-3)];
        let (_, tail) = deviation_ms(&a, &b);
        assert!(
            (tail - 1.0).abs() < 1e-9,
            "only the first pair counts: {tail}"
        );
    }

    #[test]
    fn load_spacings() {
        let g = geometric_loads(1.0, 100.0, 3);
        assert!((g[1] - 10.0).abs() < 1e-9);
        let l = linear_loads(0.0, 10.0, 3);
        assert_eq!(l, vec![0.0, 5.0, 10.0]);
    }
}
