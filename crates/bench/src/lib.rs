//! # uqsim-bench
//!
//! The experiment harness: load sweeps, saturation detection, table
//! printing, the paper's reference anchors, and the power-management
//! experiment driver. Each `src/bin/figXX_*.rs` binary regenerates one
//! table or figure of the evaluation; see EXPERIMENTS.md at the repository
//! root for the full index and recorded outputs.
//!
//! Sweeps execute through the `uqsim_runner` thread pool: every
//! `(curve, load)` cell is an independent simulator run, so [`sweep`] and
//! [`sweep_batch`] fan cells across [`RunOpts::jobs`] workers and reassemble
//! results in submission order. Output is identical at any worker count;
//! only wall-clock changes. Experiments therefore *compute first, print
//! after* — nothing may print from inside a build/measure closure.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use uqsim_core::metrics::LatencySummary;
use uqsim_core::time::SimDuration;
use uqsim_core::{SimResult, Simulator};

pub mod experiments;
pub mod power_experiment;
pub mod reference;

/// One measured point of a load–latency curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPoint {
    /// Offered load, requests/second.
    pub offered_qps: f64,
    /// Achieved post-warmup throughput, requests/second.
    pub achieved_qps: f64,
    /// End-to-end latency over post-warmup completions.
    pub latency: LatencySummary,
}

impl LoadPoint {
    /// True if the system kept up with the offered load (within 5%).
    pub fn kept_up(&self) -> bool {
        self.achieved_qps >= 0.95 * self.offered_qps
    }
}

/// Harness-wide run options.
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    /// Simulated measurement duration per point (after warmup).
    pub duration: SimDuration,
    /// Simulated warmup per point.
    pub warmup: SimDuration,
    /// Worker threads for sweep execution (0 or 1 = serial). Changes
    /// wall-clock only — results are identical at any value.
    pub jobs: usize,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            duration: SimDuration::from_secs(4),
            warmup: SimDuration::from_secs(1),
            jobs: uqsim_runner::available_jobs(),
        }
    }
}

impl RunOpts {
    /// Reads options from the process arguments and environment:
    /// `--quick` / `UQSIM_QUICK=1` shortens runs, `--jobs N` /
    /// `UQSIM_JOBS=N` sets the sweep worker count (default: all cores).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick")
            || std::env::var("UQSIM_QUICK")
                .map(|v| v == "1")
                .unwrap_or(false);
        let jobs = args
            .iter()
            .position(|a| a == "--jobs")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .or_else(|| {
                std::env::var("UQSIM_JOBS")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or_else(uqsim_runner::available_jobs);
        let mut opts = if quick {
            RunOpts {
                duration: SimDuration::from_millis(1500),
                warmup: SimDuration::from_millis(500),
                ..Default::default()
            }
        } else {
            RunOpts::default()
        };
        opts.jobs = jobs.max(1);
        opts
    }

    /// Total simulated time per point.
    pub fn total(&self) -> SimDuration {
        self.warmup + self.duration
    }
}

/// Runs a built simulator for `opts.total()` and summarizes one point.
///
/// The simulator must have been built with `warmup` matching `opts.warmup`
/// (the scenario builders take it via `CommonOpts`).
pub fn measure(mut sim: Simulator, offered_qps: f64, opts: &RunOpts) -> LoadPoint {
    sim.run_for(opts.total());
    let latency = sim.latency_summary();
    let achieved = latency.count as f64 / opts.duration.as_secs_f64();
    LoadPoint {
        offered_qps,
        achieved_qps: achieved,
        latency,
    }
}

/// Sweeps a list of offered loads through a scenario constructor, fanning
/// the points across [`RunOpts::jobs`] workers. Points come back in
/// `loads` order whatever the worker count.
///
/// # Errors
///
/// Every point still runs, then the error of the lowest-indexed failing
/// point is returned (what a serial loop would have reported first).
pub fn sweep(
    loads: &[f64],
    opts: &RunOpts,
    build: impl Fn(f64) -> SimResult<Simulator> + Sync,
) -> SimResult<Vec<LoadPoint>> {
    uqsim_runner::try_run_indexed(opts.jobs, loads.len(), |i| {
        build(loads[i]).map(|sim| measure(sim, loads[i], opts))
    })
}

/// One curve of a multi-curve experiment, submitted to [`sweep_batch`].
pub struct SweepJob<'a> {
    /// Offered loads for this curve.
    pub loads: Vec<f64>,
    /// Builds the simulator for one offered load.
    pub build: Box<dyn Fn(f64) -> SimResult<Simulator> + Sync + 'a>,
}

impl std::fmt::Debug for SweepJob<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepJob")
            .field("loads", &self.loads)
            .finish_non_exhaustive()
    }
}

impl<'a> SweepJob<'a> {
    /// Creates a curve submission.
    pub fn new(loads: Vec<f64>, build: impl Fn(f64) -> SimResult<Simulator> + Sync + 'a) -> Self {
        SweepJob {
            loads,
            build: Box::new(build),
        }
    }
}

/// Runs several curves' load points as one flat pool batch — a two-curve
/// validation (simulated + noisy reference) or a whole figure's family of
/// configurations saturates every worker from the first cell to the last,
/// instead of parallelizing only within one curve at a time. Returns one
/// `Vec<LoadPoint>` per job, in submission order.
///
/// # Errors
///
/// Every cell still runs, then the error of the lowest-indexed failing
/// cell is returned.
pub fn sweep_batch(opts: &RunOpts, jobs: &[SweepJob<'_>]) -> SimResult<Vec<Vec<LoadPoint>>> {
    // Flatten (curve, load) cells, remembering each cell's curve.
    let cells: Vec<(usize, f64)> = jobs
        .iter()
        .enumerate()
        .flat_map(|(ji, job)| job.loads.iter().map(move |&q| (ji, q)))
        .collect();
    let points = uqsim_runner::try_run_indexed(opts.jobs, cells.len(), |i| {
        let (ji, qps) = cells[i];
        (jobs[ji].build)(qps).map(|sim| measure(sim, qps, opts))
    })?;
    let mut out: Vec<Vec<LoadPoint>> = jobs
        .iter()
        .map(|j| Vec::with_capacity(j.loads.len()))
        .collect();
    for ((ji, _), p) in cells.into_iter().zip(points) {
        out[ji].push(p);
    }
    Ok(out)
}

/// Parallel fallible map over arbitrary experiment inputs (grid cells,
/// decision intervals, pool sizes, …), preserving input order.
///
/// # Errors
///
/// Every item still runs, then the error of the lowest-indexed failing
/// item is returned.
pub fn par_try_map<I: Sync, T: Send>(
    opts: &RunOpts,
    items: &[I],
    f: impl Fn(&I) -> SimResult<T> + Sync,
) -> SimResult<Vec<T>> {
    uqsim_runner::try_run_indexed(opts.jobs, items.len(), |i| f(&items[i]))
}

/// The offered load at which the system stops keeping up (or the tail
/// exceeds `p99_limit_s`), linearly interpreted as "the previous point
/// still held". Returns the last offered load if no point saturated.
pub fn saturation_qps(points: &[LoadPoint], p99_limit_s: f64) -> f64 {
    for (i, p) in points.iter().enumerate() {
        if !p.kept_up() || p.latency.p99 > p99_limit_s {
            return if i == 0 {
                p.offered_qps
            } else {
                points[i - 1].offered_qps
            };
        }
    }
    points.last().map(|p| p.offered_qps).unwrap_or(0.0)
}

/// Renders a load–latency series as an aligned table (used by experiments
/// that compute in parallel first and print afterwards).
pub fn format_series(label: &str, points: &[LoadPoint]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "## {label}").unwrap();
    writeln!(
        out,
        "{:>12} {:>13} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "offered_qps", "achieved_qps", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "kept_up"
    )
    .unwrap();
    for p in points {
        writeln!(
            out,
            "{:>12.0} {:>13.0} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9}",
            p.offered_qps,
            p.achieved_qps,
            p.latency.mean * 1e3,
            p.latency.p50 * 1e3,
            p.latency.p95 * 1e3,
            p.latency.p99 * 1e3,
            if p.kept_up() { "yes" } else { "NO" },
        )
        .unwrap();
    }
    out
}

/// Prints a load–latency series as an aligned table.
pub fn print_series(label: &str, points: &[LoadPoint]) {
    print!("{}", format_series(label, points));
}

/// Mean absolute deviation between two series' means and p99s (the
/// sim-vs-real deviation statistic of §IV-A), over points where both kept
/// up *and* stayed out of the saturation knee (p99 under 20 ms) —
/// pre-saturation, as the paper measures.
pub fn deviation_ms(a: &[LoadPoint], b: &[LoadPoint]) -> (f64, f64) {
    let pairs: Vec<(&LoadPoint, &LoadPoint)> = a
        .iter()
        .zip(b)
        .filter(|(x, y)| {
            x.kept_up() && y.kept_up() && x.latency.p99 < 20e-3 && y.latency.p99 < 20e-3
        })
        .collect();
    if pairs.is_empty() {
        return (0.0, 0.0);
    }
    let n = pairs.len() as f64;
    let mean_dev = pairs
        .iter()
        .map(|(x, y)| (x.latency.mean - y.latency.mean).abs())
        .sum::<f64>()
        / n;
    let tail_dev = pairs
        .iter()
        .map(|(x, y)| (x.latency.p99 - y.latency.p99).abs())
        .sum::<f64>()
        / n;
    (mean_dev * 1e3, tail_dev * 1e3)
}

/// Geometrically spaced loads from `lo` to `hi` (inclusive-ish).
pub fn geometric_loads(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2 && lo > 0.0 && hi > lo);
    let ratio = (hi / lo).powf(1.0 / (n - 1) as f64);
    (0..n).map(|i| lo * ratio.powi(i as i32)).collect()
}

/// Linearly spaced loads from `lo` to `hi` inclusive.
pub fn linear_loads(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2);
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(offered: f64, achieved: f64, p99: f64) -> LoadPoint {
        LoadPoint {
            offered_qps: offered,
            achieved_qps: achieved,
            latency: LatencySummary {
                count: 100,
                mean: p99 / 2.0,
                p50: p99 / 2.0,
                p95: p99 * 0.9,
                p99,
                max: p99,
            },
        }
    }

    #[test]
    fn saturation_detects_throughput_collapse() {
        let pts = vec![
            point(10.0, 10.0, 1e-3),
            point(20.0, 19.9, 1e-3),
            point(30.0, 22.0, 1e-3),
        ];
        assert_eq!(saturation_qps(&pts, 1.0), 20.0);
    }

    #[test]
    fn saturation_detects_tail_blowup() {
        let pts = vec![point(10.0, 10.0, 1e-3), point(20.0, 20.0, 0.5)];
        assert_eq!(saturation_qps(&pts, 0.1), 10.0);
    }

    #[test]
    fn saturation_none_returns_last() {
        let pts = vec![point(10.0, 10.0, 1e-3), point(20.0, 20.0, 1e-3)];
        assert_eq!(saturation_qps(&pts, 1.0), 20.0);
    }

    #[test]
    fn deviation_ignores_saturated_points() {
        let a = vec![point(10.0, 10.0, 2e-3), point(20.0, 12.0, 50e-3)];
        let b = vec![point(10.0, 10.0, 3e-3), point(20.0, 20.0, 1e-3)];
        let (_, tail) = deviation_ms(&a, &b);
        assert!(
            (tail - 1.0).abs() < 1e-9,
            "only the first pair counts: {tail}"
        );
    }

    #[test]
    fn load_spacings() {
        let g = geometric_loads(1.0, 100.0, 3);
        assert!((g[1] - 10.0).abs() < 1e-9);
        let l = linear_loads(0.0, 10.0, 3);
        assert_eq!(l, vec![0.0, 5.0, 10.0]);
    }

    fn tiny_opts(jobs: usize) -> RunOpts {
        RunOpts {
            duration: SimDuration::from_millis(200),
            warmup: SimDuration::from_millis(100),
            jobs,
        }
    }

    fn build_example(qps: f64) -> SimResult<Simulator> {
        let cfg = uqsim_core::config::ScenarioConfig::from_json(uqsim_core::run::EXAMPLE_SCENARIO)
            .expect("example scenario parses");
        cfg.with_offered_qps(qps).build()
    }

    #[test]
    fn sweep_results_are_jobs_invariant() {
        let loads = [400.0, 900.0, 1600.0];
        let serial = sweep(&loads, &tiny_opts(1), build_example).unwrap();
        for jobs in [2, 8] {
            let parallel = sweep(&loads, &tiny_opts(jobs), build_example).unwrap();
            assert_eq!(serial, parallel, "jobs={jobs} changed sweep results");
        }
    }

    #[test]
    fn sweep_batch_groups_by_submission_order() {
        let jobs = vec![
            SweepJob::new(vec![400.0, 900.0], build_example),
            SweepJob::new(vec![1600.0], build_example),
        ];
        let grouped = sweep_batch(&tiny_opts(4), &jobs).unwrap();
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].len(), 2);
        assert_eq!(grouped[1].len(), 1);
        // Curves must match the same loads swept individually.
        let flat = sweep(&[400.0, 900.0], &tiny_opts(1), build_example).unwrap();
        assert_eq!(grouped[0], flat);
    }

    #[test]
    fn sweep_surfaces_the_first_build_error() {
        let loads = [400.0, 900.0];
        let err = sweep(&loads, &tiny_opts(2), |qps| {
            if qps > 500.0 {
                Err(uqsim_core::SimError::InvalidScenario("too fast".into()))
            } else {
                build_example(qps)
            }
        });
        assert!(err.is_err());
    }
}
