//! Regenerates the paper artifact implemented by
//! [`uqsim_bench::experiments::fig08`]. Pass `--quick` for a fast pass.

fn main() {
    let opts = uqsim_bench::RunOpts::from_args();
    if let Err(e) = uqsim_bench::experiments::fig08::run(&opts) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
