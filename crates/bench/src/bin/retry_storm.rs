//! Retry-storm failure-mode benchmark: runs the metastable-cliff
//! experiment and emits the JSON recorded as `BENCH_faults.json` at the
//! repository root.
//!
//! ```text
//! cargo run --release -p uqsim-bench --bin retry_storm > BENCH_faults.json
//! ```
//!
//! The directional property — naive unbounded retries stay collapsed after
//! the fault clears while a retry budget + circuit breaker recover — is
//! asserted by `crates/bench/tests/retry_storm.rs`.

use uqsim_bench::experiments::retry_storm::{self, PolicyOutcome};

fn entry(o: &PolicyOutcome) -> String {
    format!(
        "    {{ \"policy\": \"{}\", \"pre_goodput_qps\": {:.0}, \"storm_goodput_qps\": {:.0}, \
         \"recovery_goodput_qps\": {:.0}, \"generated\": {}, \"timeouts\": {}, \
         \"retries\": {}, \"shed\": {}, \"breaker_trips\": {} }}",
        o.name,
        o.pre_goodput,
        o.storm_goodput,
        o.recovery_goodput,
        o.generated,
        o.timeouts,
        o.retried,
        o.shed,
        o.breaker_trips
    )
}

fn main() {
    let s = retry_storm::run().expect("experiment runs");
    eprintln!();
    println!("{{");
    println!(
        "  \"benchmark\": \"retry storm, {:.0} qps vs 20k capacity, {:.0} ms deadline, 4x slowdown for 0.5s\",",
        retry_storm::OFFERED_QPS,
        retry_storm::TIMEOUT_S * 1e3
    );
    println!("  \"command\": \"cargo run --release -p uqsim-bench --bin retry_storm\",");
    println!("  \"policies\": [");
    println!("{},", entry(&s.no_retry));
    println!("{},", entry(&s.naive));
    println!("{}", entry(&s.guarded));
    println!("  ],");
    println!(
        "  \"naive_recovery_fraction\": {:.4},",
        s.naive.recovery_goodput / s.naive.pre_goodput.max(1.0)
    );
    println!(
        "  \"guarded_recovery_fraction\": {:.4}",
        s.guarded.recovery_goodput / s.guarded.pre_goodput.max(1.0)
    );
    println!("}}");
}
