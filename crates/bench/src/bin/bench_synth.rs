//! Generated-cluster scale benchmark: generates the bundled
//! DeathStarBench-class spec (`crates/cli/configs/gen_dsb.json`, ~339
//! services / ~1107 instances across 30 replicas) and measures both
//! generation cost and partitioned-engine throughput on the result.
//! Emits the JSON recorded as `BENCH_synth.json` at the repository root.
//!
//! ```text
//! cargo run --release -p uqsim-bench --bin bench_synth > BENCH_synth.json
//! ```

use std::path::Path;
use std::time::Instant;
use uqsim_core::partition::{run_partitioned, PartitionOptions};
use uqsim_core::time::SimDuration;
use uqsim_synth::{summarize, GenSpec};

const SIM_SECS: f64 = 1.0;
// Single-vCPU CI containers show 30-50% wall-clock noise; best-of keeps
// the minimum close to the true cost floor.
const REPS: usize = 3;

struct Measurement {
    events_per_sec: f64,
    events: u64,
    completed: u64,
    wall_s: f64,
}

/// Runs the generated cluster once per rep at `shards` and keeps the
/// fastest rep (the usual microbenchmark convention).
fn measure(spec: &GenSpec, shards: usize) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..REPS {
        let cfg = spec.generate(spec.seed).expect("spec generates");
        let start = Instant::now();
        let run = run_partitioned(
            &cfg,
            None,
            spec.seed,
            SimDuration::from_secs_f64(SIM_SECS),
            &PartitionOptions::with_shards(shards),
        )
        .expect("generated cluster runs");
        let wall_s = start.elapsed().as_secs_f64().max(1e-9);
        let m = Measurement {
            events_per_sec: run.result.events_processed as f64 / wall_s,
            events: run.result.events_processed,
            completed: run.result.completed,
            wall_s,
        };
        if best.as_ref().is_none_or(|b| m.wall_s < b.wall_s) {
            best = Some(m);
        }
    }
    best.expect("at least one rep ran")
}

fn entry(name: &str, m: &Measurement) -> String {
    format!(
        "    {{ \"mode\": \"{name}\", \"events_per_sec\": {:.0}, \"events\": {}, \
         \"completed\": {}, \"wall_s\": {:.4} }}",
        m.events_per_sec, m.events, m.completed, m.wall_s
    )
}

fn main() {
    let spec_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../cli/configs/gen_dsb.json");
    let spec = GenSpec::from_file(&spec_path).expect("bundled gen spec parses");

    // Generation cost, best of REPS (generation is deterministic, so the
    // output is identical each rep; only the wall clock varies).
    let mut gen_wall_s = f64::INFINITY;
    let mut cfg = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let c = spec.generate(spec.seed).expect("spec generates");
        gen_wall_s = gen_wall_s.min(start.elapsed().as_secs_f64());
        cfg = Some(c);
    }
    let s = summarize(&cfg.expect("at least one generation ran"));

    let one = measure(&spec, 1);
    let four = measure(&spec, 4);

    println!("{{");
    println!(
        "  \"benchmark\": \"generated-cluster scale: gen_dsb.json, {SIM_SECS}s simulated, \
         partitioned engine, best of {REPS}\","
    );
    println!("  \"command\": \"cargo run --release -p uqsim-bench --bin bench_synth\",");
    println!("  \"spec\": \"crates/cli/configs/gen_dsb.json\",");
    println!("  \"seed\": {},", spec.seed);
    println!("  \"scale\": {{");
    println!("    \"services\": {},", s.services);
    println!("    \"instances\": {},", s.instances);
    println!("    \"machines\": {},", s.machines);
    println!("    \"pools\": {},", s.pools);
    println!("    \"request_types\": {},", s.request_types);
    println!("    \"clients\": {}", s.clients);
    println!("  }},");
    println!("  \"generation_wall_s\": {gen_wall_s:.4},");
    println!("  \"runs\": [");
    println!("{},", entry("shards_1", &one));
    println!("{}", entry("shards_4", &four));
    println!("  ]");
    println!("}}");
}
