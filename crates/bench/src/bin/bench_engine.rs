//! Raw engine-speed benchmark: events/second and steady-state allocation
//! rate on the mid-size two-tier scenario with everything optional turned
//! off (no telemetry, no tracing, no faults) — the purest measure of the
//! event core. Emits the JSON recorded as `BENCH_engine.json` at the
//! repository root.
//!
//! ```text
//! cargo run --release -p uqsim-bench --bin bench_engine > BENCH_engine.json
//! ```
//!
//! The binary installs a counting allocator so the per-event allocation
//! rate of the dispatch hot path is measured directly (the same probe the
//! CLI hands to the telemetry self-profiler). `allocs_per_event` is the
//! number enforced by `crates/bench/tests/alloc_regression.rs`.
//!
//! A second section (`shard_scaling`) times the partitioned engine
//! ([`uqsim_core::run_partitioned`]) on a 32-pod / 64-machine
//! [`pod_cluster`] at 1, 2, and 4 shards, cross-checking that the merged
//! results are identical at every shard count before reporting speedups.
//! The recorded `nproc` qualifies the numbers: on a single-core runner the
//! speedup is honestly ~1.0 and the measurement documents the overhead of
//! sharding, not its benefit.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use uqsim_apps::scenarios::{pod_cluster, two_tier, TwoTierConfig};
use uqsim_core::time::SimDuration;
use uqsim_core::PartitionOptions;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: every method delegates to `System` unchanged; the only addition
// is a relaxed atomic increment, which cannot violate allocator contracts.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const QPS: f64 = 20_000.0;
const SIM_SECS: f64 = 2.0;
const REPS: usize = 3;

/// Shard-scaling workload: 32 pods (64 machines, 32 independent cells).
const PODS: usize = 32;
const POD_QPS: f64 = 1_500.0;
const SHARD_SIM_SECS: f64 = 1.0;

/// Times one partitioned run of the pod cluster; returns
/// `(wall_s, events, completed)`. Best of `REPS`.
fn time_shards(shards: usize) -> (f64, u64, u64) {
    let cfg = pod_cluster(PODS, POD_QPS).expect("pod cluster builds");
    let opts = PartitionOptions::with_shards(shards);
    let duration = SimDuration::from_secs_f64(SHARD_SIM_SECS);
    let mut best = (f64::MAX, 0u64, 0u64);
    for _ in 0..REPS {
        let start = Instant::now();
        let run = uqsim_core::run_partitioned(&cfg, None, cfg.seed, duration, &opts)
            .expect("partitioned run succeeds");
        let wall = start.elapsed().as_secs_f64().max(1e-9);
        if wall < best.0 {
            best = (wall, run.result.events_processed, run.result.completed);
        }
    }
    best
}

fn main() {
    let mut best_wall = f64::MAX;
    let mut best = (0u64, 0u64, 0u64, 0u64);
    for _ in 0..REPS {
        let mut sim = two_tier(&TwoTierConfig::at_qps(QPS)).expect("scenario builds");
        // Warm the arenas/queues so steady-state allocations are measured,
        // not first-touch growth.
        sim.run_for(SimDuration::from_secs_f64(0.5));
        let ev0 = sim.events_processed();
        let a0 = ALLOCATIONS.load(Ordering::Relaxed);
        let start = Instant::now();
        sim.run_for(SimDuration::from_secs_f64(SIM_SECS));
        let wall = start.elapsed().as_secs_f64().max(1e-9);
        let a1 = ALLOCATIONS.load(Ordering::Relaxed);
        let events = sim.events_processed() - ev0;
        if wall < best_wall {
            best_wall = wall;
            best = (events, a1 - a0, sim.completed(), sim.events_processed());
        }
    }
    let (events, allocs, completed, events_total) = best;
    println!("{{");
    println!(
        "  \"benchmark\": \"raw engine speed, two_tier at {QPS:.0} qps, {SIM_SECS}s simulated after 0.5s warmup, best of {REPS}\","
    );
    println!("  \"command\": \"cargo run --release -p uqsim-bench --bin bench_engine\",");
    println!("  \"events_per_sec\": {:.0},", events as f64 / best_wall);
    println!("  \"events\": {events},");
    println!("  \"events_total\": {events_total},");
    println!("  \"completed\": {completed},");
    println!("  \"wall_s\": {best_wall:.4},");
    println!("  \"steady_state_allocs\": {allocs},");
    println!(
        "  \"allocs_per_event\": {:.4},",
        allocs as f64 / events as f64
    );

    // Shard scaling: the partitioned engine on the pod cluster. Results
    // must be shard-invariant (P7) — the bench itself enforces that before
    // trusting the timings.
    let nproc = std::thread::available_parallelism().map_or(1, usize::from);
    let shard_counts = [1usize, 2, 4];
    let timed: Vec<(usize, f64, u64, u64)> = shard_counts
        .iter()
        .map(|&k| {
            let (wall, ev, done) = time_shards(k);
            (k, wall, ev, done)
        })
        .collect();
    let (_, base_wall, base_ev, base_done) = timed[0];
    for &(k, _, ev, done) in &timed {
        assert_eq!(
            (ev, done),
            (base_ev, base_done),
            "shards={k} changed results — P7 violated"
        );
    }
    println!(
        "  \"shard_scaling\": {{\n    \"workload\": \"pod_cluster({PODS} pods, {} machines) at \
         {POD_QPS:.0} qps/pod, {SHARD_SIM_SECS}s simulated, best of {REPS}\",",
        PODS * 2
    );
    println!("    \"nproc\": {nproc},");
    println!("    \"events\": {base_ev},");
    println!("    \"completed\": {base_done},");
    println!("    \"shards\": [");
    for (i, &(k, wall, ev, _)) in timed.iter().enumerate() {
        let comma = if i + 1 < timed.len() { "," } else { "" };
        println!(
            "      {{ \"shards\": {k}, \"wall_s\": {wall:.4}, \"events_per_sec\": {:.0}, \
             \"speedup\": {:.2} }}{comma}",
            ev as f64 / wall,
            base_wall / wall
        );
    }
    println!("    ]");
    println!("  }}");
    println!("}}");
}
