//! Telemetry overhead benchmark: engine events/second on the mid-size
//! two-tier scenario with telemetry fully disabled, with the sampler at a
//! 10 ms interval, with the sampler at a 1 ms interval, and with the
//! sampler plus streaming critical-path attribution (the `uqsim why`
//! configuration). Emits the JSON recorded as `BENCH_telemetry.json` at
//! the repository root.
//!
//! ```text
//! cargo run --release -p uqsim-bench --bin bench_telemetry > BENCH_telemetry.json
//! ```
//!
//! The "off" mode is the zero-cost-when-disabled reference: the telemetry
//! hooks are `Option` checks on a `None`, so its events/second must stay
//! within noise of the pre-telemetry engine (enforced, against the
//! recorded number, by `crates/bench/tests/telemetry_overhead.rs` under
//! `UQSIM_ENFORCE_BENCH=1`).

use std::time::Instant;
use uqsim_apps::scenarios::{two_tier, TwoTierConfig};
use uqsim_core::telemetry::TelemetryConfig;
use uqsim_core::time::SimDuration;

const QPS: f64 = 20_000.0;
const SIM_SECS: f64 = 2.0;
// Single-vCPU CI containers show 30-50% wall-clock noise; best-of-9 gets
// the minimum close to the true cost floor where best-of-3 often misses it.
const REPS: usize = 9;

struct Measurement {
    events_per_sec: f64,
    events: u64,
    completed: u64,
    wall_s: f64,
}

/// Runs the scenario once per rep and keeps the fastest rep (the usual
/// microbenchmark convention: the minimum is the least noise-polluted).
fn measure(telemetry: Option<TelemetryConfig>) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..REPS {
        let mut sim = two_tier(&TwoTierConfig::at_qps(QPS)).expect("scenario builds");
        if let Some(cfg) = telemetry {
            sim.enable_telemetry(cfg);
        }
        let start = Instant::now();
        sim.run_for(SimDuration::from_secs_f64(SIM_SECS));
        let wall_s = start.elapsed().as_secs_f64().max(1e-9);
        let m = Measurement {
            events_per_sec: sim.events_processed() as f64 / wall_s,
            events: sim.events_processed(),
            completed: sim.completed(),
            wall_s,
        };
        if best.as_ref().is_none_or(|b| m.wall_s < b.wall_s) {
            best = Some(m);
        }
    }
    best.expect("at least one rep ran")
}

fn sampler(interval: SimDuration) -> TelemetryConfig {
    TelemetryConfig {
        sample_interval: Some(interval),
        self_profile: true,
        ..TelemetryConfig::default()
    }
}

fn entry(name: &str, m: &Measurement) -> String {
    format!(
        "    {{ \"mode\": \"{name}\", \"events_per_sec\": {:.0}, \"events\": {}, \
         \"completed\": {}, \"wall_s\": {:.4} }}",
        m.events_per_sec, m.events, m.completed, m.wall_s
    )
}

fn main() {
    let off = measure(None);
    let ms10 = measure(Some(sampler(SimDuration::from_millis(10))));
    let ms1 = measure(Some(sampler(SimDuration::from_millis(1))));
    let crit = measure(Some(TelemetryConfig {
        critpath: true,
        ..sampler(SimDuration::from_millis(10))
    }));
    println!("{{");
    println!(
        "  \"benchmark\": \"telemetry overhead, two_tier at {QPS:.0} qps, {SIM_SECS}s simulated, best of {REPS}\","
    );
    println!("  \"command\": \"cargo run --release -p uqsim-bench --bin bench_telemetry\",");
    println!("  \"modes\": [");
    println!("{},", entry("telemetry_off", &off));
    println!("{},", entry("sampler_10ms", &ms10));
    println!("{},", entry("sampler_1ms", &ms1));
    println!("{}", entry("sampler_10ms_critpath", &crit));
    println!("  ],");
    println!(
        "  \"overhead_10ms_vs_off\": {:.4},",
        1.0 - ms10.events_per_sec / off.events_per_sec
    );
    println!(
        "  \"overhead_1ms_vs_off\": {:.4},",
        1.0 - ms1.events_per_sec / off.events_per_sec
    );
    println!(
        "  \"overhead_critpath_vs_off\": {:.4}",
        1.0 - crit.events_per_sec / off.events_per_sec
    );
    println!("}}");
}
