//! Regenerates every table and figure in sequence. Pass `--quick` for a
//! fast pass (shorter simulated durations, fewer sweep points).

use uqsim_bench::experiments as ex;
use uqsim_bench::RunOpts;

fn main() {
    let opts = RunOpts::from_args();
    type Step = Box<dyn Fn(&RunOpts) -> Result<(), uqsim_core::SimError>>;
    let steps: Vec<(&str, Step)> = vec![
        (
            "fig05",
            Box::new(|o: &RunOpts| ex::fig05::run(o).map(|_| ())),
        ),
        (
            "fig06",
            Box::new(|o: &RunOpts| ex::fig06::run(o).map(|_| ())),
        ),
        (
            "fig08",
            Box::new(|o: &RunOpts| ex::fig08::run(o).map(|_| ())),
        ),
        (
            "fig10",
            Box::new(|o: &RunOpts| ex::fig10::run(o).map(|_| ())),
        ),
        (
            "fig12a",
            Box::new(|o: &RunOpts| ex::fig12a::run(o).map(|_| ())),
        ),
        (
            "fig12b",
            Box::new(|o: &RunOpts| ex::fig12b::run(o).map(|_| ())),
        ),
        (
            "fig13",
            Box::new(|o: &RunOpts| ex::fig13::run(o).map(|_| ())),
        ),
        (
            "fig14",
            Box::new(|o: &RunOpts| ex::fig14::run(o).map(|_| ())),
        ),
        (
            "fig15",
            Box::new(|o: &RunOpts| ex::fig15::run(o).map(|_| ())),
        ),
        (
            "fig16",
            Box::new(|o: &RunOpts| ex::fig16::run(o).map(|_| ())),
        ),
        (
            "table3",
            Box::new(|o: &RunOpts| ex::table3::run(o).map(|_| ())),
        ),
        (
            "ablations",
            Box::new(|o: &RunOpts| ex::ablations::run(o).map(|_| ())),
        ),
    ];
    for (name, step) in steps {
        println!("\n========== {name} ==========");
        if let Err(e) = step(&opts) {
            eprintln!("{name} failed: {e}");
            std::process::exit(1);
        }
    }
}
