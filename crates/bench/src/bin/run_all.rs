//! Regenerates every table and figure in sequence. Pass `--quick` for a
//! fast pass (shorter simulated durations, fewer sweep points) and
//! `--jobs N` to bound the worker threads each experiment's internal
//! sweeps fan out across (default: all available cores).
//!
//! Experiments run one after another — each parallelizes internally over
//! its (curve × load) cells — and a failing experiment no longer aborts
//! the batch: every failure is collected, reported at the end, and turns
//! the exit status non-zero.

use std::time::Instant;

use uqsim_bench::experiments as ex;
use uqsim_bench::RunOpts;

fn main() {
    let opts = RunOpts::from_args();
    println!(
        "run_all: {} worker thread(s) per experiment (override with --jobs N or UQSIM_JOBS)",
        opts.jobs
    );
    type Step = Box<dyn Fn(&RunOpts) -> Result<(), uqsim_core::SimError>>;
    let steps: Vec<(&str, Step)> = vec![
        (
            "fig05",
            Box::new(|o: &RunOpts| ex::fig05::run(o).map(|_| ())),
        ),
        (
            "fig06",
            Box::new(|o: &RunOpts| ex::fig06::run(o).map(|_| ())),
        ),
        (
            "fig08",
            Box::new(|o: &RunOpts| ex::fig08::run(o).map(|_| ())),
        ),
        (
            "fig10",
            Box::new(|o: &RunOpts| ex::fig10::run(o).map(|_| ())),
        ),
        (
            "fig12a",
            Box::new(|o: &RunOpts| ex::fig12a::run(o).map(|_| ())),
        ),
        (
            "fig12b",
            Box::new(|o: &RunOpts| ex::fig12b::run(o).map(|_| ())),
        ),
        (
            "fig13",
            Box::new(|o: &RunOpts| ex::fig13::run(o).map(|_| ())),
        ),
        (
            "fig14",
            Box::new(|o: &RunOpts| ex::fig14::run(o).map(|_| ())),
        ),
        (
            "fig15",
            Box::new(|o: &RunOpts| ex::fig15::run(o).map(|_| ())),
        ),
        (
            "fig16",
            Box::new(|o: &RunOpts| ex::fig16::run(o).map(|_| ())),
        ),
        (
            "table3",
            Box::new(|o: &RunOpts| ex::table3::run(o).map(|_| ())),
        ),
        (
            "ablations",
            Box::new(|o: &RunOpts| ex::ablations::run(o).map(|_| ())),
        ),
    ];
    let total = steps.len();
    let batch_start = Instant::now();
    let mut failures: Vec<(&str, uqsim_core::SimError)> = Vec::new();
    for (i, (name, step)) in steps.into_iter().enumerate() {
        println!("\n========== {name} [{}/{total}] ==========", i + 1);
        let start = Instant::now();
        match step(&opts) {
            Ok(()) => println!("{name} done in {:.1}s", start.elapsed().as_secs_f64()),
            Err(e) => {
                eprintln!(
                    "{name} FAILED after {:.1}s: {e}",
                    start.elapsed().as_secs_f64()
                );
                failures.push((name, e));
            }
        }
    }
    println!(
        "\nrun_all finished in {:.1}s: {}/{total} experiments ok",
        batch_start.elapsed().as_secs_f64(),
        total - failures.len()
    );
    if !failures.is_empty() {
        eprintln!("failures:");
        for (name, e) in &failures {
            eprintln!("  {name}: {e}");
        }
        std::process::exit(1);
    }
}
