//! Driver for the power-management experiment (§V-B): the 2-tier
//! application under a diurnal load, managed by Algorithm 1, in both the
//! clean simulation and the noisy reference ("real system") mode.

use uqsim_apps::noise::NoiseProfile;
use uqsim_apps::scenarios::{two_tier, TwoTierConfig};
use uqsim_core::client::{ArrivalProcess, RateSchedule};
use uqsim_core::telemetry::{TelemetryConfig, TelemetryWindow};
use uqsim_core::time::SimDuration;
use uqsim_core::SimResult;
use uqsim_power::{PowerManager, PowerManagerConfig, PowerTraceEntry, TraceHandle};

/// Configuration of one power-management run.
#[derive(Debug, Clone)]
pub struct PowerRunConfig {
    /// Decision interval.
    pub interval: SimDuration,
    /// End-to-end p99 QoS target, seconds.
    pub qos_target_s: f64,
    /// Diurnal load trough, QPS.
    pub min_qps: f64,
    /// Diurnal load peak, QPS.
    pub max_qps: f64,
    /// Diurnal period, seconds.
    pub period_s: f64,
    /// Total simulated duration.
    pub duration: SimDuration,
    /// Noisy reference mode (stands in for the real system).
    pub noisy: bool,
    /// Seed.
    pub seed: u64,
}

impl Default for PowerRunConfig {
    fn default() -> Self {
        PowerRunConfig {
            interval: SimDuration::from_millis(100),
            qos_target_s: crate::reference::POWER_QOS_TARGET_S,
            min_qps: 8_000.0,
            max_qps: 40_000.0,
            period_s: 60.0,
            duration: SimDuration::from_secs(120),
            noisy: false,
            seed: 42,
        }
    }
}

/// Outcome of one power-management run.
#[derive(Debug, Clone)]
pub struct PowerRunResult {
    /// The per-interval decision trace (Fig. 16).
    pub trace: Vec<PowerTraceEntry>,
    /// The telemetry sampler's windowed latency series at the decision
    /// interval — the time axis Fig. 16 is plotted on.
    pub tail: Vec<TelemetryWindow>,
    /// Fraction of non-empty intervals violating QoS (Table III).
    pub violation_rate: f64,
    /// Mean per-tier frequency over the run, GHz.
    pub mean_freqs_ghz: Vec<f64>,
    /// Cluster energy consumed over the run, joules.
    pub energy_j: f64,
}

/// Runs the 2-tier power-management experiment.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn run(cfg: &PowerRunConfig) -> SimResult<PowerRunResult> {
    let mut tt = TwoTierConfig::at_qps(cfg.max_qps);
    tt.arrivals = ArrivalProcess::Poisson {
        schedule: RateSchedule::diurnal(cfg.min_qps, cfg.max_qps, cfg.period_s, 12),
    };
    tt.common.seed = cfg.seed;
    tt.common.warmup = SimDuration::from_millis(200);
    tt.common.window = Some(cfg.interval);
    if cfg.noisy {
        tt.common.noise = Some(NoiseProfile::default());
    }
    let mut sim = two_tier(&tt)?;
    let nginx = sim
        .instance_by_name("nginx")
        .expect("two_tier deploys nginx");
    let mc = sim
        .instance_by_name("memcached")
        .expect("two_tier deploys memcached");
    let (manager, trace) = PowerManager::new(PowerManagerConfig {
        qos_target_s: cfg.qos_target_s,
        interval: cfg.interval,
        tiers: vec![nginx, mc],
        levels_ghz: (0..15).map(|i| 1.2 + 0.1 * i as f64).collect(),
        seed: cfg.seed,
        ..PowerManagerConfig::default()
    });
    sim.add_controller(Box::new(manager));
    // Sample windowed latency with the telemetry layer at the decision
    // interval; the exported trace's time axis comes from these windows.
    sim.enable_telemetry(TelemetryConfig {
        sample_interval: Some(cfg.interval),
        ..TelemetryConfig::default()
    });
    sim.run_for(cfg.duration);
    let energy = sim.cluster_energy_j();
    let tail = sim.telemetry_windows().to_vec();
    Ok(summarize(&trace, tail, energy))
}

/// Runs the same scenario with *no* power management (all cores at the
/// maximum frequency) and returns the cluster energy, joules — the
/// baseline against which the manager's savings are measured.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn run_baseline(cfg: &PowerRunConfig) -> SimResult<f64> {
    let mut tt = TwoTierConfig::at_qps(cfg.max_qps);
    tt.arrivals = ArrivalProcess::Poisson {
        schedule: RateSchedule::diurnal(cfg.min_qps, cfg.max_qps, cfg.period_s, 12),
    };
    tt.common.seed = cfg.seed;
    tt.common.warmup = SimDuration::from_millis(200);
    if cfg.noisy {
        tt.common.noise = Some(NoiseProfile::default());
    }
    let mut sim = two_tier(&tt)?;
    sim.run_for(cfg.duration);
    Ok(sim.cluster_energy_j())
}

fn summarize(trace: &TraceHandle, tail: Vec<TelemetryWindow>, energy_j: f64) -> PowerRunResult {
    let entries = trace.entries();
    let counted: Vec<&PowerTraceEntry> = entries.iter().filter(|e| e.samples > 0).collect();
    let tiers = counted.first().map(|e| e.freqs_ghz.len()).unwrap_or(0);
    let mean_freqs_ghz = (0..tiers)
        .map(|t| counted.iter().map(|e| e.freqs_ghz[t]).sum::<f64>() / counted.len().max(1) as f64)
        .collect();
    PowerRunResult {
        violation_rate: trace.violation_rate(),
        trace: entries,
        tail,
        mean_freqs_ghz,
        energy_j,
    }
}
