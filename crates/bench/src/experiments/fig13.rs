//! Fig. 13 — µqSim vs. BigHouse on a single-process NGINX and a 4-thread
//! memcached.
//!
//! BigHouse models each application as one queue whose service
//! distribution comes from profiling — which charges the full cost of a
//! batched `epoll` invocation to every request instead of amortizing it
//! across the harvested batch. µqSim models the stage explicitly. Paper
//! anchor (§IV-E): µqSim captures the real saturation point closely while
//! BigHouse saturates at much lower load.

use crate::{linear_loads, print_series, saturation_qps, LoadPoint, RunOpts};
use uqsim_apps::{memcached, nginx, scenarios};
use uqsim_bighouse::{service_distribution_for, BigHouse, BigHouseConfig};
use uqsim_core::dist::Distribution;
use uqsim_core::metrics::LatencySummary;
use uqsim_core::SimResult;

/// Batch size at which the hypothetical BigHouse profiling observed the
/// batching stages (a loaded server harvests many events per call).
pub const PROFILED_BATCH: usize = 16;

/// Curves for one application.
#[derive(Debug, Clone)]
pub struct AppResult {
    /// Application name.
    pub app: &'static str,
    /// µqSim curve.
    pub uqsim: Vec<LoadPoint>,
    /// BigHouse curve.
    pub bighouse: Vec<LoadPoint>,
    /// µqSim saturation.
    pub uqsim_saturation: f64,
    /// BigHouse saturation.
    pub bighouse_saturation: f64,
}

fn bighouse_sweep(
    loads: &[f64],
    service: &Distribution,
    servers: usize,
    opts: &RunOpts,
) -> Vec<LoadPoint> {
    // BigHouse points are independent too, so they fan out across the same
    // worker budget as the µqSim sweeps (results come back in load order).
    uqsim_runner::run_indexed(opts.jobs, loads.len(), |i| {
        let qps = loads[i];
        let result = BigHouse::new(BigHouseConfig {
            interarrival: Distribution::exponential(1.0 / qps),
            service: service.clone(),
            servers,
            seed: 42,
            warmup_s: opts.warmup.as_secs_f64(),
        })
        .run(opts.total().as_secs_f64());
        LoadPoint {
            offered_qps: qps,
            achieved_qps: result.throughput,
            latency: result.latency,
        }
    })
}

fn empty_if_missing(points: Vec<LoadPoint>) -> Vec<LoadPoint> {
    points
        .into_iter()
        .map(|mut p| {
            if p.latency.count == 0 {
                p.latency = LatencySummary::empty();
            }
            p
        })
        .collect()
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn run(opts: &RunOpts) -> SimResult<Vec<AppResult>> {
    println!("# Fig. 13 — µqSim vs BigHouse");
    let n = if opts.duration.as_secs_f64() < 2.0 {
        5
    } else {
        9
    };
    let mut out = Vec::new();

    // --- single-process NGINX web server ---------------------------------
    {
        let loads = linear_loads(1_000.0, 11_000.0, n);
        let uqsim = crate::sweep(&loads, opts, |qps| {
            let common = scenarios::CommonOpts {
                warmup: opts.warmup,
                ..Default::default()
            };
            scenarios::single_nginx(qps, &common)
        })?;
        let bh_service =
            service_distribution_for(&nginx::service_model(), nginx::paths::SERVE, PROFILED_BATCH);
        let bighouse = empty_if_missing(bighouse_sweep(&loads, &bh_service, 1, opts));
        print_series("nginx 1 process [uqsim]", &uqsim);
        print_series("nginx 1 process [bighouse]", &bighouse);
        let (su, sb) = (
            saturation_qps(&uqsim, 50e-3),
            saturation_qps(&bighouse, 50e-3),
        );
        println!(
            "saturation: uqsim {:.0} qps vs bighouse {:.0} qps\n",
            su, sb
        );
        out.push(AppResult {
            app: "nginx",
            uqsim,
            bighouse,
            uqsim_saturation: su,
            bighouse_saturation: sb,
        });
    }

    // --- 4-thread memcached ----------------------------------------------
    {
        let loads = linear_loads(10_000.0, 240_000.0, n);
        let uqsim = crate::sweep(&loads, opts, |qps| {
            let common = scenarios::CommonOpts {
                warmup: opts.warmup,
                ..Default::default()
            };
            scenarios::single_memcached(qps, 4, &common)
        })?;
        let bh_service = service_distribution_for(
            &memcached::service_model(),
            memcached::paths::READ,
            PROFILED_BATCH,
        );
        let bighouse = empty_if_missing(bighouse_sweep(&loads, &bh_service, 4, opts));
        print_series("memcached 4 threads [uqsim]", &uqsim);
        print_series("memcached 4 threads [bighouse]", &bighouse);
        let (su, sb) = (
            saturation_qps(&uqsim, 50e-3),
            saturation_qps(&bighouse, 50e-3),
        );
        println!(
            "saturation: uqsim {:.0} qps vs bighouse {:.0} qps\n",
            su, sb
        );
        out.push(AppResult {
            app: "memcached",
            uqsim,
            bighouse,
            uqsim_saturation: su,
            bighouse_saturation: sb,
        });
    }

    println!(
        "paper shape check: BigHouse saturates at much lower load because each request\n\
         is charged the full (unamortized) cost of a batched epoll invocation."
    );
    Ok(out)
}
