//! Table III — QoS violation rates of the power manager at decision
//! intervals 0.1 s, 0.5 s, 1 s, simulated vs. real.
//!
//! Paper values: simulated {0.6%, 2.2%, 5.0%}, real {1.5%, 2.7%, 6.0%}.
//! Two shapes must hold: the rate grows with the decision interval (slower
//! reactions let violations persist longer), and the real system (noisy
//! reference here) violates more than the clean simulation at every
//! interval.

use crate::power_experiment::{run as power_run, PowerRunConfig};
use crate::RunOpts;
use uqsim_core::time::SimDuration;
use uqsim_core::SimResult;

/// One row: `(interval_s, simulated_rate, reference_rate)`.
pub type Row = (f64, f64, f64);

/// Runs the experiment.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn run(opts: &RunOpts) -> SimResult<Vec<Row>> {
    println!("# Table III — power management QoS violation rates");
    let quick = opts.duration.as_secs_f64() < 2.0;
    let duration = if quick {
        SimDuration::from_secs(30)
    } else {
        SimDuration::from_secs(150)
    };
    let period = if quick { 15.0 } else { 60.0 };
    let seeds: &[u64] = if quick { &[42] } else { &[42, 43, 44] };
    let intervals = [0.1, 0.5, 1.0];
    // Flatten (interval × seed × {clean, noisy}) into independent parallel
    // replications; average per interval in seed order afterwards.
    let grid: Vec<(f64, u64, bool)> = intervals
        .iter()
        .flat_map(|&interval_s| {
            seeds
                .iter()
                .flat_map(move |&seed| [(interval_s, seed, false), (interval_s, seed, true)])
        })
        .collect();
    let rates = crate::par_try_map(opts, &grid, |&(interval_s, seed, noisy)| {
        let cfg = PowerRunConfig {
            interval: SimDuration::from_secs_f64(interval_s),
            duration,
            period_s: period,
            seed,
            noisy,
            ..PowerRunConfig::default()
        };
        Ok(power_run(&cfg)?.violation_rate)
    })?;
    let mut rows = Vec::new();
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>12}",
        "interval_s", "sim_rate", "ref_rate", "paper_sim", "paper_real"
    );
    let per_interval = 2 * seeds.len();
    for (i, interval_s) in intervals.into_iter().enumerate() {
        let chunk = &rates[i * per_interval..(i + 1) * per_interval];
        let sim_rate = chunk.iter().step_by(2).sum::<f64>() / seeds.len() as f64;
        let ref_rate = chunk.iter().skip(1).step_by(2).sum::<f64>() / seeds.len() as f64;
        let (_, paper_sim, paper_real) = crate::reference::TABLE3_VIOLATION_RATES[i];
        println!(
            "{:>12} {:>11.1}% {:>11.1}% {:>13.1}% {:>11.1}%",
            interval_s,
            sim_rate * 100.0,
            ref_rate * 100.0,
            paper_sim * 100.0,
            paper_real * 100.0
        );
        rows.push((interval_s, sim_rate, ref_rate));
    }
    println!(
        "paper shape check: violation rate grows with the decision interval;\n\
         the (noisy) real system violates at least as often as the simulation."
    );
    Ok(rows)
}
