//! Fig. 16 — tail latency and per-tier frequency over time under the
//! Algorithm 1 power manager, at decision intervals 0.1 s, 0.5 s and 1 s,
//! for both the clean simulation and the noisy reference ("real system").
//!
//! Paper anchors (§V-B): the real system is noisier (more frequent
//! decision changes), both converge to similar tails, and the converged
//! tail sits around 2 ms despite the 5 ms QoS target because DVFS's
//! discrete frequency steps quantize the achievable latency.

use crate::power_experiment::{run as power_run, PowerRunConfig, PowerRunResult};
use crate::RunOpts;
use uqsim_core::telemetry::TelemetryWindow;
use uqsim_core::time::SimDuration;
use uqsim_core::SimResult;

/// Results per decision interval: `(interval_s, simulated, noisy)`.
pub type Result = Vec<(f64, PowerRunResult, PowerRunResult)>;

/// Prints the trace on the telemetry sampler's time axis (`r.tail`),
/// joining each window with the power manager's decision at the same
/// instant for the frequency and violation columns.
fn print_trace(label: &str, r: &PowerRunResult, stride: usize) {
    println!("## {label}");
    println!(
        "{:>9} {:>9} {:>9} {:>10} {:>10} {:>9}",
        "time_s", "p99_ms", "qps", "f_nginx", "f_mc", "violated"
    );
    for w in r.tail.iter().step_by(stride.max(1)) {
        if w.count == 0 {
            continue;
        }
        let decision = r.trace.iter().find(|e| e.time == w.end);
        let (f_nginx, f_mc, violated) = match decision {
            Some(e) => (
                e.freqs_ghz.first().copied().unwrap_or(0.0),
                e.freqs_ghz.get(1).copied().unwrap_or(0.0),
                e.violated,
            ),
            None => (0.0, 0.0, false),
        };
        println!(
            "{:>9.1} {:>9.3} {:>9.0} {:>10.1} {:>10.1} {:>9}",
            w.end.as_secs_f64(),
            w.p99_s * 1e3,
            w.throughput,
            f_nginx,
            f_mc,
            if violated { "YES" } else { "" }
        );
    }
    println!(
        "mean frequencies: {:?} GHz | violation rate {:.1}%",
        r.mean_freqs_ghz
            .iter()
            .map(|f| (f * 10.0).round() / 10.0)
            .collect::<Vec<_>>(),
        r.violation_rate * 100.0
    );
}

/// Converged p99 tail over the second half of the run's non-empty sampler
/// windows, seconds.
pub fn converged_tail(r: &PowerRunResult) -> f64 {
    let active: Vec<&TelemetryWindow> = r.tail.iter().filter(|w| w.count > 0).collect();
    if active.is_empty() {
        return 0.0;
    }
    let half = &active[active.len() / 2..];
    half.iter().map(|w| w.p99_s).sum::<f64>() / half.len() as f64
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn run(opts: &RunOpts) -> SimResult<Result> {
    println!("# Fig. 16 — power management traces (Algorithm 1)");
    let quick = opts.duration.as_secs_f64() < 2.0;
    let duration = if quick {
        SimDuration::from_secs(30)
    } else {
        SimDuration::from_secs(120)
    };
    let period = if quick { 15.0 } else { 60.0 };
    // Each decision interval is an independent (sim, noisy, baseline)
    // triple; run the three intervals in parallel and print in order.
    let intervals = [0.1, 0.5, 1.0];
    let runs = crate::par_try_map(opts, &intervals, |&interval_s| {
        let base = PowerRunConfig {
            interval: SimDuration::from_secs_f64(interval_s),
            duration,
            period_s: period,
            ..PowerRunConfig::default()
        };
        let sim = power_run(&base)?;
        let noisy = power_run(&PowerRunConfig {
            noisy: true,
            ..base.clone()
        })?;
        let baseline_energy = crate::power_experiment::run_baseline(&base)?;
        Ok((sim, noisy, baseline_energy))
    })?;
    let mut out = Vec::new();
    for (interval_s, (sim, noisy, baseline_energy)) in intervals.iter().copied().zip(runs) {
        let stride = (4.0 / interval_s) as usize;
        print_trace(&format!("interval {interval_s}s [simulated]"), &sim, stride);
        print_trace(
            &format!("interval {interval_s}s [real-proxy: noisy reference]"),
            &noisy,
            stride,
        );
        println!(
            "converged tail: sim {:.2}ms, ref {:.2}ms (paper: ~2ms against a 5ms target)",
            converged_tail(&sim) * 1e3,
            converged_tail(&noisy) * 1e3
        );
        println!(
            "energy: {:.0} J vs {:.0} J at max frequency ({:.1}% saved)\n",
            sim.energy_j,
            baseline_energy,
            (1.0 - sim.energy_j / baseline_energy) * 100.0
        );
        out.push((interval_s, sim, noisy));
    }
    println!(
        "paper shape check: both systems converge to similar tails well under the 5ms target;\n\
         the noisy reference changes decisions more often."
    );
    Ok(out)
}
