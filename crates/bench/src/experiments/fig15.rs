//! Fig. 15 — the diurnal input load driving the power-management study:
//! offered rate over time, and the 2-tier application's achieved
//! throughput tracking it (no power management in this run; frequencies
//! stay at maximum).

use crate::RunOpts;
use uqsim_apps::scenarios::{two_tier, TwoTierConfig};
use uqsim_core::client::{ArrivalProcess, RateSchedule};
use uqsim_core::metrics::WindowStats;
use uqsim_core::time::SimDuration;
use uqsim_core::SimResult;

/// The generated series.
#[derive(Debug, Clone)]
pub struct Result {
    /// The piecewise-constant offered-rate schedule: `(start_s, qps)`.
    pub schedule: Vec<(f64, f64)>,
    /// Windowed achieved throughput and latency.
    pub windows: Vec<WindowStats>,
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn run(opts: &RunOpts) -> SimResult<Result> {
    println!("# Fig. 15 — diurnal load fluctuation");
    let quick = opts.duration.as_secs_f64() < 2.0;
    let (min_qps, max_qps, period) = (8_000.0, 40_000.0, if quick { 10.0 } else { 60.0 });
    let schedule = RateSchedule::diurnal(min_qps, max_qps, period, 12);
    let mut cfg = TwoTierConfig::at_qps(max_qps);
    cfg.arrivals = ArrivalProcess::Poisson {
        schedule: schedule.clone(),
    };
    cfg.common.warmup = SimDuration::from_millis(0);
    cfg.common.window = Some(SimDuration::from_secs_f64(period / 24.0));
    let mut sim = two_tier(&cfg)?;
    sim.run_for(SimDuration::from_secs_f64(2.0 * period));
    let windows: Vec<WindowStats> = sim.window_series().unwrap_or(&[]).to_vec();
    println!(
        "{:>9} {:>12} {:>14} {:>9}",
        "time_s", "offered_qps", "achieved_qps", "p99_ms"
    );
    for w in &windows {
        let offered = schedule.rate_at(w.start);
        println!(
            "{:>9.1} {:>12.0} {:>14.0} {:>9.3}",
            w.start.as_secs_f64(),
            offered,
            w.throughput,
            w.latency.p99 * 1e3
        );
    }
    println!(
        "paper shape check: achieved throughput tracks the diurnal swing between trough and peak."
    );
    Ok(Result {
        schedule: schedule.segments,
        windows,
    })
}
