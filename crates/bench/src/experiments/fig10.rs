//! Fig. 10 — validation of request fanout at factors 4, 8, 16.
//!
//! Every request must hear back from *all* leaves before returning, so the
//! tail of the max-of-N dominates. Paper anchor (§IV-B): as fanout grows
//! there is a small decrease in saturation load, since the probability
//! that one slow leaf degrades the end-to-end tail increases.

use crate::{linear_loads, print_series, saturation_qps, LoadPoint, RunOpts};
use uqsim_apps::scenarios::{fanout, FanoutConfig};
use uqsim_core::SimResult;

/// Per-fanout measured curve and detected saturation.
#[derive(Debug, Clone)]
pub struct FanoutResult {
    /// Fanout factor.
    pub fanout: usize,
    /// Measured curve.
    pub points: Vec<LoadPoint>,
    /// Detected saturation load.
    pub saturation_qps: f64,
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn run(opts: &RunOpts) -> SimResult<Vec<FanoutResult>> {
    println!("# Fig. 10 — request fanout validation (p99 vs load)");
    let factors = [4usize, 8, 16];
    // A fine grid around the ~8.8 kQPS leaf limit resolves the small
    // decrease in saturation load with the fanout factor.
    let loads: Vec<f64> = if opts.duration.as_secs_f64() < 2.0 {
        linear_loads(2_000.0, 10_000.0, 5)
    } else {
        let mut l = linear_loads(1_000.0, 7_000.0, 4);
        l.extend(linear_loads(7_500.0, 10_000.0, 6));
        l
    };
    let jobs: Vec<crate::SweepJob<'_>> = factors
        .iter()
        .map(|&factor| {
            crate::SweepJob::new(loads.clone(), move |qps| {
                let mut cfg = FanoutConfig::new(factor, qps);
                cfg.common.warmup = opts.warmup;
                fanout(&cfg)
            })
        })
        .collect();
    let curves = crate::sweep_batch(opts, &jobs)?;
    let mut out = Vec::new();
    for (factor, points) in factors.iter().copied().zip(curves) {
        // Interactive saturation: the knee where p99 exceeds 10 ms.
        let sat = saturation_qps(&points, 10e-3);
        print_series(&format!("fanout {factor} [simulated]"), &points);
        let knee = points
            .iter()
            .find(|p| (p.offered_qps - 8_500.0).abs() < 1.0);
        if let Some(k) = knee {
            println!(
                "saturation: {:.0} qps | p99 near the knee (8.5 kQPS): {:.2} ms\n",
                sat,
                k.latency.p99 * 1e3
            );
        } else {
            println!("saturation: {:.0} qps\n", sat);
        }
        out.push(FanoutResult {
            fanout: factor,
            points,
            saturation_qps: sat,
        });
    }
    println!(
        "paper shape check: p99 at fixed load increases with the fanout factor, so the\n\
         effective (tail-bounded) saturation decreases slightly as fanout grows."
    );
    Ok(out)
}
