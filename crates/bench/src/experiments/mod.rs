//! One module per regenerated table/figure. Each exposes a `run` returning
//! the measured data (so tests can assert shapes) and printing the
//! rows/series the paper reports.

pub mod ablations;
pub mod fig05;
pub mod fig06;
pub mod fig08;
pub mod fig10;
pub mod fig12a;
pub mod fig12b;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod retry_storm;
pub mod table3;
