//! Fig. 14 — tail at scale: the impact of slow servers on tail latency as
//! the fanout (cluster size) grows from 5 to 1000.
//!
//! One-stage queueing system per leaf with exponentially distributed
//! ~1 ms processing; a configurable fraction of randomly-selected leaves
//! is 10× slower; a request returns only after the last leaf responds
//! (§V-A, following Dean & Barroso's "The Tail at Scale").
//!
//! Paper anchor: for clusters beyond ~100 servers, 1% slow servers is
//! sufficient to pin the tail at the slow-server regime.

use crate::{measure, RunOpts};
use uqsim_apps::scenarios::{tail_at_scale, TailAtScaleConfig};
use uqsim_core::SimResult;

/// One cell of the Fig. 14 grid.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Cluster size (fanout).
    pub cluster_size: usize,
    /// Fraction of slow leaves.
    pub slow_fraction: f64,
    /// Measured p99, seconds.
    pub p99: f64,
    /// Measured mean, seconds.
    pub mean: f64,
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn run(opts: &RunOpts) -> SimResult<Vec<Cell>> {
    println!("# Fig. 14 — tail at scale (p99 vs cluster size, per slow-server fraction)");
    let quick = opts.duration.as_secs_f64() < 2.0;
    let sizes: &[usize] = if quick {
        &[5, 20, 100, 300]
    } else {
        &[5, 10, 20, 50, 100, 200, 500, 1000]
    };
    let fractions = [0.0, 0.001, 0.01, 0.05, 0.10];
    // Per-leaf utilization 0.06 on fast leaves and 0.6 on 10x-slow ones:
    // every leaf stays stable, but slow leaves dominate the fanout tail.
    let qps = 60.0;
    // Flatten the (cluster size × slow fraction) grid so every cell is an
    // independent parallel task; print the table once all cells are back.
    let grid: Vec<(usize, f64)> = sizes
        .iter()
        .flat_map(|&n| fractions.iter().map(move |&f| (n, f)))
        .collect();
    let cells = crate::par_try_map(opts, &grid, |&(n, f)| {
        let mut cfg = TailAtScaleConfig::new(n, f, qps);
        cfg.common.warmup = opts.warmup;
        let sim = tail_at_scale(&cfg)?;
        let p = measure(sim, qps, opts);
        Ok(Cell {
            cluster_size: n,
            slow_fraction: f,
            p99: p.latency.p99,
            mean: p.latency.mean,
        })
    })?;
    println!(
        "{:>9} {:>10} {:>10} {:>10}",
        "cluster", "slow_frac", "mean_ms", "p99_ms"
    );
    for c in &cells {
        println!(
            "{:>9} {:>10.3} {:>10.3} {:>10.3}",
            c.cluster_size,
            c.slow_fraction,
            c.mean * 1e3,
            c.p99 * 1e3
        );
    }
    println!(
        "paper shape check: p99 rises with cluster size and slow fraction; beyond ~{} servers,\n\
         1% slow servers pins the tail in the 10x-slow regime.",
        crate::reference::TAIL_AT_SCALE_CRITICAL_CLUSTER
    );
    Ok(cells)
}
