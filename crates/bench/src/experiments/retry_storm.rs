//! Retry-storm failure-mode experiment: the metastable cliff.
//!
//! One service near saturation takes a transient 4× machine slowdown.
//! Three client policies face the same fault on the same seed:
//!
//! * **no-retry** — timeouts are final. The backlog drains after the
//!   window and goodput recovers on its own.
//! * **naive** — unbounded-budget retries (8 attempts, short backoff).
//!   During the window every attempt times out, each timeout spawns
//!   another attempt, and the amplified load outruns the *healthy*
//!   capacity — so the collapse persists after the fault clears. This is
//!   the classic metastable failure: the trigger is gone, the storm
//!   remains.
//! * **guarded** — the same retries behind a token-bucket retry budget
//!   and a circuit breaker. The budget empties, the breaker sheds load
//!   while the service is sick, and goodput recovers like no-retry.
//!
//! The experiment reports per-phase goodput (within-deadline completions
//! per second): before the fault, during the fault + its aftermath, and
//! in the late recovery window. The recorded numbers live in
//! `BENCH_faults.json` at the repository root (regenerate with
//! `cargo run --release -p uqsim-bench --bin retry_storm`).

use uqsim_core::builder::{ExecSpec, ScenarioBuilder};
use uqsim_core::client::ClientSpec;
use uqsim_core::dist::Distribution;
use uqsim_core::fault::{BreakerSpec, ClientPolicySpec, PolicySpec, RetryBudgetSpec};
use uqsim_core::ids::{PathNodeId, StageId};
use uqsim_core::machine::{DvfsSpec, MachineSpec, NetworkSpec};
use uqsim_core::path::{PathNodeSpec, RequestType};
use uqsim_core::service::{ExecPath, ServiceModel};
use uqsim_core::stage::{QueueDiscipline, ServiceTimeModel, StageSpec};
use uqsim_core::time::{SimDuration, SimTime};
use uqsim_core::{FaultPlan, FaultSpec, SimResult};

/// Offered load, requests/second (80% of the healthy 20k capacity).
pub const OFFERED_QPS: f64 = 16_000.0;
/// Client-side deadline, seconds.
pub const TIMEOUT_S: f64 = 20e-3;
/// Phase boundaries: warmup end, fault start, storm-phase end, run end.
pub const PHASES_S: [f64; 4] = [0.5, 1.0, 3.0, 5.0];

/// One policy's measured outcome.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// Policy label.
    pub name: &'static str,
    /// Goodput in the pre-fault window, requests/second.
    pub pre_goodput: f64,
    /// Goodput across the fault window and its immediate aftermath.
    pub storm_goodput: f64,
    /// Goodput in the late recovery window.
    pub recovery_goodput: f64,
    /// Total requests generated (retries included).
    pub generated: u64,
    /// Client-observed timeouts.
    pub timeouts: u64,
    /// Retry emissions.
    pub retried: u64,
    /// Breaker-shed requests.
    pub shed: u64,
    /// Breaker trips.
    pub breaker_trips: u64,
}

/// All three policies, for tests and the JSON recorder.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Timeouts are final; no retry amplification.
    pub no_retry: PolicyOutcome,
    /// Unbudgeted retries: the metastable collapse.
    pub naive: PolicyOutcome,
    /// Budget + breaker: graceful degradation and recovery.
    pub guarded: PolicyOutcome,
}

fn retrying_policy() -> ClientPolicySpec {
    ClientPolicySpec {
        client: "storm".into(),
        max_retries: 8,
        backoff_base_s: 5e-3,
        backoff_cap_s: 20e-3,
        jitter: 0.5,
        hedge_after_s: None,
        retry_budget: None,
        breaker: None,
    }
}

fn guarded_policy() -> ClientPolicySpec {
    ClientPolicySpec {
        retry_budget: Some(RetryBudgetSpec {
            capacity: 100.0,
            fill_per_s: 50.0,
        }),
        breaker: Some(BreakerSpec {
            failure_threshold: 50,
            cooldown_s: 0.2,
        }),
        ..retrying_policy()
    }
}

/// Runs one policy through the slowdown and measures per-phase goodput.
fn run_policy(name: &'static str, policy: Option<ClientPolicySpec>) -> SimResult<PolicyOutcome> {
    let mut b = ScenarioBuilder::new(1913);
    b.warmup(SimDuration::from_secs_f64(PHASES_S[0]));
    let m = b.add_machine(MachineSpec {
        name: "m".into(),
        cores: 2,
        dvfs: DvfsSpec::fixed(2.6),
        network: NetworkSpec::passthrough(5e-6),
        power: Default::default(),
    });
    let s = b.add_service(ServiceModel::new(
        "svc",
        vec![StageSpec::new(
            "proc",
            QueueDiscipline::Single,
            ServiceTimeModel::per_job(Distribution::exponential(100e-6), 2.6),
        )],
        vec![ExecPath::new("p", vec![StageId::from_raw(0)])],
    ));
    let i = b.add_instance("svc0", s, m, 2, ExecSpec::Simple)?;
    let mut node = PathNodeSpec::request("svc", s, i);
    node.children = vec![PathNodeId::from_raw(1)];
    let sink = PathNodeSpec::client_sink(PathNodeId::from_raw(0));
    let ty = b.add_request_type(RequestType::new(
        "get",
        vec![node, sink],
        PathNodeId::from_raw(0),
    ))?;
    b.add_client(
        ClientSpec::open_loop("storm", OFFERED_QPS, 256, ty).with_timeout(TIMEOUT_S),
        vec![i],
    );
    let mut sim = b.build()?;

    let plan = FaultPlan {
        faults: vec![FaultSpec::MachineSlowdown {
            machine: "m".into(),
            at_s: PHASES_S[1],
            duration_s: 0.5,
            factor: 4.0,
        }],
        policy: PolicySpec {
            clients: policy.into_iter().collect(),
            network: None,
        },
    };
    sim.install_faults(&plan)?;

    // Phase goodput: within-deadline completions per second of each window
    // (quorum early-fires cannot occur here — the path has no fan-in).
    let mut prev = 0usize;
    let mut goodput = |sim: &uqsim_core::Simulator, span: f64| {
        let count = sim.latency_summary().count;
        let g = (count - prev) as f64 / span;
        prev = count;
        g
    };
    sim.run_until(SimTime::from_secs_f64(PHASES_S[1]));
    let pre = goodput(&sim, PHASES_S[1] - PHASES_S[0]);
    sim.run_until(SimTime::from_secs_f64(PHASES_S[2]));
    let storm = goodput(&sim, PHASES_S[2] - PHASES_S[1]);
    sim.run_until(SimTime::from_secs_f64(PHASES_S[3]));
    let recovery = goodput(&sim, PHASES_S[3] - PHASES_S[2]);

    let f = sim.fault_summary().expect("fault plan installed");
    Ok(PolicyOutcome {
        name,
        pre_goodput: pre,
        storm_goodput: storm,
        recovery_goodput: recovery,
        generated: sim.generated(),
        timeouts: f.timed_out,
        retried: f.retried,
        shed: f.shed,
        breaker_trips: f.breaker_trips,
    })
}

fn print_row(o: &PolicyOutcome) {
    eprintln!(
        "{:<10} {:>12.0} {:>12.0} {:>12.0} {:>10} {:>9} {:>9} {:>8}",
        o.name,
        o.pre_goodput,
        o.storm_goodput,
        o.recovery_goodput,
        o.generated,
        o.timeouts,
        o.retried,
        o.shed
    );
}

/// Runs the experiment and prints the table.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn run() -> SimResult<Summary> {
    eprintln!("# Retry storm — metastable collapse vs retry budget + breaker");
    eprintln!(
        "# {OFFERED_QPS:.0} qps offered, {:.0} ms deadline, 4x slowdown t={}s..{}s",
        TIMEOUT_S * 1e3,
        PHASES_S[1],
        PHASES_S[1] + 0.5,
    );
    let no_retry = run_policy("no-retry", None)?;
    let naive = run_policy("naive", Some(retrying_policy()))?;
    let guarded = run_policy("guarded", Some(guarded_policy()))?;
    eprintln!(
        "{:<10} {:>12} {:>12} {:>12} {:>10} {:>9} {:>9} {:>8}",
        "policy",
        "pre_qps",
        "storm_qps",
        "recovery_qps",
        "generated",
        "timeouts",
        "retries",
        "shed"
    );
    print_row(&no_retry);
    print_row(&naive);
    print_row(&guarded);
    Ok(Summary {
        no_retry,
        naive,
        guarded,
    })
}
