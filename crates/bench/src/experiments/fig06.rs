//! Fig. 6 — validation of the 3-tier NGINX→memcached→MongoDB application.
//!
//! The 3-tier service is disk-I/O bound (§IV-A), so the curve saturates at
//! a small fraction of the front end's capacity and the latency floor sits
//! in the milliseconds (misses pay a disk read). Paper anchors: simulated
//! means within 1.55 ms and tails within 2.32 ms of the real system.

use crate::{deviation_ms, linear_loads, print_series, saturation_qps, LoadPoint, RunOpts};
use uqsim_apps::noise::NoiseProfile;
use uqsim_apps::scenarios::{three_tier, ThreeTierConfig};
use uqsim_core::SimResult;

/// Measured curves.
#[derive(Debug, Clone)]
pub struct Result {
    /// Simulated curve.
    pub sim: Vec<LoadPoint>,
    /// Noisy-reference curve.
    pub reference: Vec<LoadPoint>,
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn run(opts: &RunOpts) -> SimResult<Result> {
    println!("# Fig. 6 — three-tier (NGINX-memcached-MongoDB) validation");
    let loads = linear_loads(
        500.0,
        5_500.0,
        if opts.duration.as_secs_f64() < 2.0 {
            5
        } else {
            9
        },
    );
    let build = |noise: bool| {
        let warmup = opts.warmup;
        move |qps: f64| {
            let mut cfg = ThreeTierConfig::at_qps(qps);
            cfg.common.warmup = warmup;
            if noise {
                cfg.common.noise = Some(NoiseProfile::default());
            }
            three_tier(&cfg)
        }
    };
    let jobs = vec![
        crate::SweepJob::new(loads.clone(), build(false)),
        crate::SweepJob::new(loads, build(true)),
    ];
    let mut curves = crate::sweep_batch(opts, &jobs)?.into_iter();
    let sim = curves.next().expect("one curve per submission");
    let reference = curves.next().expect("one curve per submission");
    print_series("nginx=8p mc=2t mongod+disk [simulated]", &sim);
    print_series(
        "nginx=8p mc=2t mongod+disk [real-proxy: noisy reference]",
        &reference,
    );
    let (mean_dev, tail_dev) = deviation_ms(&sim, &reference);
    println!(
        "saturation: sim {:.0} qps, ref {:.0} qps | pre-saturation deviation: mean {:.2}ms (paper: 1.55ms), p99 {:.2}ms (paper: 2.32ms)",
        saturation_qps(&sim, 100e-3),
        saturation_qps(&reference, 100e-3),
        mean_dev,
        tail_dev
    );
    println!("paper shape check: disk-bound saturation far below the 2-tier app; millisecond latency floor.");
    Ok(Result { sim, reference })
}
