//! Ablations of the design choices DESIGN.md calls out: what each µqSim
//! modeling feature contributes.
//!
//! * **Batching** — disable epoll amortization (batch = 1) and watch the
//!   single-tier NGINX saturate earlier: the BigHouse error mechanism
//!   reproduced *inside* µqSim.
//! * **Network service** — disable irq-core modeling in the 16-way load
//!   balancer: saturation moves up to the pure-webserver limit, erasing
//!   the sub-linear scaling of Fig. 8.
//! * **Connection-pool size** — sweep the 2-tier pool and watch tail
//!   latency fall as pool-exhaustion backpressure disappears.
//! * **Execution model** — memcached as Simple vs MultiThreaded at equal
//!   cores: the thread abstraction adds context-switch overhead.

use crate::{linear_loads, measure, print_series, saturation_qps, RunOpts};
use uqsim_apps::scenarios::{
    load_balanced, two_tier, CommonOpts, LoadBalancedConfig, TwoTierConfig,
};
use uqsim_core::builder::{ExecSpec, ScenarioBuilder};
use uqsim_core::client::{ArrivalProcess, ClientSpec, RequestMix};
use uqsim_core::ids::PathNodeId;
use uqsim_core::machine::MachineSpec;
use uqsim_core::path::{
    InstanceSelect, LinkKind, NodeTarget, PathNodeSpec, PathSelect, RequestType,
};
use uqsim_core::service::ServiceModel;
use uqsim_core::stage::QueueDiscipline;
use uqsim_core::time::SimDuration;
use uqsim_core::SimResult;

/// Summary numbers of all ablations, for tests.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Saturation with epoll batching on / off (single NGINX).
    pub batching_on_sat: f64,
    /// See [`Summary::batching_on_sat`].
    pub batching_off_sat: f64,
    /// LB-16 saturation with / without irq-core network processing.
    pub network_on_sat: f64,
    /// See [`Summary::network_on_sat`].
    pub network_off_sat: f64,
    /// p99 at pool sizes 4 and 64 under load.
    pub pool4_p99: f64,
    /// See [`Summary::pool4_p99`].
    pub pool64_p99: f64,
}

/// Strips all batch amortization: every stage serves one job per
/// invocation and pays the full fixed cost each time. (Note that
/// `Epoll {{ batch_per_conn: 1 }}` would *not* do this — one epoll
/// invocation still harvests a job from every active connection.)
fn no_batching(mut model: ServiceModel) -> ServiceModel {
    for stage in &mut model.stages {
        stage.queue = QueueDiscipline::Single;
    }
    model
}

fn build_memcached_with(
    model: ServiceModel,
    qps: f64,
    common: &CommonOpts,
) -> SimResult<uqsim_core::Simulator> {
    let mut b = ScenarioBuilder::new(common.seed);
    b.warmup(common.warmup);
    // Passthrough networking isolates the batching effect: with irq cores
    // enabled, their own ~240 kQPS ceiling confounds the comparison.
    let mut machine = MachineSpec::xeon("host", 4);
    machine.network = uqsim_core::machine::NetworkSpec::passthrough(20e-6);
    let m = b.add_machine(machine);
    let s = b.add_service(model);
    let i = b.add_instance(
        "memcached",
        s,
        m,
        4,
        ExecSpec::MultiThreaded {
            threads: 4,
            ctx_switch: SimDuration::from_micros(2),
        },
    )?;
    finish_single_mc(b, s, i, qps)
}

/// Runs all ablations.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn run(opts: &RunOpts) -> SimResult<Summary> {
    println!("# Ablations — what each modeling feature contributes");
    let n = if opts.duration.as_secs_f64() < 2.0 {
        5
    } else {
        8
    };

    // --- 1+2. epoll/socket batching and network (irq) processing -----------
    // memcached's fixed per-invocation costs are ~25% of its tiny request
    // budget, so disabling batch amortization visibly moves its saturation
    // point (for NGINX the fixed share is only ~4%). The batching pair and
    // the three network curves are all independent, so all five sweeps go
    // into one parallel batch; printing happens afterwards, in order.
    let mc_loads = linear_loads(140_000.0, 280_000.0, n);
    let lb_loads = linear_loads(40_000.0, 150_000.0, n);
    let jobs = vec![
        crate::SweepJob::new(mc_loads.clone(), |q| {
            let common = CommonOpts {
                warmup: opts.warmup,
                ..Default::default()
            };
            build_memcached_with(uqsim_apps::memcached::service_model(), q, &common)
        }),
        crate::SweepJob::new(mc_loads, |q| {
            let common = CommonOpts {
                warmup: opts.warmup,
                ..Default::default()
            };
            build_memcached_with(
                no_batching(uqsim_apps::memcached::service_model()),
                q,
                &common,
            )
        }),
        crate::SweepJob::new(lb_loads.clone(), |q| {
            let mut cfg = LoadBalancedConfig::new(16, q);
            cfg.common.warmup = opts.warmup;
            load_balanced(&cfg)
        }),
        // Disable irq modeling by zeroing the irq cores on both machines.
        crate::SweepJob::new(lb_loads.clone(), |q| {
            let mut cfg = LoadBalancedConfig::new(16, q);
            cfg.common.warmup = opts.warmup;
            build_lb_without_network(&cfg)
        }),
        // Kernel-bypass (DPDK-style) networking — the paper's future work:
        // no irq cores, a small poll-mode cost folded into the wire latency.
        crate::SweepJob::new(lb_loads, |q| {
            let mut cfg = LoadBalancedConfig::new(16, q);
            cfg.common.warmup = opts.warmup;
            build_lb_dpdk(&cfg)
        }),
    ];
    let mut curves = crate::sweep_batch(opts, &jobs)?.into_iter();
    let on = curves.next().expect("one curve per submission");
    let off = curves.next().expect("one curve per submission");
    let net_on = curves.next().expect("one curve per submission");
    let net_off = curves.next().expect("one curve per submission");
    let net_dpdk = curves.next().expect("one curve per submission");

    print_series("memcached 4t, batching ON", &on);
    print_series("memcached 4t, batching OFF (batch=1)", &off);
    let (batching_on_sat, batching_off_sat) =
        (saturation_qps(&on, 50e-3), saturation_qps(&off, 50e-3));
    println!("batching ablation: ON saturates at {batching_on_sat:.0} qps, OFF at {batching_off_sat:.0} qps\n");

    print_series("LB x16, network processing ON", &net_on);
    print_series("LB x16, network processing OFF", &net_off);
    print_series("LB x16, DPDK kernel-bypass", &net_dpdk);
    let (network_on_sat, network_off_sat) = (
        saturation_qps(&net_on, 50e-3),
        saturation_qps(&net_off, 50e-3),
    );
    println!(
        "network ablation: kernel saturates at {network_on_sat:.0} qps, ideal at {network_off_sat:.0} qps, dpdk at {:.0} qps\n",
        saturation_qps(&net_dpdk, 50e-3)
    );

    // --- 3. connection-pool size ------------------------------------------
    let pools = [4usize, 8, 16, 32, 64];
    let pool_points = crate::par_try_map(opts, &pools, |&pool| {
        let mut cfg = TwoTierConfig::at_qps(50_000.0);
        cfg.pool_size = pool;
        cfg.common.warmup = opts.warmup;
        Ok(measure(two_tier(&cfg)?, 50_000.0, opts))
    })?;
    println!("## 2-tier at 50 kQPS vs pool size");
    println!("{:>10} {:>9} {:>9}", "pool", "mean_ms", "p99_ms");
    let mut pool4_p99 = 0.0;
    let mut pool64_p99 = 0.0;
    for (pool, p) in pools.iter().copied().zip(&pool_points) {
        println!(
            "{:>10} {:>9.3} {:>9.3}",
            pool,
            p.latency.mean * 1e3,
            p.latency.p99 * 1e3
        );
        if pool == 4 {
            pool4_p99 = p.latency.p99;
        }
        if pool == 64 {
            pool64_p99 = p.latency.p99;
        }
    }
    println!();

    // --- 4. execution model -------------------------------------------------
    let exec_variants = [
        ("simple", None),
        ("multithreaded 4t", Some(4)),
        ("multithreaded 16t", Some(16)),
    ];
    let exec_points = crate::par_try_map(opts, &exec_variants, |&(_, threads)| {
        let common = CommonOpts {
            warmup: opts.warmup,
            ..Default::default()
        };
        let sim = match threads {
            None => build_simple_memcached(150_000.0, &common)?,
            Some(t) => build_mt_memcached(150_000.0, 4, t, &common)?,
        };
        Ok(measure(sim, 150_000.0, opts))
    })?;
    println!("## memcached 4 cores: Simple vs MultiThreaded (single-tier, 150 kQPS)");
    for ((label, _), p) in exec_variants.iter().zip(&exec_points) {
        println!(
            "{label:>18}: mean {:.3}ms p99 {:.3}ms achieved {:.0}",
            p.latency.mean * 1e3,
            p.latency.p99 * 1e3,
            p.achieved_qps
        );
    }

    Ok(Summary {
        batching_on_sat,
        batching_off_sat,
        network_on_sat,
        network_off_sat,
        pool4_p99,
        pool64_p99,
    })
}

fn build_lb_without_network(cfg: &LoadBalancedConfig) -> SimResult<uqsim_core::Simulator> {
    // Rebuild the LB scenario with passthrough networking.
    use uqsim_core::machine::NetworkSpec;
    let mut pm = MachineSpec::xeon("proxy-host", cfg.proxy_procs);
    pm.network = NetworkSpec::passthrough(20e-6);
    let mut wm = MachineSpec::xeon("ws-host", cfg.scale_out);
    wm.network = NetworkSpec::passthrough(20e-6);
    build_lb_with_machines(cfg, pm, wm)
}

fn build_lb_dpdk(cfg: &LoadBalancedConfig) -> SimResult<uqsim_core::Simulator> {
    build_lb_with_machines(
        cfg,
        MachineSpec::xeon_dpdk("proxy-host", cfg.proxy_procs),
        MachineSpec::xeon_dpdk("ws-host", cfg.scale_out),
    )
}

fn build_lb_with_machines(
    cfg: &LoadBalancedConfig,
    proxy_machine: MachineSpec,
    ws_machine: MachineSpec,
) -> SimResult<uqsim_core::Simulator> {
    let mut b = ScenarioBuilder::new(cfg.common.seed);
    b.warmup(cfg.common.warmup);
    let m_proxy = b.add_machine(proxy_machine);
    let m_ws = b.add_machine(ws_machine);
    let s = b.add_service(uqsim_apps::nginx::service_model());
    let i_proxy = b.add_instance("proxy", s, m_proxy, cfg.proxy_procs, ExecSpec::Simple)?;
    let mut servers = Vec::new();
    for k in 0..cfg.scale_out {
        let i = b.add_instance(format!("ws{k}"), s, m_ws, 1, ExecSpec::Simple)?;
        b.add_pool(i_proxy, i, cfg.pool_size)?;
        servers.push(i);
    }
    let mk = |name: &str, target, link, children| PathNodeSpec {
        name: name.into(),
        target,
        children,
        link,
        block_thread_until: None,
        pin_thread_of: None,
        fan_in_policy: Default::default(),
    };
    let nodes = vec![
        mk(
            "fwd",
            NodeTarget::Service {
                service: s,
                instance: InstanceSelect::Fixed { instance: i_proxy },
                exec_path: PathSelect::Fixed {
                    index: uqsim_apps::nginx::paths::FORWARD,
                },
            },
            LinkKind::Request,
            vec![PathNodeId::from_raw(1)],
        ),
        mk(
            "serve",
            NodeTarget::Service {
                service: s,
                instance: InstanceSelect::RoundRobin { instances: servers },
                exec_path: PathSelect::Fixed {
                    index: uqsim_apps::nginx::paths::SERVE,
                },
            },
            LinkKind::Request,
            vec![PathNodeId::from_raw(2)],
        ),
        mk(
            "respond",
            NodeTarget::Service {
                service: s,
                instance: InstanceSelect::SameAsNode {
                    node: PathNodeId::from_raw(0),
                },
                exec_path: PathSelect::Fixed {
                    index: uqsim_apps::nginx::paths::PROXY_RESPOND,
                },
            },
            LinkKind::ReplyToParent,
            vec![PathNodeId::from_raw(3)],
        ),
        PathNodeSpec::client_sink(PathNodeId::from_raw(0)),
    ];
    let ty = b.add_request_type(RequestType::new("get", nodes, PathNodeId::from_raw(0)))?;
    b.add_client(
        ClientSpec {
            name: "c".into(),
            connections: cfg.connections,
            arrivals: cfg.arrivals.clone(),
            mix: RequestMix::single(ty),
            request_size: uqsim_core::dist::Distribution::constant(612.0),
            closed_loop: None,
            timeout_s: None,
        },
        vec![i_proxy],
    );
    b.build()
}

fn build_simple_memcached(qps: f64, common: &CommonOpts) -> SimResult<uqsim_core::Simulator> {
    let mut b = ScenarioBuilder::new(common.seed);
    b.warmup(common.warmup);
    let m = b.add_machine(MachineSpec::xeon("host", 8));
    let s = b.add_service(uqsim_apps::memcached::service_model());
    let i = b.add_instance("memcached", s, m, 4, ExecSpec::Simple)?;
    finish_single_mc(b, s, i, qps)
}

fn build_mt_memcached(
    qps: f64,
    cores: usize,
    threads: usize,
    common: &CommonOpts,
) -> SimResult<uqsim_core::Simulator> {
    let mut b = ScenarioBuilder::new(common.seed);
    b.warmup(common.warmup);
    let m = b.add_machine(MachineSpec::xeon("host", cores + 4));
    let s = b.add_service(uqsim_apps::memcached::service_model());
    let i = b.add_instance(
        "memcached",
        s,
        m,
        cores,
        ExecSpec::MultiThreaded {
            threads,
            ctx_switch: SimDuration::from_micros(2),
        },
    )?;
    finish_single_mc(b, s, i, qps)
}

fn finish_single_mc(
    mut b: ScenarioBuilder,
    s: uqsim_core::ids::ServiceId,
    i: uqsim_core::ids::InstanceId,
    qps: f64,
) -> SimResult<uqsim_core::Simulator> {
    let node = PathNodeSpec {
        name: "get".into(),
        target: NodeTarget::Service {
            service: s,
            instance: InstanceSelect::Fixed { instance: i },
            exec_path: PathSelect::Fixed {
                index: uqsim_apps::memcached::paths::READ,
            },
        },
        children: vec![PathNodeId::from_raw(1)],
        link: LinkKind::Request,
        block_thread_until: None,
        pin_thread_of: None,
        fan_in_policy: Default::default(),
    };
    let sink = PathNodeSpec::client_sink(PathNodeId::from_raw(0));
    let ty = b.add_request_type(RequestType::new(
        "get",
        vec![node, sink],
        PathNodeId::from_raw(0),
    ))?;
    b.add_client(
        ClientSpec {
            name: "c".into(),
            connections: 1024,
            arrivals: ArrivalProcess::poisson(qps),
            mix: RequestMix::single(ty),
            request_size: uqsim_core::dist::Distribution::constant(512.0),
            closed_loop: None,
            timeout_s: None,
        },
        vec![i],
    );
    b.build()
}
