//! Fig. 12a — validation of Apache Thrift RPC (hello-world server).
//!
//! Paper anchors (§IV-C): saturation just beyond 50 kQPS, low-load latency
//! under 100 µs, and — past saturation — the *real* system's latency grows
//! faster than the simulator's because timeouts and reconnections are not
//! modeled (our noisy reference injects exactly those, so the same gap
//! appears between the two rows).

use crate::{linear_loads, print_series, saturation_qps, LoadPoint, RunOpts};
use uqsim_apps::noise::NoiseProfile;
use uqsim_apps::scenarios::{thrift_hello, ThriftHelloConfig};
use uqsim_core::SimResult;

/// Measured curves.
#[derive(Debug, Clone)]
pub struct Result {
    /// Simulated curve.
    pub sim: Vec<LoadPoint>,
    /// Noisy-reference curve.
    pub reference: Vec<LoadPoint>,
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn run(opts: &RunOpts) -> SimResult<Result> {
    println!("# Fig. 12a — Thrift hello-world RPC validation");
    let loads = linear_loads(
        5_000.0,
        60_000.0,
        if opts.duration.as_secs_f64() < 2.0 {
            5
        } else {
            10
        },
    );
    let build = |noise: bool| {
        let warmup = opts.warmup;
        move |qps: f64| {
            let mut cfg = ThriftHelloConfig::at_qps(qps);
            cfg.common.warmup = warmup;
            if noise {
                cfg.common.noise = Some(NoiseProfile::default());
            }
            thrift_hello(&cfg)
        }
    };
    let jobs = vec![
        crate::SweepJob::new(loads.clone(), build(false)),
        crate::SweepJob::new(loads, build(true)),
    ];
    let mut curves = crate::sweep_batch(opts, &jobs)?.into_iter();
    let sim = curves.next().expect("one curve per submission");
    let reference = curves.next().expect("one curve per submission");
    print_series("thrift 1 worker [simulated]", &sim);
    print_series("thrift 1 worker [real-proxy: noisy reference]", &reference);
    println!(
        "saturation: sim {:.0} qps (paper: >{:.0}); low-load mean: sim {:.1}us (paper: <{:.0}us)",
        saturation_qps(&sim, 20e-3),
        crate::reference::THRIFT_SATURATION_QPS,
        sim[0].latency.mean * 1e6,
        crate::reference::THRIFT_LOW_LOAD_LATENCY_S * 1e6,
    );
    println!(
        "paper shape check: beyond saturation the reference (timeouts modeled) grows faster than the clean simulation."
    );
    Ok(Result { sim, reference })
}
