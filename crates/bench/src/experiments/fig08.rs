//! Fig. 8 — validation of NGINX load balancing at scale-out 4, 8, 16.
//!
//! Paper anchors (§IV-B): saturation at 35 kQPS (×4), 70 kQPS (×8) —
//! linear — and 120 kQPS (×16) — sub-linear, because the four soft-irq
//! cores handling interrupts saturate before the NGINX instances do.

use crate::{linear_loads, print_series, saturation_qps, LoadPoint, RunOpts};
use uqsim_apps::scenarios::{load_balanced, LoadBalancedConfig};
use uqsim_core::SimResult;

/// Per-scale-out measured curve and detected saturation.
#[derive(Debug, Clone)]
pub struct ScaleResult {
    /// Scale-out factor.
    pub scale_out: usize,
    /// Measured curve (p99 focus).
    pub points: Vec<LoadPoint>,
    /// Detected saturation load.
    pub saturation_qps: f64,
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn run(opts: &RunOpts) -> SimResult<Vec<ScaleResult>> {
    println!("# Fig. 8 — load balancing validation (p99 vs load)");
    let n_points = if opts.duration.as_secs_f64() < 2.0 {
        5
    } else {
        9
    };
    // One batch over all three scale-out curves; print in scale order after.
    let jobs: Vec<crate::SweepJob<'_>> = crate::reference::LB_SATURATION
        .iter()
        .map(|&(scale, reference)| {
            let loads = linear_loads(0.2 * reference, 1.25 * reference, n_points);
            crate::SweepJob::new(loads, move |qps| {
                let mut cfg = LoadBalancedConfig::new(scale, qps);
                cfg.common.warmup = opts.warmup;
                load_balanced(&cfg)
            })
        })
        .collect();
    let curves = crate::sweep_batch(opts, &jobs)?;
    let mut out = Vec::new();
    for ((scale, reference), points) in crate::reference::LB_SATURATION.iter().copied().zip(curves)
    {
        let sat = saturation_qps(&points, 50e-3);
        print_series(&format!("scale-out {scale} [simulated]"), &points);
        println!(
            "saturation: {:.0} qps (paper real system: {:.0} qps)\n",
            sat, reference
        );
        out.push(ScaleResult {
            scale_out: scale,
            points,
            saturation_qps: sat,
        });
    }
    println!(
        "paper shape check: 4→8 scales linearly; 16 is sub-linear (irq cores saturate first)."
    );
    Ok(out)
}
