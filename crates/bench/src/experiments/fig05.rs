//! Fig. 5 — validation of the 2-tier NGINX→memcached application across
//! thread/process configurations: {8p,4t}, {8p,2t}, {4p,2t}, {4p,1t}.
//!
//! The paper compares simulated load–latency curves against the real
//! system; here the "real" rows come from the noisy reference mode (see
//! DESIGN.md's substitution table). The prose anchors: simulated means
//! within 0.17 ms and tails within 0.83 ms of real before saturation, and
//! the front end (not memcached) is the bottleneck at every configuration.

use crate::{
    deviation_ms, linear_loads, print_series, saturation_qps, LoadPoint, RunOpts, SweepJob,
};
use uqsim_apps::noise::NoiseProfile;
use uqsim_apps::scenarios::{two_tier, TwoTierConfig};
use uqsim_core::client::ArrivalProcess;
use uqsim_core::SimResult;

/// One configuration's measured curves.
#[derive(Debug, Clone)]
pub struct ConfigResult {
    /// NGINX worker processes.
    pub nginx_procs: usize,
    /// memcached threads.
    pub memcached_threads: usize,
    /// Simulated curve.
    pub sim: Vec<LoadPoint>,
    /// Noisy-reference ("real") curve.
    pub reference: Vec<LoadPoint>,
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn run(opts: &RunOpts) -> SimResult<Vec<ConfigResult>> {
    println!("# Fig. 5 — two-tier (NGINX-memcached) validation");
    let configs = [(8usize, 4usize), (8, 2), (4, 2), (4, 1)];
    // Submit all 8 curves (4 configurations × {simulated, noisy reference})
    // as one batch so every (curve, load) cell runs in parallel; print once
    // everything is back, in configuration order.
    let mut jobs = Vec::new();
    for &(np, mt) in &configs {
        let hi = if np == 8 { 85_000.0 } else { 45_000.0 };
        let loads = linear_loads(
            5_000.0,
            hi,
            if opts.duration.as_secs_f64() < 2.0 {
                5
            } else {
                9
            },
        );
        let build = move |noise: bool| {
            let warmup = opts.warmup;
            move |qps: f64| {
                let mut cfg = TwoTierConfig::at_qps(qps);
                cfg.arrivals = ArrivalProcess::poisson(qps);
                cfg.nginx_procs = np;
                cfg.memcached_threads = mt;
                cfg.common.warmup = warmup;
                if noise {
                    cfg.common.noise = Some(NoiseProfile::default());
                }
                two_tier(&cfg)
            }
        };
        jobs.push(SweepJob::new(loads.clone(), build(false)));
        jobs.push(SweepJob::new(loads, build(true)));
    }
    let mut curves = crate::sweep_batch(opts, &jobs)?.into_iter();
    let mut out = Vec::new();
    for (np, mt) in configs {
        let sim = curves.next().expect("one curve per submission");
        let reference = curves.next().expect("one curve per submission");
        print_series(&format!("nginx={np}p memcached={mt}t [simulated]"), &sim);
        print_series(
            &format!("nginx={np}p memcached={mt}t [real-proxy: noisy reference]"),
            &reference,
        );
        let (mean_dev, tail_dev) = deviation_ms(&sim, &reference);
        println!(
            "saturation: sim {:.0} qps, ref {:.0} qps | pre-saturation deviation: mean {:.2}ms (paper: 0.17ms), p99 {:.2}ms (paper: 0.83ms)\n",
            saturation_qps(&sim, 50e-3),
            saturation_qps(&reference, 50e-3),
            mean_dev,
            tail_dev
        );
        out.push(ConfigResult {
            nginx_procs: np,
            memcached_threads: mt,
            sim,
            reference,
        });
    }
    println!(
        "paper shape check: saturation tracks the NGINX process count (8p ≈ 2x 4p);\n\
         extra memcached threads do not raise throughput (front end is the bottleneck)."
    );
    Ok(out)
}
