//! Fig. 12b — validation of the end-to-end social network (Fig. 11):
//! Thrift frontend, User/Post/Media services, each fronting memcached,
//! with fanout, synchronization, and thread-blocking RPC semantics.
//!
//! Paper anchor (§IV-D): the simulation closely matches low-load latency
//! and saturates at a similar throughput as the real service.

use crate::{deviation_ms, linear_loads, print_series, saturation_qps, LoadPoint, RunOpts};
use uqsim_apps::noise::NoiseProfile;
use uqsim_apps::scenarios::{social_network, SocialNetworkConfig};
use uqsim_core::SimResult;

/// Measured curves.
#[derive(Debug, Clone)]
pub struct Result {
    /// Simulated curve.
    pub sim: Vec<LoadPoint>,
    /// Noisy-reference curve.
    pub reference: Vec<LoadPoint>,
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn run(opts: &RunOpts) -> SimResult<Result> {
    println!("# Fig. 12b — social network validation");
    let loads = linear_loads(
        2_000.0,
        30_000.0,
        if opts.duration.as_secs_f64() < 2.0 {
            5
        } else {
            9
        },
    );
    let build = |noise: bool| {
        let warmup = opts.warmup;
        move |qps: f64| {
            let mut cfg = SocialNetworkConfig::at_qps(qps);
            cfg.common.warmup = warmup;
            if noise {
                cfg.common.noise = Some(NoiseProfile::default());
            }
            social_network(&cfg)
        }
    };
    let jobs = vec![
        crate::SweepJob::new(loads.clone(), build(false)),
        crate::SweepJob::new(loads, build(true)),
    ];
    let mut curves = crate::sweep_batch(opts, &jobs)?.into_iter();
    let sim = curves.next().expect("one curve per submission");
    let reference = curves.next().expect("one curve per submission");
    print_series("social network [simulated]", &sim);
    print_series("social network [real-proxy: noisy reference]", &reference);
    let (mean_dev, tail_dev) = deviation_ms(&sim, &reference);
    println!(
        "saturation: sim {:.0} qps, ref {:.0} qps | pre-saturation deviation: mean {:.2}ms, p99 {:.2}ms",
        saturation_qps(&sim, 50e-3),
        saturation_qps(&reference, 50e-3),
        mean_dev,
        tail_dev
    );
    println!("paper shape check: low-load latency matches closely; similar saturation throughput.");
    Ok(Result { sim, reference })
}
