//! # uqsim-apps
//!
//! Calibrated microservice models and ready-made scenarios for the µqSim
//! reproduction (see `uqsim-core` for the simulator itself).
//!
//! * [`nginx`], [`memcached`], [`mongodb`], [`thrift`] — reusable
//!   [`ServiceModel`](uqsim_core::service::ServiceModel)s with stage
//!   parameters calibrated to the throughput/latency anchors the paper
//!   states in prose (see each module's docs).
//! * [`scenarios`] — builders for every evaluated topology: 2-/3-tier
//!   applications, load balancing, fanout, Thrift hello-world, the social
//!   network, single-tier services, and the tail-at-scale cluster.
//! * [`noise`] — the "noisy reference" mode that stands in for the paper's
//!   real-system measurements.
//!
//! ## Example: sweep the 2-tier application
//!
//! ```
//! use uqsim_apps::scenarios::{two_tier, TwoTierConfig};
//! use uqsim_core::time::SimDuration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sim = two_tier(&TwoTierConfig::at_qps(20_000.0))?;
//! sim.run_for(SimDuration::from_secs(2));
//! let stats = sim.latency_summary();
//! assert!(stats.p99 < 10e-3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod memcached;
pub mod mongodb;
pub mod nginx;
pub mod noise;
pub mod roles;
pub mod scenarios;
pub mod thrift;
