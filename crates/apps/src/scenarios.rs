//! Ready-made scenario builders for every topology in the paper's
//! evaluation: 2-/3-tier applications (Figs. 4–6), load balancing (Fig. 7),
//! request fanout (Fig. 9), Thrift hello-world (Fig. 12a), the social
//! network (Fig. 11), single-tier services for the BigHouse comparison
//! (Fig. 13), and the tail-at-scale fanout cluster (Fig. 14).
//!
//! Each builder returns a runnable [`Simulator`]; deployed instances carry
//! stable names (e.g. `"nginx"`, `"memcached"`) resolvable with
//! [`Simulator::instance_by_name`].

use crate::noise::NoiseProfile;
use crate::{memcached, mongodb, nginx, thrift};
use uqsim_core::builder::{ExecSpec, ScenarioBuilder};
use uqsim_core::client::{ArrivalProcess, ClientSpec, RequestMix};
use uqsim_core::config::ScenarioConfig;
use uqsim_core::dist::Distribution;
use uqsim_core::ids::{InstanceId, PathNodeId, ServiceId, StageId};
use uqsim_core::machine::MachineSpec;
use uqsim_core::path::{
    InstanceSelect, LinkKind, NodeTarget, PathNodeSpec, PathSelect, RequestType,
};
use uqsim_core::service::{ExecPath, ServiceModel};
use uqsim_core::stage::{QueueDiscipline, ServiceTimeModel, StageSpec};
use uqsim_core::time::SimDuration;
use uqsim_core::{SimResult, Simulator};

/// Options shared by every scenario.
#[derive(Debug, Clone)]
pub struct CommonOpts {
    /// Master seed.
    pub seed: u64,
    /// Latency warmup.
    pub warmup: SimDuration,
    /// Windowed-stats width, if any.
    pub window: Option<SimDuration>,
    /// Noise profile standing in for real-system effects, if any.
    pub noise: Option<NoiseProfile>,
}

impl Default for CommonOpts {
    fn default() -> Self {
        CommonOpts {
            seed: 42,
            warmup: SimDuration::from_secs(1),
            window: None,
            noise: None,
        }
    }
}

impl CommonOpts {
    fn builder(&self) -> ScenarioBuilder {
        let mut b = ScenarioBuilder::new(self.seed);
        b.warmup(self.warmup);
        if let Some(w) = self.window {
            b.window(w);
        }
        b
    }

    fn model(&self, m: ServiceModel) -> ServiceModel {
        match &self.noise {
            Some(p) => p.noisy_service(&m),
            None => m,
        }
    }
}

fn nid(i: usize) -> PathNodeId {
    PathNodeId::from_raw(i as u32)
}

fn service_node(
    name: &str,
    service: ServiceId,
    instance: InstanceSelect,
    exec_path: usize,
    link: LinkKind,
    children: Vec<PathNodeId>,
) -> PathNodeSpec {
    PathNodeSpec {
        name: name.into(),
        target: NodeTarget::Service {
            service,
            instance,
            exec_path: PathSelect::Fixed { index: exec_path },
        },
        children,
        link,
        block_thread_until: None,
        pin_thread_of: None,
        fan_in_policy: Default::default(),
    }
}

fn fixed(i: InstanceId) -> InstanceSelect {
    InstanceSelect::Fixed { instance: i }
}

fn same_as(n: usize) -> InstanceSelect {
    InstanceSelect::SameAsNode { node: nid(n) }
}

// ====================================================================
// Two-tier: NGINX → memcached (Figs. 4a, 5; power study §V-B)
// ====================================================================

/// Configuration of the 2-tier NGINX → memcached application.
#[derive(Debug, Clone)]
pub struct TwoTierConfig {
    /// Arrival process (the paper sweeps constant-rate Poisson loads).
    pub arrivals: ArrivalProcess,
    /// NGINX worker processes (the paper evaluates 8 and 4).
    pub nginx_procs: usize,
    /// memcached worker threads (the paper evaluates 4, 2, 1).
    pub memcached_threads: usize,
    /// Client connections (wrk2 uses 320).
    pub connections: usize,
    /// NGINX → memcached connection-pool size.
    pub pool_size: usize,
    /// Shared options.
    pub common: CommonOpts,
}

impl TwoTierConfig {
    /// The paper's default configuration at the given constant load.
    pub fn at_qps(qps: f64) -> Self {
        TwoTierConfig {
            arrivals: ArrivalProcess::poisson(qps),
            nginx_procs: 8,
            memcached_threads: 4,
            connections: 320,
            pool_size: 32,
            common: CommonOpts::default(),
        }
    }
}

/// Builds the 2-tier application. Instances: `"nginx"`, `"memcached"`.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn two_tier(cfg: &TwoTierConfig) -> SimResult<Simulator> {
    let mut b = cfg.common.builder();
    let m_front = b.add_machine(MachineSpec::xeon("frontend-host", cfg.nginx_procs + 4));
    let m_cache = b.add_machine(MachineSpec::xeon("cache-host", cfg.memcached_threads + 4));
    let s_nginx = b.add_service(cfg.common.model(nginx::service_model()));
    let s_mc = b.add_service(cfg.common.model(memcached::service_model()));
    let i_nginx = b.add_instance("nginx", s_nginx, m_front, cfg.nginx_procs, ExecSpec::Simple)?;
    let i_mc = b.add_instance(
        "memcached",
        s_mc,
        m_cache,
        cfg.memcached_threads,
        ExecSpec::MultiThreaded {
            threads: cfg.memcached_threads,
            ctx_switch: SimDuration::from_micros(2),
        },
    )?;
    b.add_pool(i_nginx, i_mc, cfg.pool_size)?;

    let nodes = vec![
        service_node(
            "nginx_recv",
            s_nginx,
            fixed(i_nginx),
            nginx::paths::RECV_QUERY,
            LinkKind::Request,
            vec![nid(1)],
        ),
        service_node(
            "mc_get",
            s_mc,
            fixed(i_mc),
            memcached::paths::READ,
            LinkKind::Request,
            vec![nid(2)],
        ),
        service_node(
            "nginx_respond",
            s_nginx,
            same_as(0),
            nginx::paths::RESPOND,
            LinkKind::ReplyToParent,
            vec![nid(3)],
        ),
        PathNodeSpec::client_sink(nid(0)),
    ];
    let ty = b.add_request_type(RequestType::new("get", nodes, nid(0)))?;
    b.add_client(
        ClientSpec {
            name: "wrk2".into(),
            connections: cfg.connections,
            arrivals: cfg.arrivals.clone(),
            mix: RequestMix::single(ty),
            // The validation uses exponentially distributed value sizes.
            request_size: Distribution::exponential(512.0),
            closed_loop: None,
            timeout_s: None,
        },
        vec![i_nginx],
    );
    b.build()
}

// ====================================================================
// Three-tier: NGINX → memcached → MongoDB (Figs. 4b, 6)
// ====================================================================

/// Configuration of the 3-tier application.
#[derive(Debug, Clone)]
pub struct ThreeTierConfig {
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// NGINX worker processes (the paper evaluates 8).
    pub nginx_procs: usize,
    /// memcached worker threads (the paper evaluates 2).
    pub memcached_threads: usize,
    /// mongod CPU cores.
    pub mongod_cores: usize,
    /// Disk I/O channels (queue depth).
    pub disk_channels: usize,
    /// Mean random-read latency, seconds.
    pub disk_read_s: f64,
    /// Probability that a request misses memcached and hits MongoDB.
    pub miss_ratio: f64,
    /// Client connections.
    pub connections: usize,
    /// Pool sizes for NGINX → memcached and NGINX → mongod.
    pub pool_size: usize,
    /// Shared options.
    pub common: CommonOpts,
}

impl ThreeTierConfig {
    /// The paper's configuration (8-process NGINX, 2-thread memcached) at
    /// the given constant load.
    pub fn at_qps(qps: f64) -> Self {
        ThreeTierConfig {
            arrivals: ArrivalProcess::poisson(qps),
            nginx_procs: 8,
            memcached_threads: 2,
            mongod_cores: 2,
            disk_channels: 2,
            disk_read_s: 2.5e-3,
            miss_ratio: 0.2,
            connections: 320,
            pool_size: 32,
            common: CommonOpts::default(),
        }
    }
}

/// Builds the 3-tier application. Instances: `"nginx"`, `"memcached"`,
/// `"mongod"`, `"disk"`.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn three_tier(cfg: &ThreeTierConfig) -> SimResult<Simulator> {
    let mut b = cfg.common.builder();
    let m_front = b.add_machine(MachineSpec::xeon("frontend-host", cfg.nginx_procs + 4));
    let m_cache = b.add_machine(MachineSpec::xeon("cache-host", cfg.memcached_threads + 4));
    let m_db = b.add_machine(MachineSpec::xeon(
        "db-host",
        cfg.mongod_cores + cfg.disk_channels + 4,
    ));
    let s_nginx = b.add_service(cfg.common.model(nginx::service_model()));
    let s_mc = b.add_service(cfg.common.model(memcached::service_model()));
    let s_mongo = b.add_service(cfg.common.model(mongodb::service_model()));
    let s_disk = b.add_service(cfg.common.model(mongodb::disk_model(cfg.disk_read_s)));
    let i_nginx = b.add_instance("nginx", s_nginx, m_front, cfg.nginx_procs, ExecSpec::Simple)?;
    let i_mc = b.add_instance(
        "memcached",
        s_mc,
        m_cache,
        cfg.memcached_threads,
        ExecSpec::MultiThreaded {
            threads: cfg.memcached_threads,
            ctx_switch: SimDuration::from_micros(2),
        },
    )?;
    let i_mongo = b.add_instance("mongod", s_mongo, m_db, cfg.mongod_cores, ExecSpec::Simple)?;
    let i_disk = b.add_instance("disk", s_disk, m_db, cfg.disk_channels, ExecSpec::Simple)?;
    b.add_pool(i_nginx, i_mc, cfg.pool_size)?;
    b.add_pool(i_nginx, i_mongo, cfg.pool_size)?;

    // Cache hit: client → nginx → memcached → nginx → client.
    let hit_nodes = vec![
        service_node(
            "nginx_recv",
            s_nginx,
            fixed(i_nginx),
            nginx::paths::RECV_QUERY,
            LinkKind::Request,
            vec![nid(1)],
        ),
        service_node(
            "mc_get",
            s_mc,
            fixed(i_mc),
            memcached::paths::READ,
            LinkKind::Request,
            vec![nid(2)],
        ),
        service_node(
            "nginx_respond",
            s_nginx,
            same_as(0),
            nginx::paths::RESPOND,
            LinkKind::ReplyToParent,
            vec![nid(3)],
        ),
        PathNodeSpec::client_sink(nid(0)),
    ];
    let ty_hit = b.add_request_type(RequestType::new("get_hit", hit_nodes, nid(0)))?;

    // Cache miss: nginx queries memcached (miss), then MongoDB (which does
    // a disk read), then write-allocates into memcached, then responds.
    let miss_nodes = vec![
        service_node(
            "nginx_recv",
            s_nginx,
            fixed(i_nginx),
            nginx::paths::RECV_QUERY,
            LinkKind::Request,
            vec![nid(1)],
        ),
        service_node(
            "mc_get_miss",
            s_mc,
            fixed(i_mc),
            memcached::paths::READ,
            LinkKind::Request,
            vec![nid(2)],
        ),
        service_node(
            "nginx_miss",
            s_nginx,
            same_as(0),
            nginx::paths::FORWARD,
            LinkKind::ReplyToParent,
            vec![nid(3)],
        ),
        service_node(
            "mongo_query",
            s_mongo,
            fixed(i_mongo),
            mongodb::paths::QUERY,
            LinkKind::Request,
            vec![nid(4)],
        ),
        service_node(
            "disk_read",
            s_disk,
            fixed(i_disk),
            mongodb::disk_paths::READ,
            LinkKind::Request,
            vec![nid(5)],
        ),
        service_node(
            "mongo_respond",
            s_mongo,
            same_as(3),
            mongodb::paths::RESPOND,
            LinkKind::ReplyToParent,
            vec![nid(6)],
        ),
        service_node(
            "nginx_writeback",
            s_nginx,
            same_as(0),
            nginx::paths::FORWARD,
            LinkKind::Reply { of: nid(3) },
            vec![nid(7)],
        ),
        service_node(
            "mc_set",
            s_mc,
            fixed(i_mc),
            memcached::paths::WRITE,
            LinkKind::Request,
            vec![nid(8)],
        ),
        service_node(
            "nginx_respond",
            s_nginx,
            same_as(0),
            nginx::paths::RESPOND,
            LinkKind::ReplyToParent,
            vec![nid(9)],
        ),
        PathNodeSpec::client_sink(nid(0)),
    ];
    let ty_miss = b.add_request_type(RequestType::new("get_miss", miss_nodes, nid(0)))?;

    b.add_client(
        ClientSpec {
            name: "wrk2".into(),
            connections: cfg.connections,
            arrivals: cfg.arrivals.clone(),
            mix: RequestMix::weighted(vec![
                (ty_hit, 1.0 - cfg.miss_ratio),
                (ty_miss, cfg.miss_ratio),
            ]),
            request_size: Distribution::exponential(512.0),
            closed_loop: None,
            timeout_s: None,
        },
        vec![i_nginx],
    );
    b.build()
}

// ====================================================================
// Load balancing (Figs. 7, 8)
// ====================================================================

/// Configuration of the NGINX load-balancing scenario.
#[derive(Debug, Clone)]
pub struct LoadBalancedConfig {
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Scale-out factor: number of single-core web servers (4, 8, 16).
    pub scale_out: usize,
    /// Proxy worker processes.
    pub proxy_procs: usize,
    /// Proxy → web-server pool size (per server).
    pub pool_size: usize,
    /// Client connections.
    pub connections: usize,
    /// Shared options.
    pub common: CommonOpts,
}

impl LoadBalancedConfig {
    /// The paper's setup with the given scale-out factor and load.
    pub fn new(scale_out: usize, qps: f64) -> Self {
        LoadBalancedConfig {
            arrivals: ArrivalProcess::poisson(qps),
            scale_out,
            proxy_procs: 8,
            pool_size: 64,
            connections: 320,
            common: CommonOpts::default(),
        }
    }
}

/// Builds the load-balancing scenario. Instances: `"proxy"`, `"ws{i}"`.
///
/// The web servers share one machine whose four irq cores handle all
/// inbound interrupt processing — the soft-irq ceiling responsible for the
/// sub-linear scaling at 16 servers (§IV-B).
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn load_balanced(cfg: &LoadBalancedConfig) -> SimResult<Simulator> {
    let mut b = cfg.common.builder();
    let m_proxy = b.add_machine(MachineSpec::xeon("proxy-host", cfg.proxy_procs + 4));
    let m_ws = b.add_machine(MachineSpec::xeon("ws-host", cfg.scale_out + 4));
    let s_nginx = b.add_service(cfg.common.model(nginx::service_model()));
    let i_proxy = b.add_instance("proxy", s_nginx, m_proxy, cfg.proxy_procs, ExecSpec::Simple)?;
    let mut servers = Vec::new();
    for k in 0..cfg.scale_out {
        let i = b.add_instance(format!("ws{k}"), s_nginx, m_ws, 1, ExecSpec::Simple)?;
        b.add_pool(i_proxy, i, cfg.pool_size)?;
        servers.push(i);
    }
    let nodes = vec![
        service_node(
            "proxy_fwd",
            s_nginx,
            fixed(i_proxy),
            nginx::paths::FORWARD,
            LinkKind::Request,
            vec![nid(1)],
        ),
        service_node(
            "serve",
            s_nginx,
            InstanceSelect::RoundRobin { instances: servers },
            nginx::paths::SERVE,
            LinkKind::Request,
            vec![nid(2)],
        ),
        service_node(
            "proxy_respond",
            s_nginx,
            same_as(0),
            nginx::paths::PROXY_RESPOND,
            LinkKind::ReplyToParent,
            vec![nid(3)],
        ),
        PathNodeSpec::client_sink(nid(0)),
    ];
    let ty = b.add_request_type(RequestType::new("get_page", nodes, nid(0)))?;
    b.add_client(
        ClientSpec {
            name: "clients".into(),
            connections: cfg.connections,
            arrivals: cfg.arrivals.clone(),
            mix: RequestMix::single(ty),
            // "Each requested webpage is 612 bytes in size" (§IV-B).
            request_size: Distribution::constant(612.0),
            closed_loop: None,
            timeout_s: None,
        },
        vec![i_proxy],
    );
    b.build()
}

// ====================================================================
// Request fanout (Figs. 9, 10)
// ====================================================================

/// Configuration of the NGINX fanout scenario.
#[derive(Debug, Clone)]
pub struct FanoutConfig {
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Fanout factor: every request visits all leaves (4, 8, 16).
    pub fanout: usize,
    /// Proxy worker processes.
    pub proxy_procs: usize,
    /// Proxy → leaf pool size (per leaf).
    pub pool_size: usize,
    /// Client connections.
    pub connections: usize,
    /// Shared options.
    pub common: CommonOpts,
}

impl FanoutConfig {
    /// The paper's setup (1 core / 1 thread per leaf, 4 irq cores).
    pub fn new(fanout: usize, qps: f64) -> Self {
        FanoutConfig {
            arrivals: ArrivalProcess::poisson(qps),
            fanout,
            proxy_procs: 8,
            pool_size: 64,
            connections: 320,
            common: CommonOpts::default(),
        }
    }
}

/// Builds the fanout scenario. Instances: `"proxy"`, `"leaf{i}"`. A request
/// completes only after *all* leaves respond (fan-in at the proxy).
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn fanout(cfg: &FanoutConfig) -> SimResult<Simulator> {
    let mut b = cfg.common.builder();
    let m_proxy = b.add_machine(MachineSpec::xeon("proxy-host", cfg.proxy_procs + 4));
    let m_leaf = b.add_machine(MachineSpec::xeon("leaf-host", cfg.fanout + 4));
    let s_nginx = b.add_service(cfg.common.model(nginx::service_model()));
    let i_proxy = b.add_instance("proxy", s_nginx, m_proxy, cfg.proxy_procs, ExecSpec::Simple)?;
    let mut leaves = Vec::new();
    for k in 0..cfg.fanout {
        let i = b.add_instance(format!("leaf{k}"), s_nginx, m_leaf, 1, ExecSpec::Simple)?;
        b.add_pool(i_proxy, i, cfg.pool_size)?;
        leaves.push(i);
    }
    let join = cfg.fanout + 1;
    let sink = cfg.fanout + 2;
    let mut nodes = vec![service_node(
        "proxy_fanout",
        s_nginx,
        fixed(i_proxy),
        nginx::paths::FORWARD,
        LinkKind::Request,
        (1..=cfg.fanout).map(nid).collect(),
    )];
    for (k, &leaf) in leaves.iter().enumerate() {
        nodes.push(service_node(
            &format!("serve{k}"),
            s_nginx,
            fixed(leaf),
            nginx::paths::SERVE,
            LinkKind::Request,
            vec![nid(join)],
        ));
    }
    nodes.push(service_node(
        "proxy_join",
        s_nginx,
        same_as(0),
        nginx::paths::PROXY_RESPOND,
        LinkKind::ReplyToParent,
        vec![nid(sink)],
    ));
    nodes.push(PathNodeSpec::client_sink(nid(0)));
    let ty = b.add_request_type(RequestType::new("fanout_get", nodes, nid(0)))?;
    b.add_client(
        ClientSpec {
            name: "clients".into(),
            connections: cfg.connections,
            arrivals: cfg.arrivals.clone(),
            mix: RequestMix::single(ty),
            request_size: Distribution::constant(612.0),
            closed_loop: None,
            timeout_s: None,
        },
        vec![i_proxy],
    );
    b.build()
}

// ====================================================================
// Thrift hello-world (Fig. 12a)
// ====================================================================

/// Configuration of the Thrift hello-world validation.
#[derive(Debug, Clone)]
pub struct ThriftHelloConfig {
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Worker threads (and cores).
    pub workers: usize,
    /// Client connections.
    pub connections: usize,
    /// Shared options.
    pub common: CommonOpts,
}

impl ThriftHelloConfig {
    /// The paper's single-worker hello-world server at the given load.
    pub fn at_qps(qps: f64) -> Self {
        ThriftHelloConfig {
            arrivals: ArrivalProcess::poisson(qps),
            workers: 1,
            connections: 320,
            common: CommonOpts::default(),
        }
    }
}

/// Builds the Thrift hello-world scenario. Instance: `"thrift"`.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn thrift_hello(cfg: &ThriftHelloConfig) -> SimResult<Simulator> {
    let mut b = cfg.common.builder();
    let m = b.add_machine(MachineSpec::xeon("thrift-host", cfg.workers + 4));
    let s = b.add_service(cfg.common.model(thrift::hello_world_model()));
    let i = b.add_instance(
        "thrift",
        s,
        m,
        cfg.workers,
        ExecSpec::MultiThreaded {
            threads: cfg.workers,
            ctx_switch: SimDuration::from_micros(2),
        },
    )?;
    let nodes = vec![
        service_node(
            "hello",
            s,
            fixed(i),
            thrift::paths::HANDLE,
            LinkKind::Request,
            vec![nid(1)],
        ),
        PathNodeSpec::client_sink(nid(0)),
    ];
    let ty = b.add_request_type(RequestType::new("hello", nodes, nid(0)))?;
    b.add_client(
        ClientSpec {
            name: "client".into(),
            connections: cfg.connections,
            arrivals: cfg.arrivals.clone(),
            mix: RequestMix::single(ty),
            // A "Hello World" RPC payload is tiny.
            request_size: Distribution::constant(64.0),
            closed_loop: None,
            timeout_s: None,
        },
        vec![i],
    );
    b.build()
}

// ====================================================================
// Single-tier services (BigHouse comparison, Fig. 13)
// ====================================================================

/// Builds a single-tier, single-process NGINX web server. Instance:
/// `"nginx"`.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn single_nginx(qps: f64, common: &CommonOpts) -> SimResult<Simulator> {
    let mut b = common.builder();
    let m = b.add_machine(MachineSpec::xeon("host", 1 + 4));
    let s = b.add_service(common.model(nginx::service_model()));
    let i = b.add_instance("nginx", s, m, 1, ExecSpec::Simple)?;
    let nodes = vec![
        service_node(
            "serve",
            s,
            fixed(i),
            nginx::paths::SERVE,
            LinkKind::Request,
            vec![nid(1)],
        ),
        PathNodeSpec::client_sink(nid(0)),
    ];
    let ty = b.add_request_type(RequestType::new("get_page", nodes, nid(0)))?;
    b.add_client(
        ClientSpec {
            name: "clients".into(),
            connections: 320,
            arrivals: ArrivalProcess::poisson(qps),
            mix: RequestMix::single(ty),
            request_size: Distribution::constant(612.0),
            closed_loop: None,
            timeout_s: None,
        },
        vec![i],
    );
    b.build()
}

/// Builds a single-tier memcached with the given thread count. Instance:
/// `"memcached"`.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn single_memcached(qps: f64, threads: usize, common: &CommonOpts) -> SimResult<Simulator> {
    let mut b = common.builder();
    let m = b.add_machine(MachineSpec::xeon("host", threads + 4));
    let s = b.add_service(common.model(memcached::service_model()));
    let i = b.add_instance(
        "memcached",
        s,
        m,
        threads,
        ExecSpec::MultiThreaded {
            threads,
            ctx_switch: SimDuration::from_micros(2),
        },
    )?;
    let nodes = vec![
        service_node(
            "get",
            s,
            fixed(i),
            memcached::paths::READ,
            LinkKind::Request,
            vec![nid(1)],
        ),
        PathNodeSpec::client_sink(nid(0)),
    ];
    let ty = b.add_request_type(RequestType::new("get", nodes, nid(0)))?;
    b.add_client(
        ClientSpec {
            name: "clients".into(),
            connections: 320,
            arrivals: ArrivalProcess::poisson(qps),
            mix: RequestMix::single(ty),
            request_size: Distribution::exponential(512.0),
            closed_loop: None,
            timeout_s: None,
        },
        vec![i],
    );
    b.build()
}

// ====================================================================
// Social network (Figs. 11, 12b)
// ====================================================================

/// Configuration of the social-network application.
#[derive(Debug, Clone)]
pub struct SocialNetworkConfig {
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Frontend worker threads.
    pub frontend_threads: usize,
    /// Frontend cores.
    pub frontend_cores: usize,
    /// Client connections.
    pub connections: usize,
    /// Pool size between tiers.
    pub pool_size: usize,
    /// Shared options.
    pub common: CommonOpts,
}

impl SocialNetworkConfig {
    /// Default deployment at the given load.
    pub fn at_qps(qps: f64) -> Self {
        SocialNetworkConfig {
            arrivals: ArrivalProcess::poisson(qps),
            frontend_threads: 16,
            frontend_cores: 4,
            connections: 320,
            pool_size: 32,
            common: CommonOpts::default(),
        }
    }
}

/// Builds the social network's read-post flow (Fig. 11): a Thrift frontend
/// queries the User and Post services in parallel, synchronizes their
/// replies, extracts media via the Media service, and responds. Each
/// backend service fronts its own memcached. Instances: `"frontend"`,
/// `"user"`, `"post"`, `"media"`, `"user_mc"`, `"post_mc"`, `"media_mc"`.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn social_network(cfg: &SocialNetworkConfig) -> SimResult<Simulator> {
    let mut b = cfg.common.builder();
    let m_front = b.add_machine(MachineSpec::xeon("frontend-host", cfg.frontend_cores + 4));
    let m_back = b.add_machine(MachineSpec::xeon("backend-host", 9 + 4));
    let s_front = b.add_service(
        cfg.common
            .model(thrift::service_model("frontend", 30e-6, 18e-6)),
    );
    let s_user = b.add_service(cfg.common.model(thrift::service_model(
        "user_service",
        20e-6,
        12e-6,
    )));
    let s_post = b.add_service(cfg.common.model(thrift::service_model(
        "post_service",
        22e-6,
        12e-6,
    )));
    let s_media = b.add_service(cfg.common.model(thrift::service_model(
        "media_service",
        24e-6,
        12e-6,
    )));
    let s_mc = b.add_service(cfg.common.model(memcached::service_model()));

    let mt = |threads: usize| ExecSpec::MultiThreaded {
        threads,
        ctx_switch: SimDuration::from_micros(2),
    };
    let i_front = b.add_instance(
        "frontend",
        s_front,
        m_front,
        cfg.frontend_cores,
        mt(cfg.frontend_threads),
    )?;
    let i_user = b.add_instance("user", s_user, m_back, 2, mt(8))?;
    let i_post = b.add_instance("post", s_post, m_back, 2, mt(8))?;
    let i_media = b.add_instance("media", s_media, m_back, 2, mt(8))?;
    let i_user_mc = b.add_instance("user_mc", s_mc, m_back, 1, mt(1))?;
    let i_post_mc = b.add_instance("post_mc", s_mc, m_back, 1, mt(1))?;
    let i_media_mc = b.add_instance("media_mc", s_mc, m_back, 1, mt(1))?;
    b.add_pool(i_front, i_user, cfg.pool_size)?;
    b.add_pool(i_front, i_post, cfg.pool_size)?;
    b.add_pool(i_front, i_media, cfg.pool_size)?;
    b.add_pool(i_user, i_user_mc, cfg.pool_size)?;
    b.add_pool(i_post, i_post_mc, cfg.pool_size)?;
    b.add_pool(i_media, i_media_mc, cfg.pool_size)?;

    // Node ids (see module docs for the flow):
    // 0 F1   frontend handle  (blocks thread until 7)
    // 1 U1   user handle      (blocks thread until 3)
    // 2 UM   user_mc read
    // 3 U2   user compose     (pin 1)
    // 4 P1   post handle      (blocks thread until 6)
    // 5 PM   post_mc read
    // 6 P2   post compose     (pin 4)
    // 7 J1   frontend compose (pin 0; fan-in 2; blocks thread until 11)
    // 8 M1   media handle     (blocks thread until 10)
    // 9 MM   media_mc read
    // 10 M2  media compose    (pin 8)
    // 11 J2  frontend compose (pin 0)
    // 12 sink
    let mut f1 = service_node(
        "F1",
        s_front,
        fixed(i_front),
        thrift::paths::HANDLE,
        LinkKind::Request,
        vec![nid(1), nid(4)],
    );
    f1.block_thread_until = Some(nid(7));
    let mut u1 = service_node(
        "U1",
        s_user,
        fixed(i_user),
        thrift::paths::HANDLE,
        LinkKind::Request,
        vec![nid(2)],
    );
    u1.block_thread_until = Some(nid(3));
    let um = service_node(
        "UM",
        s_mc,
        fixed(i_user_mc),
        memcached::paths::READ,
        LinkKind::Request,
        vec![nid(3)],
    );
    let mut u2 = service_node(
        "U2",
        s_user,
        same_as(1),
        thrift::paths::COMPOSE,
        LinkKind::ReplyToParent,
        vec![nid(7)],
    );
    u2.pin_thread_of = Some(nid(1));
    let mut p1 = service_node(
        "P1",
        s_post,
        fixed(i_post),
        thrift::paths::HANDLE,
        LinkKind::Request,
        vec![nid(5)],
    );
    p1.block_thread_until = Some(nid(6));
    let pm = service_node(
        "PM",
        s_mc,
        fixed(i_post_mc),
        memcached::paths::READ,
        LinkKind::Request,
        vec![nid(6)],
    );
    let mut p2 = service_node(
        "P2",
        s_post,
        same_as(4),
        thrift::paths::COMPOSE,
        LinkKind::ReplyToParent,
        vec![nid(7)],
    );
    p2.pin_thread_of = Some(nid(4));
    // J1 joins the replies of the user (via U2) and post (via P2)
    // subtrees; each copy travels back on the connection that entered that
    // subtree's first node (U1 / P1).
    let mut j1 = service_node(
        "J1",
        s_front,
        same_as(0),
        thrift::paths::COMPOSE,
        LinkKind::ReplyVia {
            entries: vec![(nid(3), nid(1)), (nid(6), nid(4))],
        },
        vec![nid(8)],
    );
    j1.pin_thread_of = Some(nid(0));
    j1.block_thread_until = Some(nid(11));
    let mut m1 = service_node(
        "M1",
        s_media,
        fixed(i_media),
        thrift::paths::HANDLE,
        LinkKind::Request,
        vec![nid(9)],
    );
    m1.block_thread_until = Some(nid(10));
    let mm = service_node(
        "MM",
        s_mc,
        fixed(i_media_mc),
        memcached::paths::READ,
        LinkKind::Request,
        vec![nid(10)],
    );
    let mut m2 = service_node(
        "M2",
        s_media,
        same_as(8),
        thrift::paths::COMPOSE,
        LinkKind::ReplyToParent,
        vec![nid(11)],
    );
    m2.pin_thread_of = Some(nid(8));
    // J2 receives the media subtree's reply on the connection that entered
    // M1 (the frontend → media pool connection).
    let mut j2 = service_node(
        "J2",
        s_front,
        same_as(0),
        thrift::paths::COMPOSE,
        LinkKind::Reply { of: nid(8) },
        vec![nid(12)],
    );
    j2.pin_thread_of = Some(nid(0));
    let sink = PathNodeSpec::client_sink(nid(0));

    let ty = b.add_request_type(RequestType::new(
        "read_post",
        vec![f1, u1, um, u2, p1, pm, p2, j1, m1, mm, m2, j2, sink],
        nid(0),
    ))?;
    b.add_client(
        ClientSpec {
            name: "clients".into(),
            connections: cfg.connections,
            arrivals: cfg.arrivals.clone(),
            mix: RequestMix::single(ty),
            request_size: Distribution::exponential(256.0),
            closed_loop: None,
            timeout_s: None,
        },
        vec![i_front],
    );
    b.build()
}

// ====================================================================
// Full social network: read / read-miss / compose / browse mix
// ====================================================================

/// Request-mix weights of the full social network (normalized at build).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocialMix {
    /// Read a post, all caches hit.
    pub read: f64,
    /// Read a post, the post cache misses → MongoDB → disk.
    pub read_miss: f64,
    /// Compose (write) a post through the post service.
    pub compose: f64,
    /// Browse a user profile (user service only).
    pub browse: f64,
}

impl Default for SocialMix {
    fn default() -> Self {
        SocialMix {
            read: 0.65,
            read_miss: 0.15,
            compose: 0.15,
            browse: 0.05,
        }
    }
}

/// Configuration of the full social network.
#[derive(Debug, Clone)]
pub struct SocialNetworkFullConfig {
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Request mix.
    pub mix: SocialMix,
    /// Frontend worker threads.
    pub frontend_threads: usize,
    /// Frontend cores.
    pub frontend_cores: usize,
    /// Mean disk random-read latency, seconds.
    pub disk_read_s: f64,
    /// Client connections.
    pub connections: usize,
    /// Pool size between tiers.
    pub pool_size: usize,
    /// Shared options.
    pub common: CommonOpts,
}

impl SocialNetworkFullConfig {
    /// Default deployment at the given load.
    pub fn at_qps(qps: f64) -> Self {
        SocialNetworkFullConfig {
            arrivals: ArrivalProcess::poisson(qps),
            mix: SocialMix::default(),
            frontend_threads: 16,
            frontend_cores: 4,
            disk_read_s: 2.5e-3,
            connections: 320,
            pool_size: 32,
            common: CommonOpts::default(),
        }
    }
}

/// Builds the social network with the paper's full action set (§IV-D:
/// "users can follow each other, post messages, reply publicly or
/// privately to another user, and browse information about a given
/// user"): four request types share one deployment, with the post service
/// backed by MongoDB + disk for cache misses and writes.
///
/// Instances: those of [`social_network`] plus `"mongod"` and `"disk"`.
/// Request types (resolvable by name): `"read_post"`, `"read_post_miss"`,
/// `"compose_post"`, `"browse_user"`.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn social_network_full(cfg: &SocialNetworkFullConfig) -> SimResult<Simulator> {
    use uqsim_core::path::RequestTypeBuilder;

    let mut b = cfg.common.builder();
    let m_front = b.add_machine(MachineSpec::xeon("frontend-host", cfg.frontend_cores + 4));
    let m_back = b.add_machine(MachineSpec::xeon("backend-host", 13 + 4));
    let s_front = b.add_service(
        cfg.common
            .model(thrift::service_model("frontend", 30e-6, 18e-6)),
    );
    let s_user = b.add_service(cfg.common.model(thrift::service_model(
        "user_service",
        20e-6,
        12e-6,
    )));
    let s_post = b.add_service(cfg.common.model(thrift::service_model(
        "post_service",
        22e-6,
        12e-6,
    )));
    let s_media = b.add_service(cfg.common.model(thrift::service_model(
        "media_service",
        24e-6,
        12e-6,
    )));
    let s_mc = b.add_service(cfg.common.model(memcached::service_model()));
    let s_mongo = b.add_service(cfg.common.model(mongodb::service_model()));
    let s_disk = b.add_service(cfg.common.model(mongodb::disk_model(cfg.disk_read_s)));

    let mt = |threads: usize| ExecSpec::MultiThreaded {
        threads,
        ctx_switch: SimDuration::from_micros(2),
    };
    let i_front = b.add_instance(
        "frontend",
        s_front,
        m_front,
        cfg.frontend_cores,
        mt(cfg.frontend_threads),
    )?;
    let i_user = b.add_instance("user", s_user, m_back, 2, mt(8))?;
    let i_post = b.add_instance("post", s_post, m_back, 2, mt(8))?;
    let i_media = b.add_instance("media", s_media, m_back, 2, mt(8))?;
    let i_user_mc = b.add_instance("user_mc", s_mc, m_back, 1, mt(1))?;
    let i_post_mc = b.add_instance("post_mc", s_mc, m_back, 1, mt(1))?;
    let i_media_mc = b.add_instance("media_mc", s_mc, m_back, 1, mt(1))?;
    let i_mongo = b.add_instance("mongod", s_mongo, m_back, 2, ExecSpec::Simple)?;
    let i_disk = b.add_instance("disk", s_disk, m_back, 2, ExecSpec::Simple)?;
    b.add_pool(i_front, i_user, cfg.pool_size)?;
    b.add_pool(i_front, i_post, cfg.pool_size)?;
    b.add_pool(i_front, i_media, cfg.pool_size)?;
    b.add_pool(i_user, i_user_mc, cfg.pool_size)?;
    b.add_pool(i_post, i_post_mc, cfg.pool_size)?;
    b.add_pool(i_media, i_media_mc, cfg.pool_size)?;
    b.add_pool(i_post, i_mongo, cfg.pool_size)?;

    let handle = thrift::paths::HANDLE;
    let compose = thrift::paths::COMPOSE;
    let svc_node = |name: &str, svc, inst, path| {
        service_node(name, svc, fixed(inst), path, LinkKind::Request, Vec::new())
    };

    // ---- read_post (all caches hit) -----------------------------------
    let ty_read = {
        let mut d = RequestTypeBuilder::new("read_post");
        let f1 = d.add(svc_node("F1", s_front, i_front, handle));
        let u1 = d.add(svc_node("U1", s_user, i_user, handle));
        let um = d.add(svc_node("UM", s_mc, i_user_mc, memcached::paths::READ));
        let u2 = d.add(
            PathNodeSpec::reply_to_parent("U2", s_user, u1)
                .with_exec_path(uqsim_core::path::PathSelect::Fixed { index: compose }),
        );
        let p1 = d.add(svc_node("P1", s_post, i_post, handle));
        let pm = d.add(svc_node("PM", s_mc, i_post_mc, memcached::paths::READ));
        let p2 = d.add(
            PathNodeSpec::reply_to_parent("P2", s_post, p1)
                .with_exec_path(uqsim_core::path::PathSelect::Fixed { index: compose }),
        );
        let j1 = d.add(service_node(
            "J1",
            s_front,
            same_as(0),
            compose,
            LinkKind::ReplyVia {
                entries: vec![(u2, u1), (p2, p1)],
            },
            Vec::new(),
        ));
        let m1 = d.add(svc_node("M1", s_media, i_media, handle));
        let mm = d.add(svc_node("MM", s_mc, i_media_mc, memcached::paths::READ));
        let m2 = d.add(
            PathNodeSpec::reply_to_parent("M2", s_media, m1)
                .with_exec_path(uqsim_core::path::PathSelect::Fixed { index: compose }),
        );
        let j2 = d.add(service_node(
            "J2",
            s_front,
            same_as(0),
            compose,
            LinkKind::Reply { of: m1 },
            Vec::new(),
        ));
        let sink = d.add(PathNodeSpec::client_sink(f1));
        for (a, bb) in [
            (f1, u1),
            (f1, p1),
            (u1, um),
            (um, u2),
            (u2, j1),
            (p1, pm),
            (pm, p2),
            (p2, j1),
            (j1, m1),
            (m1, mm),
            (mm, m2),
            (m2, j2),
            (j2, sink),
        ] {
            d.link(a, bb);
        }
        d.node_mut(f1).block_thread_until = Some(j1);
        d.node_mut(u1).block_thread_until = Some(u2);
        d.node_mut(u2).pin_thread_of = Some(u1);
        d.node_mut(p1).block_thread_until = Some(p2);
        d.node_mut(p2).pin_thread_of = Some(p1);
        d.node_mut(j1).pin_thread_of = Some(f1);
        d.node_mut(j1).block_thread_until = Some(j2);
        d.node_mut(m1).block_thread_until = Some(m2);
        d.node_mut(m2).pin_thread_of = Some(m1);
        d.node_mut(j2).pin_thread_of = Some(f1);
        b.add_request_type(d.finish().map_err(uqsim_core::SimError::InvalidScenario)?)?
    };

    // ---- read_post_miss (post cache misses → MongoDB → disk) ----------
    let ty_miss = {
        let mut d = RequestTypeBuilder::new("read_post_miss");
        let f1 = d.add(svc_node("F1", s_front, i_front, handle));
        let u1 = d.add(svc_node("U1", s_user, i_user, handle));
        let um = d.add(svc_node("UM", s_mc, i_user_mc, memcached::paths::READ));
        let u2 = d.add(
            PathNodeSpec::reply_to_parent("U2", s_user, u1)
                .with_exec_path(uqsim_core::path::PathSelect::Fixed { index: compose }),
        );
        let p1 = d.add(svc_node("P1", s_post, i_post, handle));
        let pm = d.add(svc_node("PM_miss", s_mc, i_post_mc, memcached::paths::READ));
        // The post worker resumes on the miss reply and queries MongoDB.
        let pm1 = d.add(
            PathNodeSpec::reply_to_parent("Pq", s_post, p1)
                .with_exec_path(uqsim_core::path::PathSelect::Fixed { index: compose }),
        );
        let g1 = d.add(svc_node("G1", s_mongo, i_mongo, mongodb::paths::QUERY));
        let disk = d.add(svc_node("D", s_disk, i_disk, mongodb::disk_paths::READ));
        let g2 = d.add(
            PathNodeSpec::reply_to_parent("G2", s_mongo, g1).with_exec_path(
                uqsim_core::path::PathSelect::Fixed {
                    index: mongodb::paths::RESPOND,
                },
            ),
        );
        let p2 = d.add(service_node(
            "P2",
            s_post,
            same_as(4),
            compose,
            LinkKind::Reply { of: g1 },
            Vec::new(),
        ));
        let j1 = d.add(service_node(
            "J1",
            s_front,
            same_as(0),
            compose,
            LinkKind::ReplyVia {
                entries: vec![(u2, u1), (p2, p1)],
            },
            Vec::new(),
        ));
        let m1 = d.add(svc_node("M1", s_media, i_media, handle));
        let mm = d.add(svc_node("MM", s_mc, i_media_mc, memcached::paths::READ));
        let m2 = d.add(
            PathNodeSpec::reply_to_parent("M2", s_media, m1)
                .with_exec_path(uqsim_core::path::PathSelect::Fixed { index: compose }),
        );
        let j2 = d.add(service_node(
            "J2",
            s_front,
            same_as(0),
            compose,
            LinkKind::Reply { of: m1 },
            Vec::new(),
        ));
        let sink = d.add(PathNodeSpec::client_sink(f1));
        for (a, bb) in [
            (f1, u1),
            (f1, p1),
            (u1, um),
            (um, u2),
            (u2, j1),
            (p1, pm),
            (pm, pm1),
            (pm1, g1),
            (g1, disk),
            (disk, g2),
            (g2, p2),
            (p2, j1),
            (j1, m1),
            (m1, mm),
            (mm, m2),
            (m2, j2),
            (j2, sink),
        ] {
            d.link(a, bb);
        }
        d.node_mut(f1).block_thread_until = Some(j1);
        d.node_mut(u1).block_thread_until = Some(u2);
        d.node_mut(u2).pin_thread_of = Some(u1);
        // The post worker blocks twice: for the cache reply, then for the
        // database reply (the thread is held across the disk read, which
        // is exactly what a synchronous Thrift handler does).
        d.node_mut(p1).block_thread_until = Some(pm1);
        d.node_mut(pm1).pin_thread_of = Some(p1);
        d.node_mut(pm1).block_thread_until = Some(p2);
        d.node_mut(p2).pin_thread_of = Some(p1);
        d.node_mut(j1).pin_thread_of = Some(f1);
        d.node_mut(j1).block_thread_until = Some(j2);
        d.node_mut(m1).block_thread_until = Some(m2);
        d.node_mut(m2).pin_thread_of = Some(m1);
        d.node_mut(j2).pin_thread_of = Some(f1);
        b.add_request_type(d.finish().map_err(uqsim_core::SimError::InvalidScenario)?)?
    };

    // ---- compose_post (write through the post service) ----------------
    let ty_compose = {
        let mut d = RequestTypeBuilder::new("compose_post");
        let f1 = d.add(svc_node("F1", s_front, i_front, handle));
        let p1 = d.add(svc_node("P1", s_post, i_post, handle));
        let pw = d.add(svc_node("PW", s_mc, i_post_mc, memcached::paths::WRITE));
        let p2 = d.add(
            PathNodeSpec::reply_to_parent("P2", s_post, p1)
                .with_exec_path(uqsim_core::path::PathSelect::Fixed { index: compose }),
        );
        let j = d.add(service_node(
            "J",
            s_front,
            same_as(0),
            compose,
            LinkKind::Reply { of: p1 },
            Vec::new(),
        ));
        let sink = d.add(PathNodeSpec::client_sink(f1));
        for (a, bb) in [(f1, p1), (p1, pw), (pw, p2), (p2, j), (j, sink)] {
            d.link(a, bb);
        }
        d.node_mut(f1).block_thread_until = Some(j);
        d.node_mut(p1).block_thread_until = Some(p2);
        d.node_mut(p2).pin_thread_of = Some(p1);
        d.node_mut(j).pin_thread_of = Some(f1);
        b.add_request_type(d.finish().map_err(uqsim_core::SimError::InvalidScenario)?)?
    };

    // ---- browse_user ----------------------------------------------------
    let ty_browse = {
        let mut d = RequestTypeBuilder::new("browse_user");
        let f1 = d.add(svc_node("F1", s_front, i_front, handle));
        let u1 = d.add(svc_node("U1", s_user, i_user, handle));
        let um = d.add(svc_node("UM", s_mc, i_user_mc, memcached::paths::READ));
        let u2 = d.add(
            PathNodeSpec::reply_to_parent("U2", s_user, u1)
                .with_exec_path(uqsim_core::path::PathSelect::Fixed { index: compose }),
        );
        let j = d.add(service_node(
            "J",
            s_front,
            same_as(0),
            compose,
            LinkKind::Reply { of: u1 },
            Vec::new(),
        ));
        let sink = d.add(PathNodeSpec::client_sink(f1));
        for (a, bb) in [(f1, u1), (u1, um), (um, u2), (u2, j), (j, sink)] {
            d.link(a, bb);
        }
        d.node_mut(f1).block_thread_until = Some(j);
        d.node_mut(u1).block_thread_until = Some(u2);
        d.node_mut(u2).pin_thread_of = Some(u1);
        d.node_mut(j).pin_thread_of = Some(f1);
        b.add_request_type(d.finish().map_err(uqsim_core::SimError::InvalidScenario)?)?
    };

    b.add_client(
        ClientSpec {
            name: "clients".into(),
            connections: cfg.connections,
            arrivals: cfg.arrivals.clone(),
            mix: RequestMix::weighted(vec![
                (ty_read, cfg.mix.read),
                (ty_miss, cfg.mix.read_miss),
                (ty_compose, cfg.mix.compose),
                (ty_browse, cfg.mix.browse),
            ]),
            request_size: Distribution::exponential(256.0),
            closed_loop: None,
            timeout_s: None,
        },
        vec![i_front],
    );
    b.build()
}

// ====================================================================
// Tail at scale (Fig. 14)
// ====================================================================

/// Configuration of the tail-at-scale fanout cluster (§V-A).
#[derive(Debug, Clone)]
pub struct TailAtScaleConfig {
    /// Per-leaf request rate (each request visits *every* leaf).
    pub qps: f64,
    /// Cluster size (the paper sweeps 5 → 1000).
    pub cluster_size: usize,
    /// Fraction of leaves that are slow.
    pub slow_fraction: f64,
    /// Slowdown multiplier of the slow leaves (the paper uses 10×).
    pub slowdown: f64,
    /// Mean leaf service time, seconds (the paper uses 1 ms, exponential).
    pub mean_service_s: f64,
    /// Shared options.
    pub common: CommonOpts,
}

impl TailAtScaleConfig {
    /// The paper's setup for the given cluster size and slow fraction.
    pub fn new(cluster_size: usize, slow_fraction: f64, qps: f64) -> Self {
        TailAtScaleConfig {
            qps,
            cluster_size,
            slow_fraction,
            slowdown: 10.0,
            mean_service_s: 1e-3,
            common: CommonOpts::default(),
        }
    }
}

/// Builds the tail-at-scale cluster: a negligible-cost dispatcher fans each
/// request to every leaf (single-stage, exponential service) and the
/// response returns when the last leaf answers. A `slow_fraction` of leaves
/// runs `slowdown`× slower. Instances: `"dispatcher"`, `"leaf{i}"`.
///
/// Network processing is disabled (passthrough) so the measured effect is
/// purely the fanout tail, as in §V-A's one-stage queueing setup.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn tail_at_scale(cfg: &TailAtScaleConfig) -> SimResult<Simulator> {
    let mut b = cfg.common.builder();
    let n = cfg.cluster_size;
    let mut disp_machine = MachineSpec::xeon("dispatcher-host", 4);
    disp_machine.network = uqsim_core::machine::NetworkSpec::passthrough(20e-6);
    let m_disp = b.add_machine(disp_machine);
    let mut leaf_machine = MachineSpec::xeon("leaf-host", n);
    leaf_machine.network = uqsim_core::machine::NetworkSpec::passthrough(20e-6);
    let m_leaf = b.add_machine(leaf_machine);

    let leaf_model = |name: &str, mean: f64| {
        ServiceModel::new(
            name,
            vec![StageSpec::new(
                "serve",
                QueueDiscipline::Single,
                ServiceTimeModel::per_job(Distribution::exponential(mean), 2.6),
            )],
            vec![ExecPath::new("serve", vec![StageId::from_raw(0)])],
        )
    };
    let dispatcher_model = ServiceModel::new(
        "dispatcher",
        vec![StageSpec::new(
            "dispatch",
            QueueDiscipline::Single,
            ServiceTimeModel::per_job(Distribution::constant(1e-6), 2.6),
        )],
        vec![ExecPath::new("dispatch", vec![StageId::from_raw(0)])],
    );
    let s_disp = b.add_service(cfg.common.model(dispatcher_model));
    let s_fast = b.add_service(cfg.common.model(leaf_model("leaf", cfg.mean_service_s)));
    let s_slow = b.add_service(
        cfg.common
            .model(leaf_model("slow_leaf", cfg.mean_service_s * cfg.slowdown)),
    );
    let i_disp = b.add_instance("dispatcher", s_disp, m_disp, 4, ExecSpec::Simple)?;
    let n_slow = (cfg.slow_fraction * n as f64).round() as usize;
    let mut leaves = Vec::with_capacity(n);
    for k in 0..n {
        let svc = if k < n_slow { s_slow } else { s_fast };
        leaves.push(b.add_instance(format!("leaf{k}"), svc, m_leaf, 1, ExecSpec::Simple)?);
    }

    let join = n + 1;
    let sink = n + 2;
    let mut nodes = vec![service_node(
        "dispatch",
        s_disp,
        fixed(i_disp),
        0,
        LinkKind::Request,
        (1..=n).map(nid).collect(),
    )];
    for (k, &leaf) in leaves.iter().enumerate() {
        let svc = if k < n_slow { s_slow } else { s_fast };
        nodes.push(service_node(
            &format!("leaf{k}"),
            svc,
            fixed(leaf),
            0,
            LinkKind::Request,
            vec![nid(join)],
        ));
    }
    nodes.push(service_node(
        "join",
        s_disp,
        same_as(0),
        0,
        LinkKind::ReplyToParent,
        vec![nid(sink)],
    ));
    nodes.push(PathNodeSpec::client_sink(nid(0)));
    let ty = b.add_request_type(RequestType::new("fanout", nodes, nid(0)))?;
    b.add_client(
        ClientSpec {
            name: "clients".into(),
            connections: 4096,
            arrivals: ArrivalProcess::poisson(cfg.qps),
            mix: RequestMix::single(ty),
            request_size: Distribution::constant(64.0),
            closed_loop: None,
            timeout_s: None,
        },
        vec![i_disp],
    );
    b.build()
}

// ====================================================================
// Pod cluster: N independent 2-tier pods (partitioned-execution fodder)
// ====================================================================

/// A cluster of `pods` independent two-machine pods, as a plain
/// [`ScenarioConfig`] (not a built simulator) so it can feed the
/// partitioned engine
/// ([`uqsim_core::partition::run_partitioned`]) and the `uqsim` CLI's
/// `--shards` flag.
///
/// Each pod owns a frontend machine (a `front` service instance), a
/// backend machine (a `store` service instance), a connection pool between
/// them, a request chain `recv → fetch → respond → sink` (with a
/// `same_as_node` respond hop and reply links), and an open-loop Poisson
/// client at `qps_per_pod`. Pods share service *models* but no machines,
/// instances, pools, request types, or clients — so the must-colocate
/// graph splits the cluster into exactly `pods` request-closed cells, one
/// per pod. With 50+ pods this is the 100+-machine shard-scaling scenario
/// the partition differential tests and benchmarks use.
///
/// # Errors
///
/// Propagates JSON-assembly errors from
/// [`ScenarioConfig::from_json`] (none are expected for valid inputs).
///
/// # Examples
///
/// ```
/// use uqsim_apps::scenarios::pod_cluster;
/// use uqsim_core::partition::split_cells;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = pod_cluster(4, 1500.0)?;
/// assert_eq!(cfg.machines.len(), 8);
/// assert_eq!(split_cells(&cfg)?.len(), 4); // one cell per pod
/// # Ok(())
/// # }
/// ```
pub fn pod_cluster(pods: usize, qps_per_pod: f64) -> SimResult<ScenarioConfig> {
    let machine = |name: &str| {
        format!(
            r#"{{ "name": "{name}", "cores": 2,
      "dvfs": {{ "levels_ghz": [2.6] }},
      "network": {{ "irq_cores": 1,
        "rx_time": {{ "type": "exponential", "mean": 0.0000166 }},
        "wire_latency": {{ "type": "constant", "value": 0.00002 }} }} }}"#
        )
    };
    let service = |name: &str, mean_s: f64| {
        format!(
            r#"{{ "name": "{name}",
      "stages": [
        {{ "name": "handler", "queue": {{ "type": "single" }},
          "service": {{ "base": {{ "type": "constant", "value": 0.0 }},
            "per_job": {{ "type": "exponential", "mean": {mean_s} }},
            "ref_freq_ghz": 2.6, "freq_alpha": 1.0 }} }}
      ],
      "paths": [{{ "name": "default", "stages": [0] }}] }}"#
        )
    };
    let mut machines = Vec::new();
    let mut instances = Vec::new();
    let mut pools = Vec::new();
    let mut request_types = Vec::new();
    let mut clients = Vec::new();
    for i in 0..pods.max(1) {
        machines.push(machine(&format!("p{i}-fe")));
        machines.push(machine(&format!("p{i}-be")));
        instances.push(format!(
            r#"{{ "name": "p{i}-front", "service": "front", "machine": "p{i}-fe",
      "cores": 1, "exec": {{ "type": "simple" }} }}"#
        ));
        instances.push(format!(
            r#"{{ "name": "p{i}-store", "service": "store", "machine": "p{i}-be",
      "cores": 1, "exec": {{ "type": "simple" }} }}"#
        ));
        pools.push(format!(
            r#"{{ "up": "p{i}-front", "down": "p{i}-store", "size": 8 }}"#
        ));
        request_types.push(format!(
            r#"{{ "name": "get{i}",
      "nodes": [
        {{ "name": "recv",
          "target": {{ "type": "service", "service": "front",
            "instance": {{ "type": "fixed", "name": "p{i}-front" }},
            "exec_path": "default" }},
          "children": ["fetch"] }},
        {{ "name": "fetch",
          "target": {{ "type": "service", "service": "store",
            "instance": {{ "type": "fixed", "name": "p{i}-store" }},
            "exec_path": "default" }},
          "children": ["respond"] }},
        {{ "name": "respond",
          "target": {{ "type": "service", "service": "front",
            "instance": {{ "type": "same_as_node", "node": "recv" }},
            "exec_path": "default" }},
          "children": ["sink"], "link": "reply_to_parent" }},
        {{ "name": "sink", "target": {{ "type": "client_sink" }},
          "link": {{ "reply": {{ "of": "recv" }} }} }}
      ] }}"#
        ));
        clients.push(format!(
            r#"{{ "name": "wrk{i}", "connections": 32,
      "arrivals": {{ "type": "poisson",
        "schedule": {{ "segments": [[0.0, {qps_per_pod}]] }} }},
      "mix": [["get{i}", 1.0]], "roots": ["p{i}-front"] }}"#
        ))
    }
    let json = format!(
        r#"{{
  "seed": 42,
  "warmup_s": 0.1,
  "machines": [{}],
  "services": [{}, {}],
  "instances": [{}],
  "pools": [{}],
  "request_types": [{}],
  "clients": [{}]
}}"#,
        machines.join(",\n"),
        service("front", 0.00006),
        service("store", 0.00004),
        instances.join(",\n"),
        pools.join(",\n"),
        request_types.join(",\n"),
        clients.join(",\n"),
    );
    ScenarioConfig::from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uqsim_core::time::SimDuration;

    fn quick(mut sim: Simulator, secs: u64) -> Simulator {
        sim.run_for(SimDuration::from_secs(secs));
        sim
    }

    #[test]
    fn two_tier_runs_and_completes() {
        let sim = quick(two_tier(&TwoTierConfig::at_qps(10_000.0)).unwrap(), 3);
        let tput = sim.completed() as f64 / sim.now().as_secs_f64();
        assert!((tput - 10_000.0).abs() / 10_000.0 < 0.05, "tput {tput}");
        let s = sim.latency_summary();
        // Below saturation: sub-millisecond p99, plausible floor.
        assert!(s.mean > 100e-6, "mean {}", s.mean);
        assert!(s.p99 < 5e-3, "p99 {}", s.p99);
    }

    #[test]
    fn two_tier_saturates_near_70k() {
        // 8 NGINX workers at ~114us/request → ~70 kQPS. At 60k the app
        // keeps up; at 90k it visibly cannot.
        let ok = quick(two_tier(&TwoTierConfig::at_qps(60_000.0)).unwrap(), 4);
        let tput_ok = ok.completed() as f64 / ok.now().as_secs_f64();
        assert!(tput_ok > 0.95 * 60_000.0, "tput {tput_ok}");
        let over = quick(two_tier(&TwoTierConfig::at_qps(90_000.0)).unwrap(), 4);
        let tput_over = over.completed() as f64 / over.now().as_secs_f64();
        assert!(tput_over < 80_000.0, "overload tput {tput_over}");
        assert!(
            over.latency_summary().p99 > 10.0 * ok.latency_summary().p99,
            "saturation should blow up the tail"
        );
    }

    #[test]
    fn three_tier_is_disk_bound() {
        let cfg = ThreeTierConfig::at_qps(3_000.0);
        let sim = quick(three_tier(&cfg).unwrap(), 4);
        let tput = sim.completed() as f64 / sim.now().as_secs_f64();
        assert!((tput - 3_000.0).abs() / 3_000.0 < 0.06, "tput {tput}");
        // Disk utilization dwarfs nginx utilization at this load.
        let disk = sim.instance_by_name("disk").unwrap();
        let ng = sim.instance_by_name("nginx").unwrap();
        assert!(sim.instance_utilization(disk) > 3.0 * sim.instance_utilization(ng));
    }

    #[test]
    fn load_balanced_scales() {
        let s4 = quick(
            load_balanced(&LoadBalancedConfig::new(4, 30_000.0)).unwrap(),
            3,
        );
        let t4 = s4.completed() as f64 / s4.now().as_secs_f64();
        assert!(t4 > 0.95 * 30_000.0, "4-way at 30k: {t4}");
        let s8 = quick(
            load_balanced(&LoadBalancedConfig::new(8, 60_000.0)).unwrap(),
            3,
        );
        let t8 = s8.completed() as f64 / s8.now().as_secs_f64();
        assert!(t8 > 0.95 * 60_000.0, "8-way at 60k: {t8}");
    }

    #[test]
    fn fanout_waits_for_all_leaves() {
        let sim = quick(fanout(&FanoutConfig::new(8, 3_000.0)).unwrap(), 3);
        let tput = sim.completed() as f64 / sim.now().as_secs_f64();
        assert!((tput - 3_000.0).abs() / 3_000.0 < 0.06, "tput {tput}");
        // p99 of max-of-8 must exceed the single-leaf p50 substantially.
        let s = sim.latency_summary();
        assert!(s.p99 > 1.5 * s.p50);
    }

    #[test]
    fn thrift_hello_low_load_under_100us() {
        let sim = quick(
            thrift_hello(&ThriftHelloConfig::at_qps(5_000.0)).unwrap(),
            3,
        );
        let s = sim.latency_summary();
        assert!(s.mean < 150e-6, "mean {}us", s.mean * 1e6);
        assert!(s.p50 < 100e-6, "p50 {}us", s.p50 * 1e6);
    }

    #[test]
    fn thrift_hello_saturates_past_50k() {
        let ok = quick(
            thrift_hello(&ThriftHelloConfig::at_qps(45_000.0)).unwrap(),
            3,
        );
        let t = ok.completed() as f64 / ok.now().as_secs_f64();
        assert!(t > 0.95 * 45_000.0, "tput {t}");
        let over = quick(
            thrift_hello(&ThriftHelloConfig::at_qps(70_000.0)).unwrap(),
            3,
        );
        let t_over = over.completed() as f64 / over.now().as_secs_f64();
        assert!(t_over < 60_000.0, "overload tput {t_over}");
    }

    #[test]
    fn social_network_completes_and_blocks_threads() {
        let sim = quick(
            social_network(&SocialNetworkConfig::at_qps(5_000.0)).unwrap(),
            3,
        );
        let tput = sim.completed() as f64 / sim.now().as_secs_f64();
        assert!((tput - 5_000.0).abs() / 5_000.0 < 0.06, "tput {tput}");
        // Two sequential synchronous phases: latency well above a single
        // backend round trip.
        assert!(sim.latency_summary().p50 > 200e-6);
    }

    #[test]
    fn three_tier_hit_and_miss_types_diverge() {
        let cfg = ThreeTierConfig::at_qps(2_500.0);
        let mut sim = three_tier(&cfg).unwrap();
        sim.run_for(SimDuration::from_secs(4));
        let hit = sim.request_type_by_name("get_hit").unwrap();
        let miss = sim.request_type_by_name("get_miss").unwrap();
        let hit_s = sim.type_latency_summary(hit);
        let miss_s = sim.type_latency_summary(miss);
        // The mix is 80/20.
        let frac = miss_s.count as f64 / (hit_s.count + miss_s.count) as f64;
        assert!((frac - 0.2).abs() < 0.03, "miss fraction {frac}");
        // Misses pay the disk read; hits stay sub-millisecond at this load.
        assert!(hit_s.p50 < 1e-3, "hit p50 {}", hit_s.p50);
        assert!(
            miss_s.p50 > hit_s.p50 + 1.5e-3,
            "miss {} vs hit {}",
            miss_s.p50,
            hit_s.p50
        );
    }

    #[test]
    fn social_network_full_mix_runs() {
        let cfg = SocialNetworkFullConfig::at_qps(4_000.0);
        let mut sim = social_network_full(&cfg).unwrap();
        sim.run_for(SimDuration::from_secs(4));
        let tput = sim.completed() as f64 / sim.now().as_secs_f64();
        assert!((tput - 4_000.0).abs() / 4_000.0 < 0.06, "tput {tput}");
        // Cache misses pay the disk read: their tail dwarfs the hit path's.
        let hit = sim.request_type_by_name("read_post").unwrap();
        let miss = sim.request_type_by_name("read_post_miss").unwrap();
        let hit_s = sim.type_latency_summary(hit);
        let miss_s = sim.type_latency_summary(miss);
        assert!(hit_s.count > 1_000 && miss_s.count > 200);
        assert!(
            miss_s.p50 > hit_s.p50 + 2e-3,
            "miss p50 {} must include a disk read over hit p50 {}",
            miss_s.p50,
            hit_s.p50
        );
        // Browses are the cheapest flow (single backend).
        let browse = sim.request_type_by_name("browse_user").unwrap();
        assert!(sim.type_latency_summary(browse).p50 < hit_s.p50);
        // Conservation still holds with four interleaved DAG shapes.
        assert_eq!(
            sim.generated(),
            sim.completed() + sim.live_requests() as u64
        );
    }

    #[test]
    fn social_network_full_is_deterministic() {
        let run = |seed: u64| {
            let mut cfg = SocialNetworkFullConfig::at_qps(3_000.0);
            cfg.common.seed = seed;
            let mut sim = social_network_full(&cfg).unwrap();
            sim.run_for(SimDuration::from_secs(2));
            (sim.completed(), format!("{:?}", sim.latency_summary()))
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn tail_at_scale_slow_leaves_dominate() {
        let clean = quick(
            tail_at_scale(&TailAtScaleConfig::new(50, 0.0, 60.0)).unwrap(),
            8,
        );
        let slow = quick(
            tail_at_scale(&TailAtScaleConfig::new(50, 0.02, 60.0)).unwrap(),
            8,
        );
        // One slow leaf out of 50 drags p99 toward the 10x regime.
        assert!(
            slow.latency_summary().p99 > 2.0 * clean.latency_summary().p99,
            "slow p99 {} vs clean p99 {}",
            slow.latency_summary().p99,
            clean.latency_summary().p99
        );
    }

    #[test]
    fn single_tier_scenarios_run() {
        let n = quick(single_nginx(5_000.0, &CommonOpts::default()).unwrap(), 2);
        assert!(n.completed() > 4_000);
        let m = quick(
            single_memcached(20_000.0, 4, &CommonOpts::default()).unwrap(),
            2,
        );
        assert!(m.completed() > 15_000);
    }

    #[test]
    fn noise_makes_tail_worse() {
        let mut noisy_cfg = TwoTierConfig::at_qps(20_000.0);
        noisy_cfg.common.noise = Some(crate::noise::NoiseProfile::default());
        let clean = quick(two_tier(&TwoTierConfig::at_qps(20_000.0)).unwrap(), 3);
        let noisy = quick(two_tier(&noisy_cfg).unwrap(), 3);
        assert!(noisy.latency_summary().p99 > clean.latency_summary().p99);
    }
}
