//! NGINX model.
//!
//! The paper models NGINX with an `epoll` stage plus handler processing
//! (§IV-E), used in three roles across the evaluation:
//!
//! * **web server** serving a small static page (load-balancing and fanout
//!   experiments, Figs. 7–10),
//! * **front end** of the 2-/3-tier applications: parse the client request,
//!   query the cache/database tiers, compose the response (Figs. 4–6),
//! * **proxy**: forward to a backend and relay the response (Figs. 7, 9).
//!
//! Calibration: §IV-B reports that four single-core NGINX web servers
//! behind a load balancer saturate at 35 kQPS, i.e. ≈114 µs of CPU per
//! request per core. The stage parameters below reproduce that budget,
//! split so the fixed epoll cost amortizes under batching.

use uqsim_core::dist::Distribution;
use uqsim_core::ids::StageId;
use uqsim_core::service::{ExecPath, ServiceModel};
use uqsim_core::stage::{QueueDiscipline, ServiceTimeModel, StageSpec};

/// Execution-path indices of the NGINX model.
pub mod paths {
    /// Serve a small static page (web-server role): ≈110 µs.
    pub const SERVE: usize = 0;
    /// Parse an incoming client request and query a downstream tier: ≈47 µs.
    pub const RECV_QUERY: usize = 1;
    /// Compose and send the final response: ≈57 µs.
    pub const RESPOND: usize = 2;
    /// Cheap forwarding hop (proxy role, miss-path orchestration): ≈23 µs.
    pub const FORWARD: usize = 3;
    /// Relay a backend response to the client (proxy role): ≈18 µs.
    pub const PROXY_RESPOND: usize = 4;
}

/// Stage indices of the NGINX model.
pub mod stages {
    /// The `epoll` event-harvesting stage (batching).
    pub const EPOLL: usize = 0;
    /// Static-page handler.
    pub const SERVE: usize = 1;
    /// Request parsing.
    pub const PARSE: usize = 2;
    /// Response composition.
    pub const COMPOSE: usize = 3;
    /// Proxy-style forward.
    pub const FORWARD: usize = 4;
    /// Proxy-style response relay.
    pub const PROXY_RESPOND: usize = 5;
    /// Socket send.
    pub const SEND: usize = 6;
}

/// Reference DVFS frequency the model was "profiled" at, GHz.
pub const REF_FREQ_GHZ: f64 = 2.6;

/// Builds the NGINX service model.
///
/// # Examples
///
/// ```
/// let m = uqsim_apps::nginx::service_model();
/// assert!(m.validate().is_ok());
/// assert_eq!(m.path_index("serve_page"), Some(uqsim_apps::nginx::paths::SERVE));
/// ```
pub fn service_model() -> ServiceModel {
    let single = |mean: f64, cv: f64| {
        ServiceTimeModel::per_job(Distribution::lognormal_mean_cv(mean, cv), REF_FREQ_GHZ)
    };
    let stages = vec![
        StageSpec::new(
            "epoll",
            QueueDiscipline::Epoll { batch_per_conn: 16 },
            ServiceTimeModel::batched(
                Distribution::constant(5e-6),
                Distribution::exponential(3e-6),
                REF_FREQ_GHZ,
            ),
        ),
        StageSpec::new("serve", QueueDiscipline::Single, single(100e-6, 0.7)),
        StageSpec::new("parse", QueueDiscipline::Single, single(38e-6, 0.7)),
        StageSpec::new("compose", QueueDiscipline::Single, single(48e-6, 0.7)),
        StageSpec::new("forward", QueueDiscipline::Single, single(14e-6, 0.5)),
        StageSpec::new("proxy_respond", QueueDiscipline::Single, single(9e-6, 0.5)),
        StageSpec::new(
            "socket_send",
            QueueDiscipline::Single,
            single(6e-6, 0.3).with_per_byte(1.5e-9),
        ),
    ];
    let s = |i: usize| StageId::from_raw(i as u32);
    let paths = vec![
        ExecPath::new(
            "serve_page",
            vec![s(stages::EPOLL), s(stages::SERVE), s(stages::SEND)],
        ),
        ExecPath::new(
            "recv_query",
            vec![s(stages::EPOLL), s(stages::PARSE), s(stages::SEND)],
        ),
        ExecPath::new(
            "respond",
            vec![s(stages::EPOLL), s(stages::COMPOSE), s(stages::SEND)],
        ),
        ExecPath::new(
            "forward",
            vec![s(stages::EPOLL), s(stages::FORWARD), s(stages::SEND)],
        ),
        ExecPath::new(
            "proxy_respond",
            vec![s(stages::EPOLL), s(stages::PROXY_RESPOND), s(stages::SEND)],
        ),
    ];
    ServiceModel::new("nginx", stages, paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_is_valid() {
        assert!(service_model().validate().is_ok());
    }

    #[test]
    fn path_constants_match_names() {
        let m = service_model();
        assert_eq!(m.path_index("serve_page"), Some(paths::SERVE));
        assert_eq!(m.path_index("recv_query"), Some(paths::RECV_QUERY));
        assert_eq!(m.path_index("respond"), Some(paths::RESPOND));
        assert_eq!(m.path_index("forward"), Some(paths::FORWARD));
        assert_eq!(m.path_index("proxy_respond"), Some(paths::PROXY_RESPOND));
    }

    #[test]
    fn webserver_budget_near_114us() {
        // LB calibration: ≈114 µs/request/core for the serve_page path at
        // batch size 1 (§IV-B: 4 servers saturate at 35 kQPS).
        let m = service_model();
        let total: f64 = m.paths[paths::SERVE]
            .stages
            .iter()
            .map(|&s| m.stages[s.index()].service.mean(1))
            .sum();
        assert!(
            (total - 114e-6).abs() < 15e-6,
            "serve_page budget {}us should be ~114us",
            total * 1e6
        );
    }

    #[test]
    fn front_end_budget_near_114us() {
        // 2-tier: recv_query + respond on the same worker must also land
        // near the 114us/request budget so 8 workers saturate at ~70 kQPS.
        let m = service_model();
        let budget: f64 = [paths::RECV_QUERY, paths::RESPOND]
            .iter()
            .flat_map(|&p| m.paths[p].stages.iter())
            .map(|&s| m.stages[s.index()].service.mean(1))
            .sum();
        assert!(
            (budget - 114e-6).abs() < 15e-6,
            "front-end budget {}us should be ~114us",
            budget * 1e6
        );
    }

    #[test]
    fn epoll_amortizes() {
        let m = service_model();
        let epoll = &m.stages[stages::EPOLL].service;
        assert!(epoll.mean(16) / 16.0 < epoll.mean(1) / 2.0);
    }
}
