//! Service-role templates for workload synthesis.
//!
//! The topology generator (`uqsim-synth`) builds DeathStarBench-class
//! layered graphs out of the calibrated models in this crate. Each layer
//! of a generated graph has a [`Role`]; a role knows which model template
//! to clone (renamed per generated service) and which execution paths a
//! path node should run when the service *forwards* to children, when it
//! *joins* their replies, and when it is visited as a *leaf*.

use uqsim_core::service::ServiceModel;

use crate::{memcached, mongodb, nginx, thrift};

/// The role a generated service plays in its layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Role {
    /// An NGINX-style front end (request parsing, proxying, composition).
    Front,
    /// A Thrift-style logic tier (RPC handler + response composition).
    Logic,
    /// A memcached-style in-memory cache leaf.
    Cache,
    /// A MongoDB-style persistent-store leaf.
    Db,
}

impl Role {
    /// A fresh copy of this role's calibrated model, renamed to `name`
    /// (each generated service is its own logical microservice).
    pub fn service_model(&self, name: &str) -> ServiceModel {
        let mut model = match self {
            Role::Front => nginx::service_model(),
            Role::Logic => thrift::service_model(name, 30e-6, 12e-6),
            Role::Cache => memcached::service_model(),
            Role::Db => mongodb::service_model(),
        };
        model.name = name.to_string();
        model
    }

    /// The execution path a node runs when it forwards to children.
    pub fn entry_path(&self) -> &'static str {
        match self {
            Role::Front => "recv_query",
            Role::Logic => "handle",
            // Leaves never forward; their entry is the leaf path.
            Role::Cache => "memcached_read",
            Role::Db => "query",
        }
    }

    /// The execution path of the join/respond hop that merges child
    /// replies (runs on the same instance as the entry node).
    pub fn reply_path(&self) -> &'static str {
        match self {
            Role::Front => "respond",
            Role::Logic => "compose",
            Role::Cache => "memcached_read",
            Role::Db => "respond",
        }
    }

    /// The execution path of a single-visit leaf node.
    pub fn leaf_path(&self) -> &'static str {
        match self {
            Role::Front => "serve_page",
            Role::Logic => "handle",
            Role::Cache => "memcached_read",
            Role::Db => "query",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_role_paths_exist_in_their_models() {
        for role in [Role::Front, Role::Logic, Role::Cache, Role::Db] {
            let m = role.service_model("svc");
            assert_eq!(m.name, "svc");
            assert!(m.validate().is_ok(), "{role:?}");
            for p in [role.entry_path(), role.reply_path(), role.leaf_path()] {
                assert!(
                    m.paths.iter().any(|e| e.name == p),
                    "{role:?} missing path {p}"
                );
            }
        }
    }

    #[test]
    fn role_serde_is_snake_case() {
        assert_eq!(serde_json::to_string(&Role::Front).unwrap(), "\"front\"");
        let r: Role = serde_json::from_str("\"db\"").unwrap();
        assert_eq!(r, Role::Db);
    }
}
