//! MongoDB model, plus the disk substrate it depends on.
//!
//! The paper uses MongoDB as the persistent tier of the 3-tier application
//! and as its example of probabilistic execution paths: a query is either a
//! (memory) hit or a miss that performs disk I/O (§III-B). We model the CPU
//! side as a mongod service and the I/O side as a separate single-stage
//! *disk* service whose "cores" are I/O channels — disk waits therefore
//! queue without occupying mongod's CPU, matching how a blocking read
//! behaves.
//!
//! Calibration: the 3-tier application must be disk-bound (§IV-A: "the
//! 3-tier application is primarily bottlenecked by the disk I/O bandwidth
//! of MongoDB"): with a 20% miss ratio and ≈2.5 ms per disk read over two
//! channels, the end-to-end service saturates around 4 kQPS — far below
//! the NGINX front end's 70 kQPS.

use uqsim_core::dist::Distribution;
use uqsim_core::ids::StageId;
use uqsim_core::service::{ExecPath, ServiceModel};
use uqsim_core::stage::{QueueDiscipline, ServiceTimeModel, StageSpec};

/// Execution-path indices of the mongod model.
pub mod paths {
    /// Parse and plan a query, then issue the read.
    pub const QUERY: usize = 0;
    /// Assemble and send the response after data is available.
    pub const RESPOND: usize = 1;
}

/// Execution-path indices of the disk model.
pub mod disk_paths {
    /// One random read.
    pub const READ: usize = 0;
}

/// Reference DVFS frequency, GHz.
pub const REF_FREQ_GHZ: f64 = 2.6;

/// Builds the mongod (CPU-side) service model.
///
/// # Examples
///
/// ```
/// let m = uqsim_apps::mongodb::service_model();
/// assert!(m.validate().is_ok());
/// ```
pub fn service_model() -> ServiceModel {
    let single = |mean: f64, cv: f64| {
        ServiceTimeModel::per_job(Distribution::lognormal_mean_cv(mean, cv), REF_FREQ_GHZ)
    };
    let stages = vec![
        StageSpec::new(
            "epoll",
            QueueDiscipline::Epoll { batch_per_conn: 16 },
            ServiceTimeModel::batched(
                Distribution::constant(4e-6),
                Distribution::exponential(2e-6),
                REF_FREQ_GHZ,
            ),
        ),
        StageSpec::new("query_proc", QueueDiscipline::Single, single(120e-6, 0.6)),
        StageSpec::new("respond_proc", QueueDiscipline::Single, single(60e-6, 0.5)),
        StageSpec::new("socket_send", QueueDiscipline::Single, single(5e-6, 0.3)),
    ];
    let s = |i: usize| StageId::from_raw(i as u32);
    let paths = vec![
        ExecPath::new("query", vec![s(0), s(1), s(3)]),
        ExecPath::new("respond", vec![s(0), s(2), s(3)]),
    ];
    ServiceModel::new("mongod", stages, paths)
}

/// Builds the disk substrate: a single-stage service whose instance cores
/// represent I/O channels (queue depth).
///
/// `mean_read_s` is the mean random-read latency (default suggestion:
/// 2.5 ms for the paper's 7.2k-RPM SATA drives).
///
/// # Examples
///
/// ```
/// let d = uqsim_apps::mongodb::disk_model(2.5e-3);
/// assert!(d.validate().is_ok());
/// ```
pub fn disk_model(mean_read_s: f64) -> ServiceModel {
    // Disk time does not scale with CPU frequency.
    let service = ServiceTimeModel::per_job(
        Distribution::lognormal_mean_cv(mean_read_s, 0.6),
        REF_FREQ_GHZ,
    )
    .with_freq_alpha(0.0);
    ServiceModel::new(
        "disk",
        vec![StageSpec::new(
            "disk_read",
            QueueDiscipline::Single,
            service,
        )],
        vec![ExecPath::new("read", vec![StageId::from_raw(0)])],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_are_valid() {
        assert!(service_model().validate().is_ok());
        assert!(disk_model(2.5e-3).validate().is_ok());
    }

    #[test]
    fn path_constants_match_names() {
        let m = service_model();
        assert_eq!(m.path_index("query"), Some(paths::QUERY));
        assert_eq!(m.path_index("respond"), Some(paths::RESPOND));
        assert_eq!(disk_model(1e-3).path_index("read"), Some(disk_paths::READ));
    }

    #[test]
    fn disk_dominates_cpu_cost() {
        let m = service_model();
        let cpu: f64 = m.paths[paths::QUERY]
            .stages
            .iter()
            .chain(m.paths[paths::RESPOND].stages.iter())
            .map(|&s| m.stages[s.index()].service.mean(1))
            .sum();
        let disk = disk_model(2.5e-3).stages[0].service.mean(1);
        assert!(disk > 10.0 * cpu, "disk {disk}s should dominate cpu {cpu}s");
    }

    #[test]
    fn disk_is_frequency_insensitive() {
        let d = disk_model(2.5e-3);
        assert_eq!(d.stages[0].service.freq_alpha, 0.0);
    }
}
