//! The "noisy reference" mode that stands in for the paper's real-system
//! measurements.
//!
//! §V-B lists the effects the real testbed exhibits that µqSim does not
//! model: request timeouts and reconnections, TCP/IP contention, and OS
//! interference from scheduling and context switching. To obtain a
//! meaningfully distinct "real system" comparator for the validation
//! experiments and Table III, we inject exactly those effects: every stage
//! distribution becomes a mixture in which a small fraction of invocations
//! is inflated by an interference multiplier, and a rare fraction pays a
//! millisecond-scale timeout/retry penalty.

use uqsim_core::dist::Distribution;
use uqsim_core::service::ServiceModel;

/// Parameters of the injected noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseProfile {
    /// Probability that an invocation suffers OS interference.
    pub interference_prob: f64,
    /// Multiplier applied to interfered invocations.
    pub interference_scale: f64,
    /// Probability of a timeout/reconnect penalty.
    pub timeout_prob: f64,
    /// The penalty added on a timeout, seconds.
    pub timeout_penalty_s: f64,
}

impl Default for NoiseProfile {
    /// A mild profile tuned so the "real" curves sit slightly above and
    /// jitter more than the clean simulation, as in Figs. 5–6 and 16.
    /// Probabilities apply per distribution draw and a request triggers
    /// several draws, so they are kept small.
    fn default() -> Self {
        NoiseProfile {
            interference_prob: 0.015,
            interference_scale: 3.0,
            timeout_prob: 5e-4,
            timeout_penalty_s: 1e-3,
        }
    }
}

impl NoiseProfile {
    /// Wraps one distribution with this profile's noise.
    pub fn apply(&self, d: &Distribution) -> Distribution {
        let clean = 1.0 - self.interference_prob - self.timeout_prob;
        assert!(clean > 0.0, "noise probabilities exceed 1");
        Distribution::Mixture {
            components: vec![
                (clean, d.clone()),
                (self.interference_prob, d.scaled(self.interference_scale)),
                (
                    self.timeout_prob,
                    Distribution::Shifted {
                        offset: self.timeout_penalty_s,
                        inner: Box::new(d.clone()),
                    },
                ),
            ],
        }
    }

    /// Returns a copy of `model` with every stage's service times noised.
    pub fn noisy_service(&self, model: &ServiceModel) -> ServiceModel {
        let mut out = model.clone();
        for stage in &mut out.stages {
            stage.service.base = self.apply(&stage.service.base);
            stage.service.per_job = self.apply(&stage.service.per_job);
            for entry in &mut stage.service.freq_table {
                entry.1 = self.apply(&entry.1);
                entry.2 = self.apply(&entry.2);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memcached;

    #[test]
    fn noisy_model_is_valid_and_slower() {
        let clean = memcached::service_model();
        let noisy = NoiseProfile::default().noisy_service(&clean);
        assert!(noisy.validate().is_ok());
        // Mean grows: interference and timeouts only add time.
        let mean = |m: &ServiceModel| -> f64 { m.stages.iter().map(|s| s.service.mean(1)).sum() };
        assert!(mean(&noisy) > mean(&clean));
    }

    #[test]
    fn noise_increases_mean_by_expected_amount() {
        let p = NoiseProfile {
            interference_prob: 0.1,
            interference_scale: 3.0,
            timeout_prob: 0.0,
            timeout_penalty_s: 0.0,
        };
        let d = Distribution::constant(10e-6);
        let noisy = p.apply(&d);
        // E = 0.9*10 + 0.1*30 = 12us.
        assert!((noisy.mean() - 12e-6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn absurd_probabilities_panic() {
        let p = NoiseProfile {
            interference_prob: 0.9,
            interference_scale: 2.0,
            timeout_prob: 0.2,
            timeout_penalty_s: 1e-3,
        };
        let _ = p.apply(&Distribution::constant(1e-6));
    }

    #[test]
    fn zero_noise_preserves_mean() {
        let p = NoiseProfile {
            interference_prob: 0.0,
            interference_scale: 1.0,
            timeout_prob: 0.0,
            timeout_penalty_s: 0.0,
        };
        let d = Distribution::exponential(5e-5);
        assert!((p.apply(&d).mean() - d.mean()).abs() < 1e-15);
    }
}
