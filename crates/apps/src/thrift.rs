//! Apache Thrift RPC server model.
//!
//! Thrift services run a blocking worker-thread model: a worker reads a
//! request off its socket, runs the handler, and writes the reply; a
//! synchronous downstream call holds the worker (releasing the core) until
//! the reply arrives. In path DAGs this maps to `block_thread_until` /
//! `pin_thread_of` on the caller's nodes.
//!
//! Calibration: the hello-world validation (§IV-C, Fig. 12a) saturates just
//! beyond 50 kQPS on one worker, with sub-100 µs latency at low load —
//! ≈20 µs of per-request work.

use uqsim_core::dist::Distribution;
use uqsim_core::ids::StageId;
use uqsim_core::service::{ExecPath, ServiceModel};
use uqsim_core::stage::{QueueDiscipline, ServiceTimeModel, StageSpec};

/// Execution-path indices of a Thrift service model.
pub mod paths {
    /// Receive, run the handler, reply.
    pub const HANDLE: usize = 0;
    /// Continuation after a synchronous call returns: compose and reply.
    pub const COMPOSE: usize = 1;
}

/// Reference DVFS frequency, GHz.
pub const REF_FREQ_GHZ: f64 = 2.6;

/// Builds a Thrift service model with the given handler and continuation
/// processing means (seconds).
///
/// # Examples
///
/// ```
/// let m = uqsim_apps::thrift::service_model("user_service", 20e-6, 12e-6);
/// assert!(m.validate().is_ok());
/// assert_eq!(m.name, "user_service");
/// ```
pub fn service_model(
    name: impl Into<String>,
    handle_mean_s: f64,
    compose_mean_s: f64,
) -> ServiceModel {
    let single = |mean: f64, cv: f64| {
        ServiceTimeModel::per_job(Distribution::lognormal_mean_cv(mean, cv), REF_FREQ_GHZ)
    };
    let stages = vec![
        StageSpec::new("socket_read", QueueDiscipline::Single, single(4e-6, 0.3)),
        StageSpec::new(
            "handler",
            QueueDiscipline::Single,
            single(handle_mean_s, 0.6),
        ),
        StageSpec::new(
            "compose",
            QueueDiscipline::Single,
            single(compose_mean_s, 0.5),
        ),
        StageSpec::new("socket_send", QueueDiscipline::Single, single(4e-6, 0.3)),
    ];
    let s = |i: usize| StageId::from_raw(i as u32);
    let paths = vec![
        ExecPath::new("handle", vec![s(0), s(1), s(3)]),
        ExecPath::new("compose", vec![s(0), s(2), s(3)]),
    ];
    ServiceModel::new(name, stages, paths)
}

/// The hello-world server of the Fig. 12a validation: ≈20 µs per request.
pub fn hello_world_model() -> ServiceModel {
    service_model("thrift_hello", 12e-6, 8e-6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_are_valid() {
        assert!(hello_world_model().validate().is_ok());
        assert!(service_model("x", 1e-5, 1e-5).validate().is_ok());
    }

    #[test]
    fn path_constants_match_names() {
        let m = hello_world_model();
        assert_eq!(m.path_index("handle"), Some(paths::HANDLE));
        assert_eq!(m.path_index("compose"), Some(paths::COMPOSE));
    }

    #[test]
    fn hello_world_budget_is_20us() {
        // One worker must saturate just past 50 kQPS (Fig. 12a).
        let m = hello_world_model();
        let total: f64 = m.paths[paths::HANDLE]
            .stages
            .iter()
            .map(|&s| m.stages[s.index()].service.mean(1))
            .sum();
        assert!(
            (total - 20e-6).abs() < 3e-6,
            "budget {}us should be ~20us",
            total * 1e6
        );
    }
}
