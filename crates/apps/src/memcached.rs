//! memcached model — the paper's running example (Listing 1).
//!
//! Stages: `epoll` → `socket_read` → `memcached_processing` →
//! `socket_send`, with per-connection batching on the first two and two
//! execution paths (`memcached_read`, `memcached_write`) that traverse the
//! same stages but may draw from different processing-time distributions.
//!
//! Calibration: memcached must *not* be the bottleneck of the 2-tier
//! application at any evaluated thread count (§IV-A observes that giving
//! memcached more resources does not raise throughput): ≈20 µs of CPU per
//! request per thread puts one thread at ≈50 kQPS, comfortably above the
//! 35 kQPS a 4-process NGINX front end sustains.

use uqsim_core::dist::Distribution;
use uqsim_core::ids::StageId;
use uqsim_core::service::{ExecPath, ServiceModel};
use uqsim_core::stage::{QueueDiscipline, ServiceTimeModel, StageSpec};

/// Execution-path indices of the memcached model.
pub mod paths {
    /// GET: ≈20 µs per request.
    pub const READ: usize = 0;
    /// SET: slightly heavier processing.
    pub const WRITE: usize = 1;
}

/// Stage indices of the memcached model.
pub mod stages {
    /// Event harvesting across connections.
    pub const EPOLL: usize = 0;
    /// Drain requests from one ready connection.
    pub const SOCKET_READ: usize = 1;
    /// Hash-table lookup (GET).
    pub const PROCESSING: usize = 2;
    /// Hash-table update (SET).
    pub const WRITE_PROCESSING: usize = 3;
    /// Response send.
    pub const SOCKET_SEND: usize = 4;
}

/// Reference DVFS frequency, GHz.
pub const REF_FREQ_GHZ: f64 = 2.6;

/// Memory-bound fraction: memcached scales sub-linearly with frequency.
pub const FREQ_ALPHA: f64 = 0.7;

/// Builds the memcached service model of Listing 1.
///
/// # Examples
///
/// ```
/// let m = uqsim_apps::memcached::service_model();
/// assert!(m.validate().is_ok());
/// assert_eq!(m.paths.len(), 2);
/// ```
pub fn service_model() -> ServiceModel {
    let single = |mean: f64, cv: f64| {
        ServiceTimeModel::per_job(Distribution::lognormal_mean_cv(mean, cv), REF_FREQ_GHZ)
            .with_freq_alpha(FREQ_ALPHA)
    };
    let stages = vec![
        StageSpec::new(
            "epoll",
            QueueDiscipline::Epoll { batch_per_conn: 16 },
            ServiceTimeModel::batched(
                Distribution::constant(4e-6),
                Distribution::exponential(1.5e-6),
                REF_FREQ_GHZ,
            )
            .with_freq_alpha(FREQ_ALPHA),
        ),
        StageSpec::new(
            "socket_read",
            QueueDiscipline::Socket { batch: 8 },
            ServiceTimeModel::batched(
                Distribution::constant(1e-6),
                Distribution::exponential(1.8e-6),
                REF_FREQ_GHZ,
            )
            // "socket_read's processing time is proportional to the number
            // of bytes read from socket" (§III-B).
            .with_per_byte(2e-9)
            .with_freq_alpha(FREQ_ALPHA),
        ),
        StageSpec::new(
            "memcached_processing",
            QueueDiscipline::Single,
            single(9e-6, 0.5),
        ),
        StageSpec::new(
            "memcached_write",
            QueueDiscipline::Single,
            single(11e-6, 0.5),
        ),
        StageSpec::new(
            "socket_send",
            QueueDiscipline::Single,
            single(4e-6, 0.3).with_per_byte(1.5e-9),
        ),
    ];
    let s = |i: usize| StageId::from_raw(i as u32);
    let paths = vec![
        ExecPath::new(
            "memcached_read",
            vec![
                s(stages::EPOLL),
                s(stages::SOCKET_READ),
                s(stages::PROCESSING),
                s(stages::SOCKET_SEND),
            ],
        ),
        ExecPath::new(
            "memcached_write",
            vec![
                s(stages::EPOLL),
                s(stages::SOCKET_READ),
                s(stages::WRITE_PROCESSING),
                s(stages::SOCKET_SEND),
            ],
        ),
    ];
    ServiceModel::new("memcached", stages, paths)
}

/// The model rendered in the JSON shape of the paper's Listing 1 (stage
/// list with queue types and batching flags, plus the two paths).
pub fn listing1_json() -> String {
    let m = service_model();
    let stages: Vec<serde_json::Value> = m
        .stages
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let (queue_type, batching, parameter) = match s.queue {
                uqsim_core::stage::QueueDiscipline::Epoll { batch_per_conn } => (
                    "epoll",
                    true,
                    serde_json::json!([serde_json::Value::Null, batch_per_conn]),
                ),
                uqsim_core::stage::QueueDiscipline::Socket { batch } => {
                    ("socket", true, serde_json::json!([batch]))
                }
                uqsim_core::stage::QueueDiscipline::Single => {
                    ("single", false, serde_json::Value::Null)
                }
            };
            serde_json::json!({
                "stage_name": s.name,
                "stage_id": i,
                "queue_type": queue_type,
                "batching": batching,
                "queue_parameter": parameter,
            })
        })
        .collect();
    let paths: Vec<serde_json::Value> = m
        .paths
        .iter()
        .enumerate()
        .map(|(i, p)| {
            serde_json::json!({
                "path_id": i,
                "path_name": p.name,
                "stages": p.stages.iter().map(|s| s.index()).collect::<Vec<_>>(),
            })
        })
        .collect();
    serde_json::to_string_pretty(&serde_json::json!({
        "service_name": m.name,
        "stages": stages,
        "paths": paths,
    }))
    .expect("model serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_is_valid() {
        assert!(service_model().validate().is_ok());
    }

    #[test]
    fn path_constants_match_names() {
        let m = service_model();
        assert_eq!(m.path_index("memcached_read"), Some(paths::READ));
        assert_eq!(m.path_index("memcached_write"), Some(paths::WRITE));
    }

    #[test]
    fn read_budget_is_light() {
        // One thread must sustain well over 35 kQPS (so it never binds the
        // 2-tier app with a 4-process NGINX): ≈20us/req → ≈50 kQPS.
        let m = service_model();
        let total: f64 = m.paths[paths::READ]
            .stages
            .iter()
            .map(|&s| m.stages[s.index()].service.mean(1))
            .sum();
        assert!(total < 25e-6, "read budget {}us too heavy", total * 1e6);
        assert!(
            total > 15e-6,
            "read budget {}us implausibly light",
            total * 1e6
        );
    }

    #[test]
    fn both_paths_share_stage_skeleton() {
        // Listing 1: read and write consist of the same stages in the same
        // order (only the processing distribution differs).
        let m = service_model();
        assert_eq!(
            m.paths[paths::READ].stages.len(),
            m.paths[paths::WRITE].stages.len()
        );
        assert_eq!(
            m.paths[paths::READ].stages[0],
            m.paths[paths::WRITE].stages[0]
        );
        assert_eq!(
            m.paths[paths::READ].stages[1],
            m.paths[paths::WRITE].stages[1]
        );
        assert_eq!(
            m.paths[paths::READ].stages[3],
            m.paths[paths::WRITE].stages[3]
        );
    }

    #[test]
    fn listing1_json_matches_paper_shape() {
        let json = listing1_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["service_name"], "memcached");
        assert_eq!(v["stages"][0]["stage_name"], "epoll");
        assert_eq!(v["stages"][0]["queue_type"], "epoll");
        assert_eq!(v["stages"][0]["batching"], true);
        assert_eq!(v["paths"][0]["path_name"], "memcached_read");
        assert_eq!(v["paths"][1]["path_name"], "memcached_write");
    }

    #[test]
    fn frequency_scaling_is_sublinear() {
        let m = service_model();
        let proc = &m.stages[stages::PROCESSING].service;
        assert!((proc.freq_alpha - FREQ_ALPHA).abs() < 1e-12);
    }
}
