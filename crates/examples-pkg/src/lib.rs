//! Anchor crate for the repository-root `examples/` directory.
//!
//! Run them with, e.g.:
//!
//! ```text
//! cargo run --release -p uqsim-examples --example quickstart
//! cargo run --release -p uqsim-examples --example social_network
//! cargo run --release -p uqsim-examples --example power_management
//! cargo run --release -p uqsim-examples --example fanout_tail
//! cargo run --release -p uqsim-examples --example json_scenario
//! cargo run --release -p uqsim-examples --example social_mix
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
