//! Anchor crate for the repository-root `tests/` directory, plus shared
//! scenario helpers used by several integration suites.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use uqsim_core::builder::{ExecSpec, ScenarioBuilder};
use uqsim_core::client::ClientSpec;
use uqsim_core::dist::Distribution;
use uqsim_core::ids::{PathNodeId, StageId};
use uqsim_core::machine::{DvfsSpec, MachineSpec, NetworkSpec};
use uqsim_core::path::{PathNodeSpec, RequestType};
use uqsim_core::service::{ExecPath, ServiceModel};
use uqsim_core::stage::{QueueDiscipline, ServiceTimeModel, StageSpec};
use uqsim_core::time::SimDuration;
use uqsim_core::{SimResult, Simulator};

/// Builds a bare G/G/k station: one single-stage service on `servers`
/// cores, ideal (zero-cost) networking, and effectively unlimited client
/// concurrency — the setup queueing-theory closed forms apply to.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn station(
    qps: f64,
    service: Distribution,
    servers: usize,
    seed: u64,
    warmup: SimDuration,
) -> SimResult<Simulator> {
    let mut b = ScenarioBuilder::new(seed);
    b.warmup(warmup);
    let m = b.add_machine(MachineSpec {
        name: "m".into(),
        cores: servers,
        dvfs: DvfsSpec::fixed(2.6),
        network: NetworkSpec::passthrough(0.0),
        power: Default::default(),
    });
    let s = b.add_service(ServiceModel::new(
        "station",
        vec![StageSpec::new(
            "serve",
            QueueDiscipline::Single,
            ServiceTimeModel::per_job(service, 2.6),
        )],
        vec![ExecPath::new("serve", vec![StageId::from_raw(0)])],
    ));
    let i = b.add_instance("station0", s, m, servers, ExecSpec::Simple)?;
    let mut node = PathNodeSpec::request("serve", s, i);
    node.children = vec![PathNodeId::from_raw(1)];
    let sink = PathNodeSpec::client_sink(PathNodeId::from_raw(0));
    let ty = b.add_request_type(RequestType::new(
        "r",
        vec![node, sink],
        PathNodeId::from_raw(0),
    ))?;
    b.add_client(ClientSpec::open_loop("c", qps, 1_000_000, ty), vec![i]);
    b.build()
}

/// Erlang-C probability of waiting in an M/M/k queue with offered load
/// `a = lambda/mu` and `k` servers.
pub fn erlang_c(k: usize, a: f64) -> f64 {
    let mut term = 1.0; // a^0 / 0!
    let mut sum = term;
    for n in 1..k {
        term *= a / n as f64;
        sum += term;
    }
    let tail = term * a / k as f64 / (1.0 - a / k as f64);
    tail / (sum + tail)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_c_known_values() {
        // M/M/1: C = rho.
        assert!((erlang_c(1, 0.5) - 0.5).abs() < 1e-12);
        // M/M/2 at rho=0.5 (a=1): C = 1/3.
        assert!((erlang_c(2, 1.0) - 1.0 / 3.0).abs() < 1e-12);
    }
}
