//! Spec → scenario lowering: the deterministic topology generator.

use crate::spec::GenSpec;
use rand::rngs::SmallRng;
use rand::Rng;
use uqsim_apps::roles::Role;
use uqsim_core::client::ArrivalProcess;
use uqsim_core::config::{
    ClientConfig, ExecConfig, InstanceConfig, InstanceSelectConfig, LinkConfig, NodeTargetConfig,
    PathNodeConfig, PoolConfig, RequestTypeConfig, ScenarioConfig,
};
use uqsim_core::dist::Distribution;
use uqsim_core::error::SimResult;
use uqsim_core::machine::MachineSpec;
use uqsim_core::rng::RngFactory;

/// The `RngFactory` stream label generation draws from, indexed by replica.
/// A dedicated label guarantees adding the generator never perturbed the
/// simulation streams ("service", "arrival", "path", ...) of any scenario.
pub(crate) const GEN_STREAM: &str = "gen";

/// One sampled service, before lowering to config structs.
struct SvcShape {
    /// Service (and model) name, e.g. `r0-l1-s2`.
    name: String,
    /// Instance names, e.g. `r0-l1-s2-i0`.
    instances: Vec<String>,
    /// Cores per instance (from the layer).
    cores: usize,
    /// Worker threads per instance (0 = simple execution).
    threads: usize,
}

impl GenSpec {
    /// Generates the scenario for `seed`. Deterministic: identical
    /// `(spec, seed)` inputs produce identical output on any machine —
    /// `generate(s).to_json()` is byte-stable.
    ///
    /// # Errors
    ///
    /// Returns [`uqsim_core::error::SimError::Config`] if the spec is
    /// invalid.
    pub fn generate(&self, seed: u64) -> SimResult<ScenarioConfig> {
        self.validate()?;
        let factory = RngFactory::new(seed);
        let mut cfg = ScenarioConfig {
            seed,
            warmup_s: self.warmup_s,
            window_s: None,
            machines: Vec::new(),
            services: Vec::new(),
            instances: Vec::new(),
            pools: Vec::new(),
            request_types: Vec::new(),
            clients: Vec::new(),
        };
        for r in 0..self.replicas {
            // Each replica draws from its own stream: inserting or removing
            // a replica never reshapes its siblings.
            let mut rng = factory.stream(GEN_STREAM, r as u64);
            self.generate_replica(r, &mut rng, &mut cfg);
        }
        Ok(cfg)
    }

    /// Samples one replica's shape and appends its machines, services,
    /// instances, pools, request types, and clients to `cfg`.
    fn generate_replica(&self, r: usize, rng: &mut SmallRng, cfg: &mut ScenarioConfig) {
        // --- shape: services and instances per layer -------------------
        let mut layers: Vec<Vec<SvcShape>> = Vec::with_capacity(self.layers.len());
        for (l, layer) in self.layers.iter().enumerate() {
            let count = layer.services.sample(rng);
            let mut svcs = Vec::with_capacity(count);
            for s in 0..count {
                let name = format!("r{r}-l{l}-s{s}");
                let n_inst = layer.instances_per_service.sample(rng);
                let instances = (0..n_inst).map(|i| format!("{name}-i{i}")).collect();
                svcs.push(SvcShape {
                    name,
                    instances,
                    cores: layer.cores_per_instance,
                    threads: layer.threads_per_instance,
                });
            }
            layers.push(svcs);
        }

        // --- edges: sampled fan-out, then orphan repair ----------------
        // edges[l][s] lists the layer-(l+1) services that service (l, s)
        // calls. Every next-layer service is guaranteed at least one
        // parent, so the whole replica stays reachable from layer 0 (and
        // `split_cells`' request closure covers it in one cell).
        let mut edges: Vec<Vec<Vec<usize>>> = Vec::new();
        for l in 0..layers.len().saturating_sub(1) {
            let down = layers[l + 1].len();
            let mut per_svc: Vec<Vec<usize>> = Vec::with_capacity(layers[l].len());
            for _ in 0..layers[l].len() {
                let f = self.layers[l].fanout.sample(rng).min(down);
                per_svc.push(choose_distinct(rng, down, f));
            }
            let mut orphaned: Vec<bool> = vec![true; down];
            for children in &per_svc {
                for &c in children {
                    orphaned[c] = false;
                }
            }
            for (c, _) in orphaned.iter().enumerate().filter(|(_, o)| **o) {
                let parent = sample_range(rng, 0, layers[l].len() - 1);
                per_svc[parent].push(c);
            }
            edges.push(per_svc);
        }

        // --- service models and instances ------------------------------
        let first_new = cfg.instances.len();
        for (l, svcs) in layers.iter().enumerate() {
            let role = self.layers[l].role;
            for svc in svcs {
                cfg.services.push(role.service_model(&svc.name));
                for inst in &svc.instances {
                    cfg.instances.push(InstanceConfig {
                        name: inst.clone(),
                        service: svc.name.clone(),
                        machine: String::new(), // placed below
                        cores: svc.cores,
                        exec: if svc.threads == 0 {
                            ExecConfig::Simple
                        } else {
                            ExecConfig::MultiThreaded {
                                threads: svc.threads,
                                ctx_switch_s: 0.0,
                            }
                        },
                    });
                }
            }
        }

        // --- placement: deterministic first-fit onto replica machines --
        // Generated machines are testbed-style Xeons; 4 of `machine_cores`
        // serve network IRQs, the rest host instances.
        let usable = self.machine_cores - 4;
        let mut remaining: Vec<usize> = Vec::new();
        for inst in cfg.instances[first_new..].iter_mut() {
            let slot = match remaining.iter().position(|&free| free >= inst.cores) {
                Some(m) => m,
                None => {
                    let name = format!("r{r}-m{}", remaining.len());
                    cfg.machines
                        .push(MachineSpec::xeon(name, self.machine_cores));
                    remaining.push(usable);
                    remaining.len() - 1
                }
            };
            remaining[slot] -= inst.cores;
            inst.machine = format!("r{r}-m{slot}");
        }

        // --- pools: one per (caller instance, callee instance) edge ----
        if self.pool_size > 0 {
            for (l, per_svc) in edges.iter().enumerate() {
                for (s, children) in per_svc.iter().enumerate() {
                    for &c in children {
                        for up in &layers[l][s].instances {
                            for down in &layers[l + 1][c].instances {
                                cfg.pools.push(PoolConfig {
                                    up: up.clone(),
                                    down: down.clone(),
                                    size: self.pool_size,
                                });
                            }
                        }
                    }
                }
            }
        }

        // --- request types: one tree per front-end service -------------
        let roles: Vec<Role> = self.layers.iter().map(|l| l.role).collect();
        for (s, front) in layers[0].iter().enumerate() {
            let mut nodes: Vec<PathNodeConfig> = Vec::new();
            let mut counter = 0usize;
            let (root_entry, root_exit) =
                emit_visit(&layers, &edges, &roles, 0, s, &mut nodes, &mut counter);
            set_children(&mut nodes, &root_exit, vec!["sink".into()]);
            nodes.push(PathNodeConfig {
                name: "sink".into(),
                target: NodeTargetConfig::ClientSink,
                children: Vec::new(),
                link: LinkConfig::Reply { of: root_entry },
                block_thread_until: None,
                pin_thread_of: None,
                fan_in_policy: Default::default(),
            });
            let ty_name = format!("r{r}-t{s}");
            cfg.request_types.push(RequestTypeConfig {
                name: ty_name.clone(),
                nodes,
            });
            // One client per front-end service: the client connection
            // decides which root instance executes a request, so a client
            // must only mix request types rooted at its own service.
            cfg.clients.push(ClientConfig {
                name: format!("r{r}-c{s}"),
                connections: self.client.connections,
                arrivals: self
                    .client
                    .arrivals
                    .clone()
                    .unwrap_or_else(|| ArrivalProcess::poisson(self.client.qps_per_front)),
                mix: vec![(ty_name, 1.0)],
                roots: front.instances.clone(),
                request_size: Distribution::constant(512.0),
                closed_loop: None,
                timeout_s: self.client.timeout_s,
            });
        }
    }
}

/// Materializes the visit of service `(l, s)` as path nodes, in pre-order.
///
/// A leaf visit is a single node running the role's leaf path. A non-leaf
/// visit is an entry node (forwarding to each child's entry) plus a join
/// node on the same instance that merges the children's replies via their
/// entry connections — the idiom of the hand-written scenarios. Returns
/// `(entry, exit)` node names; the caller wires `exit` to its own join
/// (or to the sink for the root).
fn emit_visit(
    layers: &[Vec<SvcShape>],
    edges: &[Vec<Vec<usize>>],
    roles: &[Role],
    l: usize,
    s: usize,
    nodes: &mut Vec<PathNodeConfig>,
    counter: &mut usize,
) -> (String, String) {
    let svc = &layers[l][s];
    let role = roles[l];
    let id = *counter;
    *counter += 1;
    let select = InstanceSelectConfig::RoundRobin {
        names: svc.instances.clone(),
    };
    let children: &[usize] = edges.get(l).map(|e| e[s].as_slice()).unwrap_or(&[]);
    if children.is_empty() {
        let name = format!("n{id}");
        nodes.push(PathNodeConfig {
            name: name.clone(),
            target: NodeTargetConfig::Service {
                service: svc.name.clone(),
                instance: select,
                exec_path: Some(role.leaf_path().into()),
            },
            children: Vec::new(),
            link: LinkConfig::Request,
            block_thread_until: None,
            pin_thread_of: None,
            fan_in_policy: Default::default(),
        });
        return (name.clone(), name);
    }
    let entry = format!("n{id}");
    let join = format!("n{id}j");
    nodes.push(PathNodeConfig {
        name: entry.clone(),
        target: NodeTargetConfig::Service {
            service: svc.name.clone(),
            instance: select,
            exec_path: Some(role.entry_path().into()),
        },
        children: Vec::new(), // child entries, filled below
        link: LinkConfig::Request,
        block_thread_until: None,
        pin_thread_of: None,
        fan_in_policy: Default::default(),
    });
    let entry_pos = nodes.len() - 1;
    let mut child_entries = Vec::with_capacity(children.len());
    let mut via = Vec::with_capacity(children.len());
    for &c in children {
        let (ce, cx) = emit_visit(layers, edges, roles, l + 1, c, nodes, counter);
        set_children(nodes, &cx, vec![join.clone()]);
        via.push((cx, ce.clone()));
        child_entries.push(ce);
    }
    nodes[entry_pos].children = child_entries;
    nodes.push(PathNodeConfig {
        name: join.clone(),
        target: NodeTargetConfig::Service {
            service: svc.name.clone(),
            instance: InstanceSelectConfig::SameAsNode {
                node: entry.clone(),
            },
            exec_path: Some(role.reply_path().into()),
        },
        children: Vec::new(), // parent join or sink, filled by caller
        link: LinkConfig::ReplyVia { entries: via },
        block_thread_until: None,
        pin_thread_of: None,
        fan_in_policy: Default::default(),
    });
    (entry, join)
}

/// Points the named node at `children` (node names are unique per type).
fn set_children(nodes: &mut [PathNodeConfig], name: &str, children: Vec<String>) {
    let node = nodes
        .iter_mut()
        .find(|n| n.name == name)
        .expect("emit_visit returned an existing node");
    node.children = children;
}

/// Uniform draw from `min..=max` using the vendored rand's `f64` draw.
fn sample_range(rng: &mut SmallRng, min: usize, max: usize) -> usize {
    if min >= max {
        return min;
    }
    let span = (max - min + 1) as f64;
    (min + (rng.gen::<f64>() * span) as usize).min(max)
}

/// `k` distinct draws from `0..n` (partial Fisher–Yates), returned sorted
/// so generated children lists read in layer order.
fn choose_distinct(rng: &mut SmallRng, n: usize, k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let k = k.min(n);
    for i in 0..k {
        let j = i + sample_range(rng, 0, n - 1 - i);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

/// Headline sizes of a generated (or any) scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenSummary {
    /// Distinct service models.
    pub services: usize,
    /// Deployed instances.
    pub instances: usize,
    /// Machines.
    pub machines: usize,
    /// Connection pools.
    pub pools: usize,
    /// Request types.
    pub request_types: usize,
    /// Clients.
    pub clients: usize,
}

impl std::fmt::Display for GenSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} services, {} instances, {} machines, {} pools, {} request types, {} clients",
            self.services,
            self.instances,
            self.machines,
            self.pools,
            self.request_types,
            self.clients
        )
    }
}

/// Counts the headline sizes of a scenario.
pub fn summarize(cfg: &ScenarioConfig) -> GenSummary {
    GenSummary {
        services: cfg.services.len(),
        instances: cfg.instances.len(),
        machines: cfg.machines.len(),
        pools: cfg.pools.len(),
        request_types: cfg.request_types.len(),
        clients: cfg.clients.len(),
    }
}
