//! The declarative generation spec (`gen.json`).

use serde::{Deserialize, Serialize};
use std::path::Path;
use uqsim_apps::roles::Role;
use uqsim_core::client::ArrivalProcess;
use uqsim_core::error::{SimError, SimResult};

/// A small integer distribution for topology shape parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum CountDist {
    /// Always `n`.
    Fixed {
        /// The count.
        n: usize,
    },
    /// Uniform over `min..=max` (inclusive).
    Range {
        /// Smallest value.
        min: usize,
        /// Largest value.
        max: usize,
    },
}

impl CountDist {
    /// Always `n`.
    pub fn fixed(n: usize) -> Self {
        CountDist::Fixed { n }
    }

    /// Uniform over `min..=max`.
    pub fn range(min: usize, max: usize) -> Self {
        CountDist::Range { min, max }
    }

    /// Smallest value this distribution can produce.
    pub fn min(&self) -> usize {
        match self {
            CountDist::Fixed { n } => *n,
            CountDist::Range { min, .. } => *min,
        }
    }

    /// Largest value this distribution can produce.
    pub fn max(&self) -> usize {
        match self {
            CountDist::Fixed { n } => *n,
            CountDist::Range { max, .. } => *max,
        }
    }

    /// Draws a value. The vendored `rand` exposes only uniform primitives,
    /// so the inclusive integer range is sampled by scaling a `f64` draw.
    pub(crate) fn sample(&self, rng: &mut rand::rngs::SmallRng) -> usize {
        match self {
            CountDist::Fixed { n } => *n,
            CountDist::Range { min, max } => {
                if min >= max {
                    return *min;
                }
                let span = (max - min + 1) as f64;
                (*min + (rand::Rng::gen::<f64>(rng) * span) as usize).min(*max)
            }
        }
    }

    fn validate(&self, what: &str) -> Result<(), String> {
        match self {
            CountDist::Fixed { n } if *n == 0 => Err(format!("{what}: fixed count must be >= 1")),
            CountDist::Range { min, max } if *min == 0 => {
                let _ = max;
                Err(format!("{what}: range min must be >= 1"))
            }
            CountDist::Range { min, max } if min > max => {
                Err(format!("{what}: range min {min} > max {max}"))
            }
            _ => Ok(()),
        }
    }
}

/// One layer of the generated service graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Which calibrated model template the layer's services clone.
    pub role: Role,
    /// How many services this layer has (sampled per replica).
    pub services: CountDist,
    /// How many instances each service deploys (sampled per service).
    pub instances_per_service: CountDist,
    /// Dedicated cores per instance.
    pub cores_per_instance: usize,
    /// Worker threads per instance; `0` selects the simple
    /// one-worker-per-core execution model.
    #[serde(default)]
    pub threads_per_instance: usize,
    /// Downstream fan-out: how many distinct next-layer services each
    /// service calls (sampled per service; capped at the next layer's
    /// size; ignored on the last layer).
    pub fanout: CountDist,
}

/// Client-side load for each generated front-end service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientGen {
    /// Open connections per client.
    pub connections: usize,
    /// Offered load per front-end service, queries per second. Each
    /// front-end service gets one client driving its request type at
    /// this rate.
    pub qps_per_front: f64,
    /// Arrival process override. When set it is used verbatim for every
    /// client (e.g. an MMPP or flash-crowd process); when absent each
    /// client is Poisson at [`qps_per_front`](Self::qps_per_front).
    #[serde(default)]
    pub arrivals: Option<ArrivalProcess>,
    /// Client-side timeout, seconds.
    #[serde(default)]
    pub timeout_s: Option<f64>,
}

/// A complete generation spec: the input of `uqsim gen`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenSpec {
    /// Human-readable name (used in documentation and reports only).
    pub name: String,
    /// Default generation seed; `uqsim gen --seed` overrides it.
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// Independent copies of the sampled graph. Replicas share nothing —
    /// `split_cells` yields one cell per replica.
    pub replicas: usize,
    /// Total cores per generated machine (4 of which serve network IRQs,
    /// matching the paper's testbed Xeons).
    pub machine_cores: usize,
    /// Connection-pool size for each (caller instance, callee instance)
    /// pair along graph edges; `0` disables pools (unbounded ephemeral
    /// connections).
    #[serde(default)]
    pub pool_size: usize,
    /// Simulated warmup excluded from statistics, seconds.
    #[serde(default = "default_warmup")]
    pub warmup_s: f64,
    /// The layers, front ends first. Layer 0's services root the request
    /// types; the last layer's services are the leaves.
    pub layers: Vec<LayerSpec>,
    /// Client load.
    pub client: ClientGen,
}

fn default_seed() -> u64 {
    1
}
fn default_warmup() -> f64 {
    0.5
}

impl GenSpec {
    /// Parses and validates a spec from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] on parse or validation failure.
    pub fn from_json(json: &str) -> SimResult<Self> {
        let spec: GenSpec = serde_json::from_str(json).map_err(|e| SimError::Config {
            source_name: "gen spec".into(),
            detail: e.to_string(),
        })?;
        spec.validate()?;
        Ok(spec)
    }

    /// Loads and validates a spec from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns I/O, parse, or validation errors.
    pub fn from_file(path: &Path) -> SimResult<Self> {
        let text = std::fs::read_to_string(path)?;
        let spec: GenSpec = serde_json::from_str(&text).map_err(|e| SimError::Config {
            source_name: path.display().to_string(),
            detail: e.to_string(),
        })?;
        spec.validate()?;
        Ok(spec)
    }

    /// Checks the spec for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] naming the offending field.
    pub fn validate(&self) -> SimResult<()> {
        let fail = |detail: String| {
            Err(SimError::Config {
                source_name: format!("gen spec {}", self.name),
                detail,
            })
        };
        if self.replicas == 0 {
            return fail("replicas must be >= 1".into());
        }
        if self.layers.is_empty() {
            return fail("at least one layer is required".into());
        }
        if self.client.qps_per_front.is_nan() || self.client.qps_per_front <= 0.0 {
            return fail("client.qps_per_front must be > 0".into());
        }
        if self.client.connections == 0 {
            return fail("client.connections must be >= 1".into());
        }
        if let Some(arr) = &self.client.arrivals {
            if let Err(e) = arr.validate() {
                return fail(format!("client.arrivals: {e}"));
            }
        }
        if self.warmup_s.is_nan() || self.warmup_s < 0.0 {
            return fail("warmup_s must be >= 0".into());
        }
        for (l, layer) in self.layers.iter().enumerate() {
            layer
                .services
                .validate(&format!("layer {l} services"))
                .or_else(&fail)?;
            layer
                .instances_per_service
                .validate(&format!("layer {l} instances_per_service"))
                .or_else(&fail)?;
            if l + 1 < self.layers.len() {
                layer
                    .fanout
                    .validate(&format!("layer {l} fanout"))
                    .or_else(&fail)?;
            }
            if layer.cores_per_instance == 0 {
                return fail(format!("layer {l}: cores_per_instance must be >= 1"));
            }
            if layer.threads_per_instance > 64 {
                return fail(format!(
                    "layer {l}: threads_per_instance {} exceeds the engine's 64-thread limit",
                    layer.threads_per_instance
                ));
            }
            // Generated machines model the testbed Xeons: 4 cores serve IRQs.
            if self.machine_cores < layer.cores_per_instance + 4 {
                return fail(format!(
                    "machine_cores {} cannot host a layer-{l} instance of {} cores \
                     plus 4 IRQ cores",
                    self.machine_cores, layer.cores_per_instance
                ));
            }
        }
        // Worst-case request-tree size: product of maximum fan-outs. Keep it
        // bounded so a spec typo cannot generate a million-node path.json.
        let mut visits: u64 = 1;
        let mut total: u64 = 1;
        for layer in self.layers.iter().take(self.layers.len().saturating_sub(1)) {
            visits = visits.saturating_mul(layer.fanout.max() as u64);
            total = total.saturating_add(visits);
        }
        if total > 2048 {
            return fail(format!(
                "maximum fan-outs compound to {total} service visits per request \
                 (limit 2048); lower the fanout or depth"
            ));
        }
        Ok(())
    }

    /// A ready-to-run example spec: 2 replicas of a 4-layer
    /// front/logic/cache/db application. Used in documentation and tests.
    pub fn example() -> Self {
        GenSpec {
            name: "example".into(),
            seed: 1,
            replicas: 2,
            machine_cores: 16,
            pool_size: 8,
            warmup_s: 0.0,
            layers: vec![
                LayerSpec {
                    role: Role::Front,
                    services: CountDist::fixed(1),
                    instances_per_service: CountDist::fixed(2),
                    cores_per_instance: 4,
                    threads_per_instance: 0,
                    fanout: CountDist::range(1, 2),
                },
                LayerSpec {
                    role: Role::Logic,
                    services: CountDist::range(2, 3),
                    instances_per_service: CountDist::fixed(2),
                    cores_per_instance: 4,
                    threads_per_instance: 8,
                    fanout: CountDist::range(1, 2),
                },
                LayerSpec {
                    role: Role::Cache,
                    services: CountDist::fixed(2),
                    instances_per_service: CountDist::fixed(2),
                    cores_per_instance: 2,
                    threads_per_instance: 0,
                    fanout: CountDist::fixed(1),
                },
                LayerSpec {
                    role: Role::Db,
                    services: CountDist::fixed(1),
                    instances_per_service: CountDist::fixed(2),
                    cores_per_instance: 4,
                    threads_per_instance: 0,
                    fanout: CountDist::fixed(1),
                },
            ],
            client: ClientGen {
                connections: 32,
                qps_per_front: 2000.0,
                arrivals: None,
                timeout_s: None,
            },
        }
    }
}
