//! # uqsim-synth
//!
//! Seeded workload synthesis for the µqSim reproduction: DeathStarBench-class
//! layered microservice topologies plus the scenario plumbing to run them.
//!
//! The paper evaluates µqSim on hand-written applications of a few services;
//! studying simulator *scalability* and partitioned execution needs much
//! larger clusters than anyone wants to author by hand. This crate grows
//! them from a compact, declarative [`GenSpec`]:
//!
//! * **Layers** of services with a [`Role`](uqsim_apps::roles::Role) each —
//!   NGINX-style front ends, Thrift-style logic tiers, memcached/MongoDB
//!   leaves — reusing the calibrated models in `uqsim-apps`.
//! * **Sampled shape**: per-layer service counts, per-service instance
//!   counts, and fan-out degrees drawn from [`CountDist`]s.
//! * **Replicas**: independent copies of the sampled graph, each with its
//!   own machines, instances, pools, request types, and clients — so
//!   `split_cells` partitions a generated cluster into exactly one cell
//!   per replica.
//!
//! Generation is **deterministic per `(spec, seed)`**: the same spec and
//! seed always produce byte-identical scenario JSON, on any machine. All
//! randomness comes from dedicated `RngFactory` streams (`"gen"`, indexed
//! by replica), so generated scenarios never perturb the simulation
//! streams of existing configs.
//!
//! ## Example
//!
//! ```
//! use uqsim_synth::GenSpec;
//!
//! let spec = GenSpec::example();
//! let cfg = spec.generate(7).unwrap();
//! assert_eq!(cfg.to_json(), spec.generate(7).unwrap().to_json());
//! let mut sim = cfg.build().unwrap();
//! sim.run_for(uqsim_core::time::SimDuration::from_millis(50));
//! assert!(sim.latency_summary().count > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod gen;
mod spec;

pub use gen::{summarize, GenSummary};
pub use spec::{ClientGen, CountDist, GenSpec, LayerSpec};
