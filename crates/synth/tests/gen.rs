//! Generator contract tests: determinism, validity of the emitted
//! scenarios, replica isolation, and spec validation.

use proptest::prelude::*;
use uqsim_apps::roles::Role;
use uqsim_core::partition::split_cells;
use uqsim_core::time::SimDuration;
use uqsim_synth::{summarize, ClientGen, CountDist, GenSpec, LayerSpec};

fn small_spec() -> GenSpec {
    GenSpec::example()
}

// ---------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------

/// Identical (spec, seed) pairs produce byte-identical scenario JSON —
/// the property `uqsim gen` and the CI byte-compare rely on.
#[test]
fn same_spec_and_seed_is_byte_identical() {
    let spec = small_spec();
    let a = spec.generate(7).unwrap().to_json();
    let b = spec.generate(7).unwrap().to_json();
    assert_eq!(a, b);
}

/// Different seeds reshape the sampled topology.
#[test]
fn different_seeds_diverge() {
    let spec = small_spec();
    let a = spec.generate(1).unwrap().to_json();
    let b = spec.generate(2).unwrap().to_json();
    assert_ne!(a, b, "seeds 1 and 2 should sample different shapes");
}

/// Replicas draw from per-replica rng streams: replica r's shape in an
/// N-replica scenario matches replica r's shape in an (N+1)-replica
/// scenario (adding replicas never reshapes existing ones).
#[test]
fn replicas_are_stream_independent() {
    let mut spec = small_spec();
    spec.replicas = 2;
    let two = spec.generate(5).unwrap();
    spec.replicas = 3;
    let three = spec.generate(5).unwrap();
    let prefix = |cfg: &uqsim_core::config::ScenarioConfig, r: &str| {
        cfg.services
            .iter()
            .filter(|s| s.name.starts_with(r))
            .map(|s| s.name.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(prefix(&two, "r0-"), prefix(&three, "r0-"));
    assert_eq!(prefix(&two, "r1-"), prefix(&three, "r1-"));
}

// ---------------------------------------------------------------------
// Validity of emitted scenarios
// ---------------------------------------------------------------------

/// The example spec builds into a runnable simulator that completes
/// requests.
#[test]
fn generated_scenario_builds_and_runs() {
    let cfg = small_spec().generate(3).unwrap();
    let mut sim = cfg.build().expect("generated scenario must build");
    sim.run_for(SimDuration::from_millis(100));
    assert!(sim.completed() > 0, "requests must flow end to end");
    let stats = sim.latency_summary();
    assert!(stats.count > 0 && stats.p99 > 0.0);
}

/// Orphan repair keeps every generated service reachable: each service
/// appears in at least one request-type node, so `split_cells`' request
/// closure covers the whole replica.
#[test]
fn every_service_is_reachable_from_a_request_type() {
    let cfg = small_spec().generate(11).unwrap();
    for svc in &cfg.services {
        let visited = cfg.request_types.iter().any(|t| {
            t.nodes.iter().any(|n| match &n.target {
                uqsim_core::config::NodeTargetConfig::Service { service, .. } => {
                    service == &svc.name
                }
                _ => false,
            })
        });
        assert!(visited, "service {} is unreachable", svc.name);
    }
}

/// Replicas share nothing, so the partitioner finds exactly one cell per
/// replica.
#[test]
fn split_cells_yields_one_cell_per_replica() {
    let mut spec = small_spec();
    spec.replicas = 4;
    let cfg = spec.generate(9).unwrap();
    let cells = split_cells(&cfg).unwrap();
    assert_eq!(cells.len(), 4, "one cell per replica");
    for cell in &cells {
        assert!(!cell.config.clients.is_empty());
        cell.config
            .build()
            .expect("each cell must be self-contained");
    }
}

/// The Table I directory round-trip (`write_dir` → `from_dir`) preserves
/// the generated scenario exactly — what `uqsim gen --out` writes is what
/// `uqsim run --config-dir` will simulate.
#[test]
fn write_dir_round_trips() {
    let cfg = small_spec().generate(13).unwrap();
    let dir = std::env::temp_dir().join(format!("uqsim-synth-roundtrip-{}", std::process::id()));
    cfg.write_dir(&dir).unwrap();
    let back = uqsim_core::config::ScenarioConfig::from_dir(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(cfg.to_json(), back.to_json());
}

/// Instance placement respects machine capacity: per machine, the summed
/// instance cores never exceed total cores minus the 4 IRQ cores.
#[test]
fn placement_respects_machine_capacity() {
    let spec = small_spec();
    let cfg = spec.generate(17).unwrap();
    for m in &cfg.machines {
        let used: usize = cfg
            .instances
            .iter()
            .filter(|i| i.machine == m.name)
            .map(|i| i.cores)
            .sum();
        assert!(
            used + 4 <= m.cores,
            "machine {} overcommitted: {used} instance cores on {} total",
            m.name,
            m.cores
        );
    }
    let s = summarize(&cfg);
    assert_eq!(s.clients, s.request_types, "one client per front service");
}

// ---------------------------------------------------------------------
// Spec validation
// ---------------------------------------------------------------------

#[test]
fn spec_validation_catches_bad_inputs() {
    let mut spec = small_spec();
    spec.machine_cores = 6; // front layer wants 4 cores + 4 IRQ cores
    let err = spec.validate().unwrap_err().to_string();
    assert!(err.contains("machine_cores"), "{err}");

    let mut spec = small_spec();
    spec.layers[1].threads_per_instance = 65;
    let err = spec.validate().unwrap_err().to_string();
    assert!(err.contains("64-thread"), "{err}");

    let mut spec = small_spec();
    spec.replicas = 0;
    assert!(spec.validate().is_err());

    let mut spec = small_spec();
    spec.layers[0].services = CountDist::range(3, 2);
    let err = spec.validate().unwrap_err().to_string();
    assert!(err.contains("min 3 > max 2"), "{err}");

    // Compounding fan-outs are rejected before they generate a
    // million-node path.json.
    let mut spec = small_spec();
    for l in &mut spec.layers {
        l.fanout = CountDist::fixed(16);
    }
    let err = spec.validate().unwrap_err().to_string();
    assert!(err.contains("2048"), "{err}");
}

#[test]
fn spec_json_round_trips() {
    let spec = small_spec();
    let json = serde_json::to_string_pretty(&serde_json::to_value(&spec).unwrap()).unwrap();
    let back = GenSpec::from_json(&json).unwrap();
    assert_eq!(spec, back);
}

// ---------------------------------------------------------------------
// Randomized: arbitrary small specs stay valid and deterministic
// ---------------------------------------------------------------------

fn arb_spec(
    replicas: usize,
    depth: usize,
    svc_max: usize,
    inst_max: usize,
    fan_max: usize,
) -> GenSpec {
    let roles = [Role::Front, Role::Logic, Role::Cache, Role::Db];
    let layers = (0..depth)
        .map(|l| LayerSpec {
            role: roles[l.min(roles.len() - 1)],
            services: CountDist::range(1, svc_max),
            instances_per_service: CountDist::range(1, inst_max),
            cores_per_instance: 2,
            threads_per_instance: if l % 2 == 0 { 0 } else { 4 },
            fanout: CountDist::range(1, fan_max),
        })
        .collect();
    GenSpec {
        name: "prop".into(),
        seed: 1,
        replicas,
        machine_cores: 8,
        pool_size: 4,
        warmup_s: 0.0,
        layers,
        client: ClientGen {
            connections: 8,
            qps_per_front: 500.0,
            arrivals: None,
            timeout_s: None,
        },
    }
}

proptest! {
    /// Any sampled spec generates deterministically, builds, and splits
    /// into one cell per replica.
    #[test]
    fn random_specs_generate_valid_scenarios(
        replicas in 1usize..3,
        depth in 1usize..4,
        svc_max in 1usize..4,
        inst_max in 1usize..3,
        fan_max in 1usize..3,
        seed in any::<u64>(),
    ) {
        let spec = arb_spec(replicas, depth, svc_max, inst_max, fan_max);
        let cfg = spec.generate(seed).unwrap();
        prop_assert_eq!(cfg.to_json(), spec.generate(seed).unwrap().to_json());
        cfg.build().expect("generated scenario must build");
        // Replicas never merge into one cell (a replica whose sampled
        // graph happens to be disconnected may split further — that only
        // adds parallelism).
        let cells = split_cells(&cfg).unwrap();
        prop_assert!(cells.len() >= spec.replicas, "{} cells for {} replicas", cells.len(), spec.replicas);
        for cell in &cells {
            let mut reps: Vec<&str> = cell
                .machines
                .iter()
                .map(|&m| cfg.machines[m].name.split('-').next().unwrap())
                .collect();
            reps.dedup();
            prop_assert_eq!(reps.len(), 1, "cell spans replicas: {:?}", reps);
        }
    }
}
