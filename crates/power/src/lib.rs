//! # uqsim-power
//!
//! The QoS-aware power-management algorithm of the µqSim paper (§V-B,
//! Algorithm 1), implemented as a
//! [`Controller`] that plugs into the
//! simulator.
//!
//! The algorithm divides the end-to-end tail-latency space below the QoS
//! target into *buckets*. Each bucket accumulates per-tier latency tuples
//! observed while the end-to-end QoS was met, and a preference weight that
//! grows on success and shrinks on violation. At runtime the manager picks
//! a tuple from a (preference-weighted) bucket as the **per-tier QoS
//! target**: if the end-to-end tail is met it slows down *at most one* tier
//! — the one with the most latency slack — and if QoS is violated it speeds
//! up every tier above its per-tier target and remembers the failing tuple
//! so it is never re-inserted.
//!
//! ```
//! use uqsim_power::{PowerManager, PowerManagerConfig};
//! use uqsim_core::ids::InstanceId;
//! use uqsim_core::time::SimDuration;
//!
//! let cfg = PowerManagerConfig {
//!     qos_target_s: 5e-3,
//!     interval: SimDuration::from_millis(100),
//!     tiers: vec![InstanceId::from_raw(0), InstanceId::from_raw(1)],
//!     levels_ghz: vec![1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.4, 2.6],
//!     ..PowerManagerConfig::default()
//! };
//! let (manager, trace) = PowerManager::new(cfg);
//! // sim.add_controller(Box::new(manager));
//! // ... after the run: trace.violation_rate(), trace.entries()
//! # let _ = trace;
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::Rng;
use std::sync::{Arc, Mutex};
use uqsim_core::controller::{ControlAction, Controller, TickStats};
use uqsim_core::ids::InstanceId;
use uqsim_core::rng::RngFactory;
use uqsim_core::time::{SimDuration, SimTime};

/// Configuration of the power manager.
#[derive(Debug, Clone)]
pub struct PowerManagerConfig {
    /// End-to-end p99 QoS target, seconds (the paper uses 5 ms).
    pub qos_target_s: f64,
    /// Decision interval (the paper evaluates 0.1 s, 0.5 s, 1 s).
    pub interval: SimDuration,
    /// The tiers under control, in path order.
    pub tiers: Vec<InstanceId>,
    /// Allowed DVFS levels, GHz ascending (shared by all tiers).
    pub levels_ghz: Vec<f64>,
    /// Number of latency buckets below the QoS target.
    pub num_buckets: usize,
    /// Re-pick the target bucket after this many consecutive met-QoS
    /// cycles (Algorithm 1 line 10).
    pub explore_every: u32,
    /// Minimum time between slow-down probes. Algorithm 1 "periodically
    /// selects a tier with high latency slack to slow down" — the probing
    /// period is a property of the policy, not of the decision interval,
    /// so short intervals gain faster *recovery* without extra risk.
    pub slowdown_period: SimDuration,
    /// Minimum time between *exploratory* probes: when no tier shows
    /// positive slack, the manager still periodically "tests whether more
    /// aggressive power management settings are acceptable" (§V-B) by
    /// stepping down the tier with the lowest observed tail. Failed probes
    /// are how the failing-tuple lists get populated.
    pub probe_period: SimDuration,
    /// Maximum tuples retained per bucket.
    pub max_tuples: usize,
    /// RNG seed for bucket selection.
    pub seed: u64,
}

impl Default for PowerManagerConfig {
    fn default() -> Self {
        PowerManagerConfig {
            qos_target_s: 5e-3,
            interval: SimDuration::from_millis(100),
            tiers: Vec::new(),
            levels_ghz: vec![
                1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.9, 2.0, 2.1, 2.2, 2.3, 2.4, 2.5, 2.6,
            ],
            num_buckets: 10,
            explore_every: 8,
            slowdown_period: SimDuration::from_secs(1),
            probe_period: SimDuration::from_secs(5),
            max_tuples: 64,
            seed: 1,
        }
    }
}

/// One decision-interval record.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTraceEntry {
    /// Decision time.
    pub time: SimTime,
    /// End-to-end p99 over the interval, seconds.
    pub e2e_p99: f64,
    /// Per-tier p99 over the interval, seconds (same order as `tiers`).
    pub per_tier_p99: Vec<f64>,
    /// Per-tier frequency chosen *after* this decision, GHz.
    pub freqs_ghz: Vec<f64>,
    /// Whether this interval violated the QoS target.
    pub violated: bool,
    /// Requests observed in the interval.
    pub samples: usize,
}

/// Shared handle to the decision trace, usable after the simulation run.
///
/// `Arc<Mutex<..>>` rather than `Rc<RefCell<..>>` so a boxed
/// [`PowerManager`] stays [`Send`] and whole simulations can run on the
/// parallel runner's worker threads; within one simulation the lock is
/// uncontended.
#[derive(Debug, Clone)]
pub struct TraceHandle(Arc<Mutex<Vec<PowerTraceEntry>>>);

impl TraceHandle {
    /// A snapshot of all recorded entries.
    pub fn entries(&self) -> Vec<PowerTraceEntry> {
        self.0.lock().expect("trace lock").clone()
    }

    /// Fraction of non-empty intervals that violated QoS (Table III).
    pub fn violation_rate(&self) -> f64 {
        let entries = self.0.lock().expect("trace lock");
        let counted: Vec<_> = entries.iter().filter(|e| e.samples > 0).collect();
        if counted.is_empty() {
            return 0.0;
        }
        counted.iter().filter(|e| e.violated).count() as f64 / counted.len() as f64
    }
}

#[derive(Debug, Clone, Default)]
struct Bucket {
    preference: f64,
    tuples: Vec<Vec<f64>>,
    failing: Vec<Vec<f64>>,
}

/// The Algorithm 1 controller.
#[derive(Debug)]
pub struct PowerManager {
    cfg: PowerManagerConfig,
    rng: SmallRng,
    buckets: Vec<Bucket>,
    /// `(bucket, per-tier QoS tuple)` currently targeted.
    target: Option<(usize, Vec<f64>)>,
    /// Current per-tier frequency, GHz.
    freqs: Vec<f64>,
    met_cycles: u32,
    last_slowdown: SimTime,
    last_probe: SimTime,
    trace: Arc<Mutex<Vec<PowerTraceEntry>>>,
}

/// True if `a` is component-wise at least as relaxed as `b`.
fn no_tighter(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x >= y)
}

impl PowerManager {
    /// Creates a manager and the trace handle for post-run analysis.
    ///
    /// # Panics
    ///
    /// Panics if `tiers` or `levels_ghz` is empty, or `num_buckets` is 0.
    pub fn new(cfg: PowerManagerConfig) -> (PowerManager, TraceHandle) {
        assert!(
            !cfg.tiers.is_empty(),
            "power manager needs at least one tier"
        );
        assert!(
            !cfg.levels_ghz.is_empty(),
            "power manager needs DVFS levels"
        );
        assert!(cfg.num_buckets > 0, "need at least one bucket");
        let trace = Arc::new(Mutex::new(Vec::new()));
        let max = *cfg.levels_ghz.last().expect("levels non-empty");
        let manager = PowerManager {
            rng: RngFactory::new(cfg.seed).stream("power", 0),
            buckets: vec![
                Bucket {
                    preference: 1.0,
                    tuples: Vec::new(),
                    failing: Vec::new()
                };
                cfg.num_buckets
            ],
            target: None,
            freqs: vec![max; cfg.tiers.len()],
            met_cycles: 0,
            last_slowdown: SimTime::ZERO,
            last_probe: SimTime::ZERO,
            trace: Arc::clone(&trace),
            cfg,
        };
        (manager, TraceHandle(trace))
    }

    fn bucket_of(&self, e2e_p99: f64) -> usize {
        let frac = (e2e_p99 / self.cfg.qos_target_s).clamp(0.0, 0.999_999);
        (frac * self.cfg.num_buckets as f64) as usize
    }

    /// Weighted-preference choice among buckets with recorded tuples.
    fn choose_target(&mut self) {
        let total: f64 = self
            .buckets
            .iter()
            .filter(|b| !b.tuples.is_empty())
            .map(|b| b.preference)
            .sum();
        if total <= 0.0 {
            self.target = None;
            return;
        }
        let mut pick = self.rng.gen::<f64>() * total;
        for (i, b) in self.buckets.iter().enumerate() {
            if b.tuples.is_empty() {
                continue;
            }
            if pick < b.preference {
                let t = self.rng.gen_range(0..b.tuples.len());
                self.target = Some((i, b.tuples[t].clone()));
                return;
            }
            pick -= b.preference;
        }
        self.target = None;
    }

    fn step_down(&self, f: f64) -> f64 {
        self.cfg
            .levels_ghz
            .iter()
            .copied()
            .rev()
            .find(|&l| l < f - 1e-9)
            .unwrap_or(f)
    }

    fn step_up(&self, f: f64) -> f64 {
        self.cfg
            .levels_ghz
            .iter()
            .copied()
            .find(|&l| l > f + 1e-9)
            .unwrap_or(f)
    }

    /// The per-tier latency targets in effect (falls back to an equal split
    /// of the end-to-end budget before any bucket has data).
    fn tier_targets(&self) -> Vec<f64> {
        match &self.target {
            Some((_, t)) => t.clone(),
            None => {
                let share = self.cfg.qos_target_s / self.cfg.tiers.len() as f64;
                vec![share; self.cfg.tiers.len()]
            }
        }
    }
}

impl Controller for PowerManager {
    fn first_tick(&self) -> SimDuration {
        self.cfg.interval
    }

    fn tick(&mut self, now: SimTime, stats: &TickStats) -> (Vec<ControlAction>, SimDuration) {
        let e2e = stats.end_to_end;
        let per_tier: Vec<f64> = self
            .cfg
            .tiers
            .iter()
            .map(|t| stats.per_instance[t.index()].p99)
            .collect();

        if e2e.count == 0 {
            // No traffic this interval: hold everything.
            self.trace
                .lock()
                .expect("trace lock")
                .push(PowerTraceEntry {
                    time: now,
                    e2e_p99: 0.0,
                    per_tier_p99: per_tier,
                    freqs_ghz: self.freqs.clone(),
                    violated: false,
                    samples: 0,
                });
            return (Vec::new(), self.cfg.interval);
        }

        let violated = e2e.p99 >= self.cfg.qos_target_s;
        let mut actions = Vec::new();
        if !violated {
            // --- QoS met (Algorithm 1 lines 5–14) -----------------------
            let b = self.bucket_of(e2e.p99);
            let bucket = &mut self.buckets[b];
            if !bucket.failing.iter().any(|f| no_tighter(&per_tier, f)) {
                bucket.tuples.push(per_tier.clone());
                if bucket.tuples.len() > self.cfg.max_tuples {
                    bucket.tuples.remove(0);
                }
            }
            bucket.preference = (bucket.preference * 1.15).min(100.0);
            self.met_cycles += 1;
            if self.met_cycles >= self.cfg.explore_every {
                self.met_cycles = 0;
                self.choose_target();
            }
            // Slow down at most one tier: the one with the most slack —
            // probing at most once per slowdown period.
            let may_probe = now.saturating_since(self.last_slowdown) >= self.cfg.slowdown_period
                || self.last_slowdown == SimTime::ZERO;
            let targets = self.tier_targets();
            let mut best: Option<(usize, f64)> = None;
            for (i, (&obs, &tgt)) in per_tier.iter().zip(&targets).enumerate() {
                let slack = tgt - obs;
                if slack > 0.0
                    && self.freqs[i] > self.cfg.levels_ghz[0] + 1e-9
                    && best.map(|(_, s)| slack > s).unwrap_or(true)
                {
                    best = Some((i, slack));
                }
            }
            if !may_probe {
                best = None;
            } else if best.is_none()
                && now.saturating_since(self.last_probe) >= self.cfg.probe_period
            {
                // Exploratory probe: no slack anywhere, but periodically
                // test a more aggressive setting on the least-loaded tier.
                let candidate = per_tier
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| self.freqs[*i] > self.cfg.levels_ghz[0] + 1e-9)
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("latencies are finite"))
                    .map(|(i, _)| i);
                if let Some(i) = candidate {
                    self.last_probe = now;
                    best = Some((i, 0.0));
                }
            }
            if let Some((i, _)) = best {
                self.last_slowdown = now;
                let f = self.step_down(self.freqs[i]);
                if (f - self.freqs[i]).abs() > 1e-9 {
                    self.freqs[i] = f;
                    actions.push(ControlAction::SetInstanceFreq {
                        instance: self.cfg.tiers[i],
                        freq_ghz: f,
                    });
                }
            }
        } else {
            // --- QoS violated (Algorithm 1 lines 15–21) -----------------
            let b = self.bucket_of(e2e.p99.min(self.cfg.qos_target_s * 0.999));
            self.buckets[b].preference = (self.buckets[b].preference * 0.6).max(0.01);
            if let Some((tb, tgt)) = self.target.take() {
                let bucket = &mut self.buckets[tb];
                bucket.failing.push(tgt);
                if bucket.failing.len() > self.cfg.max_tuples {
                    bucket.failing.remove(0);
                }
            }
            self.choose_target();
            self.met_cycles = 0;
            // Speed up every tier above its per-tier target; jump straight
            // to max on severe violations.
            let severe = e2e.p99 > 2.0 * self.cfg.qos_target_s;
            let targets = self.tier_targets();
            let max = *self.cfg.levels_ghz.last().expect("levels non-empty");
            for (i, (&obs, &tgt)) in per_tier.iter().zip(&targets).enumerate() {
                if obs > tgt || severe {
                    let f = if severe {
                        max
                    } else {
                        self.step_up(self.freqs[i])
                    };
                    if (f - self.freqs[i]).abs() > 1e-9 {
                        self.freqs[i] = f;
                        actions.push(ControlAction::SetInstanceFreq {
                            instance: self.cfg.tiers[i],
                            freq_ghz: f,
                        });
                    }
                }
            }
        }

        self.trace
            .lock()
            .expect("trace lock")
            .push(PowerTraceEntry {
                time: now,
                e2e_p99: e2e.p99,
                per_tier_p99: per_tier,
                freqs_ghz: self.freqs.clone(),
                violated,
                samples: e2e.count,
            });
        (actions, self.cfg.interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uqsim_core::metrics::LatencySummary;

    fn stats(e2e_p99: f64, count: usize, tiers: &[f64]) -> TickStats {
        let mk = |p99: f64, count: usize| LatencySummary {
            count,
            mean: p99 / 2.0,
            p50: p99 / 2.0,
            p95: p99 * 0.9,
            p99,
            max: p99 * 1.2,
        };
        TickStats {
            end_to_end: mk(e2e_p99, count),
            per_instance: tiers.iter().map(|&p| mk(p, count)).collect(),
        }
    }

    fn manager(interval_ms: u64) -> (PowerManager, TraceHandle) {
        PowerManager::new(PowerManagerConfig {
            qos_target_s: 5e-3,
            interval: SimDuration::from_millis(interval_ms),
            tiers: vec![InstanceId::from_raw(0), InstanceId::from_raw(1)],
            levels_ghz: vec![1.2, 1.6, 2.0, 2.6],
            ..PowerManagerConfig::default()
        })
    }

    #[test]
    fn slows_one_tier_when_qos_met_with_slack() {
        let (mut m, _t) = manager(100);
        let s = stats(1e-3, 100, &[0.3e-3, 0.2e-3]);
        let (actions, next) = m.tick(SimTime::from_secs_f64(0.1), &s);
        assert_eq!(next, SimDuration::from_millis(100));
        assert_eq!(actions.len(), 1, "slows down exactly one tier");
        match actions[0] {
            ControlAction::SetInstanceFreq { freq_ghz, .. } => assert!(freq_ghz < 2.6),
        }
    }

    #[test]
    fn speeds_up_on_violation() {
        let (mut m, _t) = manager(100);
        // Drive both tiers down first.
        for k in 1..=6 {
            let s = stats(1e-3, 100, &[0.3e-3, 0.2e-3]);
            m.tick(SimTime::from_secs_f64(0.1 * k as f64), &s);
        }
        assert!(m.freqs.iter().any(|&f| f < 2.6));
        // Severe violation → everything back to max.
        let s = stats(20e-3, 100, &[10e-3, 9e-3]);
        let (actions, _) = m.tick(SimTime::from_secs_f64(1.0), &s);
        assert!(!actions.is_empty());
        assert!(m.freqs.iter().all(|&f| (f - 2.6).abs() < 1e-9));
    }

    #[test]
    fn empty_interval_holds_frequencies() {
        let (mut m, t) = manager(100);
        let s = stats(0.0, 0, &[0.0, 0.0]);
        let (actions, _) = m.tick(SimTime::from_secs_f64(0.1), &s);
        assert!(actions.is_empty());
        assert_eq!(t.entries().len(), 1);
        assert_eq!(t.violation_rate(), 0.0, "empty intervals do not count");
    }

    #[test]
    fn violation_rate_counts_only_nonempty() {
        let (mut m, t) = manager(100);
        m.tick(SimTime::from_secs_f64(0.1), &stats(1e-3, 10, &[1e-3, 1e-3]));
        m.tick(SimTime::from_secs_f64(0.2), &stats(9e-3, 10, &[4e-3, 4e-3]));
        m.tick(SimTime::from_secs_f64(0.3), &stats(0.0, 0, &[0.0, 0.0]));
        assert!((t.violation_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn failing_tuples_block_reinsertion() {
        let (mut m, _t) = manager(100);
        // Record a success in bucket of 1ms.
        m.tick(
            SimTime::from_secs_f64(0.1),
            &stats(1e-3, 10, &[0.5e-3, 0.4e-3]),
        );
        let b = m.bucket_of(1e-3);
        assert_eq!(m.buckets[b].tuples.len(), 1);
        // Make that tuple the target, then violate: it becomes failing.
        m.target = Some((b, vec![0.5e-3, 0.4e-3]));
        m.tick(SimTime::from_secs_f64(0.2), &stats(9e-3, 10, &[4e-3, 4e-3]));
        assert_eq!(m.buckets[b].failing.len(), 1);
        // A no-more-relaxed observation is rejected.
        m.tick(
            SimTime::from_secs_f64(0.3),
            &stats(1e-3, 10, &[0.6e-3, 0.5e-3]),
        );
        assert_eq!(
            m.buckets[b].tuples.len(),
            1,
            "relaxed tuple must not be inserted"
        );
        // A strictly tighter observation is accepted.
        m.tick(
            SimTime::from_secs_f64(0.4),
            &stats(1e-3, 10, &[0.3e-3, 0.2e-3]),
        );
        assert_eq!(m.buckets[b].tuples.len(), 2);
    }

    #[test]
    fn preferences_move_with_outcomes() {
        let (mut m, _t) = manager(100);
        let b_good = m.bucket_of(1e-3);
        let before = m.buckets[b_good].preference;
        m.tick(
            SimTime::from_secs_f64(0.1),
            &stats(1e-3, 10, &[0.5e-3, 0.5e-3]),
        );
        assert!(m.buckets[b_good].preference > before);
        let b_bad = m.bucket_of(4.999e-3);
        let before_bad = m.buckets[b_bad].preference;
        m.tick(SimTime::from_secs_f64(0.2), &stats(6e-3, 10, &[3e-3, 3e-3]));
        assert!(m.buckets[b_bad].preference < before_bad);
    }

    #[test]
    fn bucket_index_clamps() {
        let (m, _t) = manager(100);
        assert_eq!(m.bucket_of(0.0), 0);
        assert_eq!(m.bucket_of(4.99e-3), m.cfg.num_buckets - 1);
        assert_eq!(m.bucket_of(100.0), m.cfg.num_buckets - 1);
    }

    #[test]
    #[should_panic(expected = "at least one tier")]
    fn empty_tiers_panics() {
        let _ = PowerManager::new(PowerManagerConfig::default());
    }
}
