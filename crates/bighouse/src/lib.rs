//! # uqsim-bighouse
//!
//! An independent reimplementation of the *BigHouse* modeling approach
//! (Meisner, Wu, Wenisch — ISPASS 2012), the baseline µqSim is compared
//! against in Fig. 13 of the paper.
//!
//! BigHouse represents a datacenter application as a **single queue with k
//! servers**, characterized only by an inter-arrival distribution and a
//! service distribution obtained from profiling. That abstraction cannot
//! express intra-service stages: the profiled service time of an
//! event-driven application necessarily charges the *entire* cost of a
//! batched stage invocation (e.g. one `epoll` call that harvested many
//! events) to *every* request, instead of amortizing it across the batch.
//! µqSim's stage-level model amortizes it; this is precisely why BigHouse
//! saturates far below the real system in Fig. 13.
//!
//! [`service_distribution_for`] derives a BigHouse-style service
//! distribution from a µqSim [`ServiceModel`]
//! the same way profiling the real application would: batching stages
//! contribute their full invocation time at the load-time batch size.
//!
//! ```
//! use uqsim_bighouse::{BigHouse, BigHouseConfig};
//! use uqsim_core::dist::Distribution;
//!
//! let cfg = BigHouseConfig {
//!     interarrival: Distribution::exponential(1.0 / 5_000.0),
//!     service: Distribution::exponential(100e-6),
//!     servers: 1,
//!     seed: 42,
//!     warmup_s: 0.5,
//! };
//! let result = BigHouse::new(cfg).run(5.0);
//! assert!(result.latency.count > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use uqsim_core::dist::Distribution;
use uqsim_core::metrics::LatencySummary;
use uqsim_core::rng::RngFactory;
use uqsim_core::service::ServiceModel;
use uqsim_core::stage::QueueDiscipline;

/// Configuration of a BigHouse single-queue simulation.
#[derive(Debug, Clone)]
pub struct BigHouseConfig {
    /// Inter-arrival time distribution, seconds.
    pub interarrival: Distribution,
    /// Per-request service time distribution, seconds.
    pub service: Distribution,
    /// Number of servers draining the queue (threads/processes).
    pub servers: usize,
    /// Random seed.
    pub seed: u64,
    /// Completions before this time are discarded.
    pub warmup_s: f64,
}

/// Result of a BigHouse run.
#[derive(Debug, Clone)]
pub struct BigHouseResult {
    /// Latency summary over post-warmup completions (sojourn times).
    pub latency: LatencySummary,
    /// Requests completed after warmup.
    pub completed: u64,
    /// Requests generated in total.
    pub generated: u64,
    /// Achieved post-warmup throughput, requests/second.
    pub throughput: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    Arrival,
    Departure { server: usize, arrived: f64 },
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Scheduled {
    time: f64,
    seq: u64,
    event: Event,
}

impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .partial_cmp(&other.time)
            .expect("finite times")
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A G/G/k FCFS queueing simulation in the style of BigHouse.
#[derive(Debug)]
pub struct BigHouse {
    cfg: BigHouseConfig,
    rng: SmallRng,
    events: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    now: f64,
    queue: VecDeque<f64>,
    busy: Vec<bool>,
    samples: Vec<f64>,
    generated: u64,
    completed_after_warmup: u64,
}

impl BigHouse {
    /// Creates a simulation from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(cfg: BigHouseConfig) -> Self {
        assert!(cfg.servers > 0, "need at least one server");
        let rng = RngFactory::new(cfg.seed).stream("bighouse", 0);
        let busy = vec![false; cfg.servers];
        let mut sim = BigHouse {
            cfg,
            rng,
            events: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
            queue: VecDeque::new(),
            busy,
            samples: Vec::new(),
            generated: 0,
            completed_after_warmup: 0,
        };
        let first = sim.cfg.interarrival.sample(&mut sim.rng);
        sim.schedule(first, Event::Arrival);
        sim
    }

    fn schedule(&mut self, at: f64, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Scheduled {
            time: at,
            seq,
            event,
        }));
    }

    fn start_service(&mut self, server: usize, arrived: f64) {
        self.busy[server] = true;
        let service = self.cfg.service.sample(&mut self.rng);
        let at = self.now + service;
        self.schedule(at, Event::Departure { server, arrived });
    }

    /// Runs until `horizon_s` simulated seconds and summarizes.
    pub fn run(mut self, horizon_s: f64) -> BigHouseResult {
        while let Some(Reverse(ev)) = self.events.pop() {
            if ev.time > horizon_s {
                break;
            }
            self.now = ev.time;
            match ev.event {
                Event::Arrival => {
                    self.generated += 1;
                    let gap = self.cfg.interarrival.sample(&mut self.rng);
                    let next = self.now + gap;
                    self.schedule(next, Event::Arrival);
                    match self.busy.iter().position(|&b| !b) {
                        Some(server) => {
                            let arrived = self.now;
                            self.start_service(server, arrived);
                        }
                        None => self.queue.push_back(self.now),
                    }
                }
                Event::Departure { server, arrived } => {
                    if self.now >= self.cfg.warmup_s {
                        self.samples.push(self.now - arrived);
                        self.completed_after_warmup += 1;
                    }
                    self.busy[server] = false;
                    if let Some(next_arrived) = self.queue.pop_front() {
                        self.start_service(server, next_arrived);
                    }
                }
            }
        }
        let span = (horizon_s - self.cfg.warmup_s).max(f64::EPSILON);
        BigHouseResult {
            latency: LatencySummary::from_samples(&self.samples),
            completed: self.completed_after_warmup,
            generated: self.generated,
            throughput: self.completed_after_warmup as f64 / span,
        }
    }
}

/// Result of a converged multi-instance BigHouse study.
#[derive(Debug, Clone)]
pub struct ConvergedResult {
    /// Mean of the per-instance p99s, seconds.
    pub p99_mean: f64,
    /// Half-width of the 95% confidence interval on the p99, seconds.
    pub p99_ci_half_width: f64,
    /// Mean of the per-instance mean sojourns, seconds.
    pub mean_mean: f64,
    /// Instances run before convergence (or the cap).
    pub instances: usize,
}

/// Runs independent instances of the same configuration (differing only in
/// seed) until the 95% confidence interval of the p99 is within
/// `rel_tolerance` of its mean, or `max_instances` is reached — BigHouse's
/// convergence methodology ("runs multiple instances in parallel until
/// performance metrics converge", §II).
///
/// # Panics
///
/// Panics if `max_instances < 2` or `rel_tolerance` is not positive.
pub fn run_converged(
    cfg: &BigHouseConfig,
    horizon_s: f64,
    rel_tolerance: f64,
    max_instances: usize,
) -> ConvergedResult {
    assert!(max_instances >= 2, "need at least two instances");
    assert!(rel_tolerance > 0.0, "tolerance must be positive");
    let mut p99s: Vec<f64> = Vec::new();
    let mut means: Vec<f64> = Vec::new();
    loop {
        let seed = cfg.seed.wrapping_add(p99s.len() as u64);
        let result = BigHouse::new(BigHouseConfig {
            seed,
            ..cfg.clone()
        })
        .run(horizon_s);
        p99s.push(result.latency.p99);
        means.push(result.latency.mean);
        if p99s.len() >= 2 {
            let n = p99s.len() as f64;
            let mean = p99s.iter().sum::<f64>() / n;
            let var = p99s.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            // 1.96 ~ z for a 95% interval; fine for n >= ~10, conservative
            // enough below (BigHouse uses the same normal approximation).
            let half = 1.96 * (var / n).sqrt();
            if (half <= rel_tolerance * mean && p99s.len() >= 4) || p99s.len() >= max_instances {
                return ConvergedResult {
                    p99_mean: mean,
                    p99_ci_half_width: half,
                    mean_mean: means.iter().sum::<f64>() / n,
                    instances: p99s.len(),
                };
            }
        }
    }
}

/// Derives the BigHouse-style per-request service distribution for one
/// execution path of a µqSim service model, the way offline profiling of
/// the real application would see it: every stage contributes its full
/// invocation time, with batching stages observed at `profiled_batch`
/// events per invocation (their cost is *not* amortized across the batch —
/// the single-queue abstraction cannot express that).
///
/// The result is a [`Distribution::Shifted`] of the summed stage means with
/// the variability folded into an exponential component, matching
/// BigHouse's use of fitted parametric distributions.
pub fn service_distribution_for(
    model: &ServiceModel,
    path: usize,
    profiled_batch: usize,
) -> Distribution {
    let stages = &model.paths[path].stages;
    let mut fixed = 0.0;
    let mut variable_mean = 0.0;
    for &sid in stages {
        let stage = &model.stages[sid.index()];
        let invocation = match stage.queue {
            QueueDiscipline::Single => stage.service.mean(1),
            QueueDiscipline::Socket { .. } | QueueDiscipline::Epoll { .. } => {
                stage.service.mean(profiled_batch)
            }
        };
        // Split roughly half fixed / half variable so the fitted service
        // distribution has realistic (non-deterministic) dispersion.
        fixed += invocation * 0.5;
        variable_mean += invocation * 0.5;
    }
    Distribution::Shifted {
        offset: fixed,
        inner: Box::new(Distribution::exponential(variable_mean)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm1(lambda: f64, mu: f64, seed: u64) -> BigHouseResult {
        BigHouse::new(BigHouseConfig {
            interarrival: Distribution::exponential(1.0 / lambda),
            service: Distribution::exponential(1.0 / mu),
            servers: 1,
            seed,
            warmup_s: 1.0,
        })
        .run(60.0)
    }

    #[test]
    fn mm1_matches_theory() {
        // W = 1/(mu - lambda) = 1/(2000-1000) = 1ms.
        let r = mm1(1_000.0, 2_000.0, 7);
        assert!(
            (r.latency.mean - 1e-3).abs() / 1e-3 < 0.08,
            "mean {}",
            r.latency.mean
        );
        assert!((r.throughput - 1_000.0).abs() / 1_000.0 < 0.05);
    }

    #[test]
    fn mmk_beats_mm1_at_same_total_capacity() {
        // M/M/4 with per-server rate mu/4 has worse latency than M/M/1 at
        // rate mu at low load, but here we check the basic sanity that more
        // servers reduce waiting at fixed per-server utilization.
        let one = BigHouse::new(BigHouseConfig {
            interarrival: Distribution::exponential(1.0 / 1_500.0),
            service: Distribution::exponential(1.0 / 2_000.0),
            servers: 1,
            seed: 9,
            warmup_s: 1.0,
        })
        .run(40.0);
        let four = BigHouse::new(BigHouseConfig {
            interarrival: Distribution::exponential(1.0 / 6_000.0),
            service: Distribution::exponential(1.0 / 2_000.0),
            servers: 4,
            seed: 9,
            warmup_s: 1.0,
        })
        .run(40.0);
        // Same per-server rho = 0.75; M/M/4 queues less than M/M/1.
        assert!(four.latency.mean < one.latency.mean);
    }

    #[test]
    fn overload_grows_queue_unboundedly() {
        let r = mm1(3_000.0, 2_000.0, 11);
        // Throughput is capped at mu.
        assert!(r.throughput < 2_100.0, "throughput {}", r.throughput);
        assert!(r.latency.p99 > 10e-3, "p99 {}", r.latency.p99);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = mm1(1_000.0, 2_000.0, 5);
        let b = mm1(1_000.0, 2_000.0, 5);
        assert_eq!(a.latency, b.latency);
        let c = mm1(1_000.0, 2_000.0, 6);
        assert_ne!(a.latency, c.latency);
    }

    #[test]
    fn derived_service_charges_full_batch_cost() {
        let model = uqsim_apps_like_model();
        let d1 = service_distribution_for(&model, 0, 1);
        let d16 = service_distribution_for(&model, 0, 16);
        // Profiling under load (batch 16) inflates the fitted service time.
        assert!(d16.mean() > d1.mean());
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let _ = BigHouse::new(BigHouseConfig {
            interarrival: Distribution::exponential(1e-3),
            service: Distribution::exponential(1e-4),
            servers: 0,
            seed: 1,
            warmup_s: 0.0,
        });
    }

    #[test]
    fn convergence_tightens_the_interval() {
        let cfg = BigHouseConfig {
            interarrival: Distribution::exponential(1.0 / 1_000.0),
            service: Distribution::exponential(1.0 / 2_000.0),
            servers: 1,
            seed: 3,
            warmup_s: 0.5,
        };
        let loose = run_converged(&cfg, 4.0, 0.5, 32);
        let tight = run_converged(&cfg, 4.0, 0.02, 64);
        assert!(tight.instances >= loose.instances);
        assert!(tight.p99_ci_half_width <= 0.02 * tight.p99_mean * 1.0001 || tight.instances == 64);
        // Converged p99 sits near the analytic M/M/1 p99 = ln(100)/(mu-l).
        let analytic = (100.0f64).ln() / 1_000.0;
        assert!(
            (tight.p99_mean - analytic).abs() / analytic < 0.1,
            "converged p99 {} vs analytic {analytic}",
            tight.p99_mean
        );
    }

    #[test]
    fn convergence_respects_instance_cap() {
        let cfg = BigHouseConfig {
            interarrival: Distribution::exponential(1.0 / 1_000.0),
            service: Distribution::exponential(1.0 / 2_000.0),
            servers: 1,
            seed: 3,
            warmup_s: 0.2,
        };
        let r = run_converged(&cfg, 1.0, 1e-9, 5);
        assert_eq!(r.instances, 5);
    }

    /// A small epoll-fronted model for the derivation test.
    fn uqsim_apps_like_model() -> ServiceModel {
        use uqsim_core::ids::StageId;
        use uqsim_core::service::ExecPath;
        use uqsim_core::stage::{QueueDiscipline, ServiceTimeModel, StageSpec};
        ServiceModel::new(
            "epoll_app",
            vec![
                StageSpec::new(
                    "epoll",
                    QueueDiscipline::Epoll { batch_per_conn: 16 },
                    ServiceTimeModel::batched(
                        Distribution::constant(5e-6),
                        Distribution::constant(2e-6),
                        2.6,
                    ),
                ),
                StageSpec::new(
                    "proc",
                    QueueDiscipline::Single,
                    ServiceTimeModel::per_job(Distribution::constant(20e-6), 2.6),
                ),
            ],
            vec![ExecPath::new(
                "p",
                vec![StageId::from_raw(0), StageId::from_raw(1)],
            )],
        )
    }
}
