use uqsim_core::event::{EventKind, EventQueue};
use uqsim_core::time::SimTime;

#[test]
fn refined_rung_overlap_ordering() {
    let mut q = EventQueue::new();
    q.schedule(SimTime::from_nanos(5), EventKind::Stop);
    assert_eq!(q.pop().unwrap().time.as_nanos(), 5);
    for _ in 0..70 {
        q.schedule(SimTime::from_nanos(1000), EventKind::Stop);
    }
    q.schedule(SimTime::from_nanos(1150), EventKind::Stop);
    q.schedule(SimTime::from_nanos(1000 + 25650), EventKind::Stop);
    assert_eq!(q.pop().unwrap().time.as_nanos(), 1000);
    q.schedule(SimTime::from_nanos(1210), EventKind::Stop);
    let mut times = Vec::new();
    while let Some(e) = q.pop() {
        times.push(e.time.as_nanos());
    }
    println!("tail: {:?}", &times[65..]);
    let mut sorted = times.clone();
    sorted.sort();
    assert_eq!(times, sorted, "pops out of order");
}
