//! Adversarial fault-injection tests: fan-out DAGs losing a parent branch
//! mid-flight. A quorum fan-in must keep answering (degraded) when one
//! branch is crashed, an `all` fan-in must account every half-finished
//! request as dropped, and in both cases the trace auditor must verify the
//! terminal-outcome conservation law event-by-event.

use uqsim_core::builder::{ExecSpec, ScenarioBuilder};
use uqsim_core::client::ClientSpec;
use uqsim_core::dist::Distribution;
use uqsim_core::ids::{InstanceId, PathNodeId, ServiceId, StageId};
use uqsim_core::machine::{DvfsSpec, MachineSpec, NetworkSpec};
use uqsim_core::path::{
    FanInPolicy, InstanceSelect, LinkKind, NodeTarget, PathNodeSpec, PathSelect, RequestType,
};
use uqsim_core::service::{ExecPath, ServiceModel};
use uqsim_core::stage::{QueueDiscipline, ServiceTimeModel, StageSpec};
use uqsim_core::time::SimDuration;
use uqsim_core::{FaultPlan, FaultSpec, Simulator};

fn nid(i: usize) -> PathNodeId {
    PathNodeId::from_raw(i as u32)
}

fn service_node(
    name: &str,
    service: ServiceId,
    instance: InstanceId,
    link: LinkKind,
    children: Vec<PathNodeId>,
) -> PathNodeSpec {
    PathNodeSpec {
        name: name.into(),
        target: NodeTarget::Service {
            service,
            instance: InstanceSelect::Fixed { instance },
            exec_path: PathSelect::Fixed { index: 0 },
        },
        children,
        link,
        block_thread_until: None,
        pin_thread_of: None,
        fan_in_policy: Default::default(),
    }
}

fn single_stage_service(name: &str, mean_s: f64) -> ServiceModel {
    ServiceModel::new(
        name,
        vec![StageSpec::new(
            "proc",
            QueueDiscipline::Single,
            ServiceTimeModel::per_job(Distribution::exponential(mean_s), 2.6),
        )],
        vec![ExecPath::new("p", vec![StageId::from_raw(0)])],
    )
}

/// A frontend fanning out to `backends` parallel instances whose replies
/// synchronize at a join node with the given fan-in policy.
fn build_fanout(seed: u64, backends: usize, policy: FanInPolicy) -> Simulator {
    let mut b = ScenarioBuilder::new(seed);
    b.warmup(SimDuration::from_millis(100));
    let m = b.add_machine(MachineSpec {
        name: "m".into(),
        cores: 8,
        dvfs: DvfsSpec::fixed(2.6),
        network: NetworkSpec::passthrough(5e-6),
        power: Default::default(),
    });
    let s_front = b.add_service(single_stage_service("front", 30e-6));
    let s_back = b.add_service(single_stage_service("back", 80e-6));
    let i_front = b
        .add_instance("front0", s_front, m, 2, ExecSpec::Simple)
        .unwrap();
    let backs: Vec<InstanceId> = (0..backends)
        .map(|k| {
            b.add_instance(format!("back{k}"), s_back, m, 2, ExecSpec::Simple)
                .unwrap()
        })
        .collect();

    // 0 root → {1..=backends} → join → sink.
    let join_id = nid(backends + 1);
    let root = service_node(
        "root",
        s_front,
        i_front,
        LinkKind::Request,
        (1..=backends).map(nid).collect(),
    );
    let mut nodes = vec![root];
    for (k, &i_back) in backs.iter().enumerate() {
        nodes.push(service_node(
            &format!("back{k}"),
            s_back,
            i_back,
            LinkKind::Request,
            vec![join_id],
        ));
    }
    let mut join = PathNodeSpec {
        name: "join".into(),
        target: NodeTarget::Service {
            service: s_front,
            instance: InstanceSelect::SameAsNode { node: nid(0) },
            exec_path: PathSelect::Fixed { index: 0 },
        },
        children: vec![nid(backends + 2)],
        link: LinkKind::ReplyVia {
            entries: (1..=backends).map(|k| (nid(k), nid(k))).collect(),
        },
        block_thread_until: None,
        pin_thread_of: None,
        fan_in_policy: Default::default(),
    };
    join.fan_in_policy = policy;
    nodes.push(join);
    nodes.push(PathNodeSpec::client_sink(nid(0)));
    let ty = b
        .add_request_type(RequestType::new("fanout", nodes, nid(0)))
        .unwrap();
    b.add_client(ClientSpec::open_loop("c", 2_000.0, 64, ty), vec![i_front]);
    b.build().unwrap()
}

fn crash_plan(instance: &str, at_s: f64, restart_after_s: Option<f64>) -> FaultPlan {
    FaultPlan {
        faults: vec![FaultSpec::InstanceCrash {
            instance: instance.into(),
            at_s,
            restart_after_s,
        }],
        policy: Default::default(),
    }
}

/// Runs the audit and asserts zero violations plus a non-trivial trace.
fn assert_audit_clean(sim: &Simulator) {
    let log = sim.span_log().expect("span tracing enabled");
    assert_eq!(log.dropped(), 0, "event capacity too small for this test");
    let report = sim.audit_trace().expect("span tracing enabled");
    assert!(report.is_clean(), "violations: {:#?}", report.violations);
    assert!(report.spans_checked > 0, "no stage spans correlated");
}

/// quorum(2) over three backends, one of which crashes permanently: the
/// join keeps firing on the two survivors, so requests complete (degraded)
/// instead of hanging or dropping, and the conservation law still audits.
#[test]
fn quorum_fan_in_survives_a_dead_parent_branch() {
    let mut sim = build_fanout(31, 3, FanInPolicy::Quorum { k: 2 });
    sim.install_faults(&crash_plan("back1", 0.3, None)).unwrap();
    sim.enable_span_tracing(4_000_000);
    sim.run_for(SimDuration::from_secs(1));

    let f = sim.fault_summary().expect("fault plan installed");
    // The crash really killed work on the dead branch...
    assert!(f.jobs_killed > 100, "jobs killed {}", f.jobs_killed);
    // ...yet no request was terminally dropped: two live parents always
    // satisfy the quorum.
    assert_eq!(sim.dropped(), 0, "quorum must absorb the dead branch");
    // Completions continue through the post-crash era (0.3s..1s at 2k qps
    // would leave far fewer completions if the join wedged at the crash).
    assert!(sim.completed() > 1_200, "completed {}", sim.completed());
    // Early fires are degraded responses; after the crash every completion
    // is one, so they dominate.
    assert!(
        sim.degraded() > sim.completed() / 2,
        "degraded {} of {}",
        sim.degraded(),
        sim.completed()
    );
    // Terminal-outcome conservation, then the event-by-event audit of it.
    assert_eq!(
        sim.generated(),
        sim.completed() + sim.dropped() + sim.shed() + sim.live_requests() as u64
    );
    assert_audit_clean(&sim);
}

/// An `all` fan-in crashing one of two parents mid-flight: every request
/// whose dead-branch copy can no longer arrive must resolve as dropped
/// (never hang half-joined), completions must resume after the restart,
/// and the auditor must still verify conservation event-by-event.
#[test]
fn crash_mid_fanout_conserves_requests_under_all_fan_in() {
    let mut sim = build_fanout(32, 2, FanInPolicy::All);
    sim.install_faults(&crash_plan("back0", 0.3, Some(0.3)))
        .unwrap();
    sim.enable_span_tracing(4_000_000);
    sim.run_for(SimDuration::from_secs(1));

    let f = sim.fault_summary().expect("fault plan installed");
    assert!(f.jobs_killed > 100, "jobs killed {}", f.jobs_killed);
    // Requests caught mid-fanout lost a required branch and were dropped.
    assert!(sim.dropped() > 100, "dropped {}", sim.dropped());
    // The restart at 0.6s revives the branch: completions from both the
    // pre-crash and post-restart eras.
    assert!(sim.completed() > 800, "completed {}", sim.completed());
    assert_eq!(
        sim.generated(),
        sim.completed() + sim.dropped() + sim.shed() + sim.live_requests() as u64
    );
    assert_audit_clean(&sim);
}
