//! Property-based tests (proptest) of the core data structures and
//! invariants: event ordering, queue conservation, distribution support,
//! histogram construction, percentile monotonicity, DVFS snapping, and
//! time arithmetic.

use proptest::prelude::*;
use uqsim_core::critpath::{CpcProfile, EdgeKind, SpanDag};
use uqsim_core::dist::Distribution;
use uqsim_core::event::{EventKind, EventQueue};
use uqsim_core::histogram::Histogram;
use uqsim_core::ids::{ClientId, ConnectionId, JobId};
use uqsim_core::machine::DvfsSpec;
use uqsim_core::metrics::{percentile_sorted, LatencySummary};
use uqsim_core::queue::StageQueue;
use uqsim_core::rng::RngFactory;
use uqsim_core::stage::QueueDiscipline;
use uqsim_core::time::{SimDuration, SimTime};

proptest! {
    /// Events pop in (time, seq) order regardless of insertion order.
    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(
                SimTime::from_nanos(t),
                EventKind::ClientArrival { client: ClientId::from_raw(i as u32) },
            );
        }
        let mut prev_time = SimTime::ZERO;
        let mut prev_seq = 0u64;
        let mut count = 0;
        while let Some(e) = q.pop() {
            prop_assert!(e.time >= prev_time);
            if e.time == prev_time {
                prop_assert!(e.seq > prev_seq || count == 0);
            }
            prev_time = e.time;
            prev_seq = e.seq;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// No job is lost or duplicated by any stage queue under arbitrary
    /// push/batch interleavings.
    #[test]
    fn stage_queue_conserves_jobs(
        ops in proptest::collection::vec((any::<bool>(), 0u32..6), 1..500),
        mode in 0usize..3,
        batch in 1usize..5,
    ) {
        let discipline = match mode {
            0 => QueueDiscipline::Single,
            1 => QueueDiscipline::Socket { batch },
            _ => QueueDiscipline::Epoll { batch_per_conn: batch },
        };
        let mut q = StageQueue::new(discipline);
        let mut pushed = Vec::new();
        let mut popped = Vec::new();
        let mut next = 0u32;
        for (push, conn) in ops {
            if push {
                let j = JobId::new(next, 0);
                next += 1;
                q.push(j, ConnectionId::from_raw(conn));
                pushed.push(j);
            } else {
                popped.extend(q.assemble_batch());
            }
        }
        while !q.is_empty() {
            let b = q.assemble_batch();
            prop_assert!(!b.is_empty(), "non-empty queue must yield batches");
            popped.extend(b);
        }
        pushed.sort();
        popped.sort();
        prop_assert_eq!(pushed, popped);
    }

    /// Epoll batches never take more than the per-connection cap from any
    /// single connection.
    #[test]
    fn epoll_batch_respects_per_conn_cap(
        jobs_per_conn in proptest::collection::vec(1usize..12, 1..8),
        cap in 1usize..6,
    ) {
        let mut q = StageQueue::new(QueueDiscipline::Epoll { batch_per_conn: cap });
        let mut next = 0u32;
        for (c, &n) in jobs_per_conn.iter().enumerate() {
            for _ in 0..n {
                q.push(JobId::new(next, 0), ConnectionId::from_raw(c as u32));
                next += 1;
            }
        }
        let batch = q.assemble_batch();
        let expected: usize = jobs_per_conn.iter().map(|&n| n.min(cap)).sum();
        prop_assert_eq!(batch.len(), expected);
    }

    /// Valid distributions produce only non-negative, finite samples, and
    /// scaling by k multiplies the analytic mean by k.
    #[test]
    fn distributions_nonnegative_and_scale(
        mean in 1e-7f64..1e-2,
        cv in 0.1f64..2.0,
        factor in 0.1f64..10.0,
        seed in any::<u64>(),
    ) {
        let dists = [
            Distribution::exponential(mean),
            Distribution::lognormal_mean_cv(mean, cv),
            Distribution::uniform(mean * 0.5, mean * 1.5),
            Distribution::constant(mean),
        ];
        let mut rng = RngFactory::new(seed).stream("prop", 0);
        for d in &dists {
            prop_assert!(d.validate().is_ok());
            for _ in 0..32 {
                let x = d.sample(&mut rng);
                prop_assert!(x.is_finite() && x >= 0.0, "bad sample {x} from {d:?}");
            }
            let scaled = d.scaled(factor);
            let rel = (scaled.mean() - d.mean() * factor).abs() / (d.mean() * factor);
            prop_assert!(rel < 1e-9, "scaling broke the mean for {d:?}");
        }
    }

    /// Histograms built from samples cover their sample range, and their
    /// draws stay within it.
    #[test]
    fn histogram_support_covers_samples(
        samples in proptest::collection::vec(1e-6f64..1e-2, 2..200),
        bins in 1usize..50,
        seed in any::<u64>(),
    ) {
        let h = Histogram::from_samples(&samples, bins).unwrap();
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(h.min_value() <= lo + 1e-12);
        prop_assert!(h.max_value() >= hi - 1e-12);
        let mut rng = RngFactory::new(seed).stream("hist-prop", 0);
        for _ in 0..64 {
            let x = h.sample(&mut rng);
            prop_assert!(x >= h.min_value() - 1e-12 && x <= h.max_value() + 1e-12);
        }
    }

    /// Percentiles are monotone in q and bounded by min/max.
    #[test]
    fn percentiles_monotone(mut xs in proptest::collection::vec(0.0f64..1e3, 1..300)) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let p = percentile_sorted(&xs, q);
            prop_assert!(p >= prev);
            prop_assert!(p >= xs[0] && p <= xs[xs.len() - 1]);
            prev = p;
        }
        let s = LatencySummary::from_sorted(&xs);
        prop_assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        prop_assert!(s.mean >= xs[0] && s.mean <= xs[xs.len() - 1]);
    }

    /// DVFS snapping always returns an allowed level, and it is the
    /// nearest one.
    #[test]
    fn dvfs_snap_returns_nearest_level(
        levels in proptest::collection::btree_set(1u32..40, 1..10),
        target in 0.1f64..5.0,
    ) {
        let levels: Vec<f64> = levels.into_iter().map(|l| l as f64 / 10.0).collect();
        let spec = DvfsSpec { levels_ghz: levels.clone() };
        prop_assert!(spec.validate().is_ok());
        let snapped = spec.snap(target);
        prop_assert!(levels.contains(&snapped));
        for &l in &levels {
            prop_assert!((snapped - target).abs() <= (l - target).abs() + 1e-12);
        }
    }

    /// Time arithmetic: (t + a) + b == (t + b) + a, and subtraction
    /// inverts addition.
    #[test]
    fn time_arithmetic_commutes(t in 0u64..1u64 << 40, a in 0u64..1u64 << 30, b in 0u64..1u64 << 30) {
        let t0 = SimTime::from_nanos(t);
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!((t0 + da) + db, (t0 + db) + da);
        prop_assert_eq!((t0 + da) - t0, da);
        prop_assert_eq!(t0.saturating_since(t0 + da), SimDuration::ZERO);
    }

    /// Duration float conversions round-trip within a nanosecond.
    #[test]
    fn duration_float_roundtrip(ns in 0u64..1u64 << 50) {
        let d = SimDuration::from_nanos(ns);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        let diff = back.as_nanos().abs_diff(d.as_nanos());
        // f64 has 52 bits of mantissa; allow tiny rounding.
        prop_assert!(diff <= 1 + (ns >> 50));
    }

    /// The critical path of any fan-out/fan-in span DAG is bounded by the
    /// end-to-end latency: no causally-ordered chain of spans can run
    /// longer than the window that contains all of them.
    ///
    /// The generator builds layered DAGs — each layer's spans start after
    /// every span of the previous layer has ended (a fan-in barrier), with
    /// random per-span start jitter and durations, and each span gets a
    /// random subset of previous-layer predecessors.
    #[test]
    fn critical_path_bounded_by_e2e(
        layers in proptest::collection::vec(
            proptest::collection::vec((0u64..50_000, 1u64..1_000_000), 1..5),
            1..8,
        ),
        edge_seed in any::<u64>(),
    ) {
        let mut dag = SpanDag::new();
        let mut barrier = 0u64; // latest end of the previous layer
        let mut prev: Vec<usize> = Vec::new();
        let mut pick = edge_seed;
        for spans in &layers {
            let mut layer_end = barrier;
            let mut cur = Vec::new();
            for &(jitter, dur) in spans {
                let start = barrier + jitter;
                let idx = dag.add_span(start, start + dur);
                // Random non-empty predecessor subset (cheap LCG; proptest
                // drives the seed, so shrinking still works on it).
                for &p in &prev {
                    pick = pick.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if pick >> 63 == 1 {
                        dag.add_edge(p, idx);
                    }
                }
                if let (Some(&p), true) = (prev.first(), !prev.is_empty()) {
                    dag.add_edge(p, idx);
                }
                layer_end = layer_end.max(start + dur);
                cur.push(idx);
            }
            prev = cur;
            barrier = layer_end;
        }
        prop_assert!(dag.critical_path_ns() <= dag.e2e_ns());
    }

    /// On a gap-free serial chain the bound is tight: the critical path
    /// telescopes exactly to the end-to-end latency.
    #[test]
    fn critical_path_exact_on_serial_chains(
        durs in proptest::collection::vec(0u64..1_000_000, 1..50),
    ) {
        let dag = SpanDag::serial_chain(&durs);
        prop_assert_eq!(dag.critical_path_ns(), dag.e2e_ns());
        prop_assert_eq!(dag.e2e_ns(), durs.iter().sum::<u64>());
    }

    /// CPC profile merge is commutative and associative, the property the
    /// partition layer relies on for shard-count-invariant attribution.
    #[test]
    fn cpc_merge_commutes_and_associates(
        obs in proptest::collection::vec(
            (0usize..3, proptest::collection::vec((0usize..4, 0usize..7, 1u64..1_000_000), 1..6)),
            0..12,
        ),
    ) {
        const SITES: [&str; 4] = ["client:a", "tier0/net", "tier1/cpu", "pool:db"];
        let mut profiles = [CpcProfile::new(), CpcProfile::new(), CpcProfile::new()];
        for (which, segs) in &obs {
            let segs: Vec<(&str, EdgeKind, u64)> = segs
                .iter()
                .map(|&(s, k, ns)| (SITES[s], EdgeKind::ALL[k], ns))
                .collect();
            let e2e: u64 = segs.iter().map(|s| s.2).sum();
            profiles[*which].observe(e2e, &segs);
        }
        let [a, b, c] = profiles;

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba, "merge is not commutative");

        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc_a = b.clone();
        bc_a.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc_a);
        prop_assert_eq!(&ab_c, &a_bc, "merge is not associative");
    }
}
