//! Property test: on an M/M/1 queue, the span log agrees with the
//! independent residency `LatencyRecorder` (per-stage counts and mean
//! residency) and the span-derived mean queue wait tracks the analytic
//! M/M/1 value `Wq = rho / (mu - lambda)`.
//!
//! The scenario is a single-core instance with one exponential stage fed by
//! a Poisson open-loop client — exactly M/M/1 — so queue waits extracted
//! from `Enqueue -> BatchStart` correlation are checkable against queueing
//! theory, while residency (`Enqueue -> end of service`) is checkable
//! sample-for-sample against the recorder the simulator already maintains.

use proptest::prelude::*;
use uqsim_core::builder::{ExecSpec, ScenarioBuilder};
use uqsim_core::client::ClientSpec;
use uqsim_core::dist::Distribution;
use uqsim_core::ids::{InstanceId, PathNodeId, StageId};
use uqsim_core::machine::{DvfsSpec, MachineSpec, NetworkSpec};
use uqsim_core::path::{PathNodeSpec, RequestType};
use uqsim_core::service::{ExecPath, ServiceModel};
use uqsim_core::stage::{QueueDiscipline, ServiceTimeModel, StageSpec};
use uqsim_core::time::{SimDuration, SimTime};
use uqsim_core::Simulator;

const SERVICE_MEAN_S: f64 = 300e-6;
const WARMUP_S: f64 = 0.3;
const RUN_S: f64 = 1.3;

fn build_mm1(lambda_qps: f64, seed: u64) -> Simulator {
    let mut b = ScenarioBuilder::new(seed);
    b.warmup(SimDuration::from_secs_f64(WARMUP_S));
    let m = b.add_machine(MachineSpec {
        name: "m".into(),
        cores: 1,
        dvfs: DvfsSpec::fixed(2.6),
        network: NetworkSpec::passthrough(0.0),
        power: Default::default(),
    });
    let s = b.add_service(ServiceModel::new(
        "svc",
        vec![StageSpec::new(
            "proc",
            QueueDiscipline::Single,
            ServiceTimeModel::per_job(Distribution::exponential(SERVICE_MEAN_S), 2.6),
        )],
        vec![ExecPath::new("p", vec![StageId::from_raw(0)])],
    ));
    let i = b.add_instance("svc0", s, m, 1, ExecSpec::Simple).unwrap();
    let mut node = PathNodeSpec::request("svc", s, i);
    node.children = vec![PathNodeId::from_raw(1)];
    let sink = PathNodeSpec::client_sink(PathNodeId::from_raw(0));
    let ty = b
        .add_request_type(RequestType::new(
            "get",
            vec![node, sink],
            PathNodeId::from_raw(0),
        ))
        .unwrap();
    // Plenty of client connections so HTTP/1.1 connection blocking never
    // distorts the Poisson arrivals.
    b.add_client(ClientSpec::open_loop("c", lambda_qps, 256, ty), vec![i]);
    b.build().unwrap()
}

proptest! {
    #[test]
    fn mm1_spans_agree_with_recorder_and_theory(
        lambda in 500.0f64..2000.0,
        seed in any::<u64>(),
    ) {
        let mut sim = build_mm1(lambda, seed);
        sim.enable_span_tracing(4_000_000);
        sim.run_for(SimDuration::from_secs_f64(RUN_S));

        // The trace upholds every invariant.
        let report = sim.audit_trace().expect("tracing enabled");
        prop_assert!(report.is_clean(), "violations: {:#?}", report.violations);

        // Span-derived per-stage samples, filtered exactly like the
        // recorder: completions in [warmup, deadline). A StageDone landing
        // exactly on the deadline is never processed (Stop wins the tie),
        // so spans ending there have no recorder counterpart.
        let warmup_at = SimTime::ZERO + SimDuration::from_secs_f64(WARMUP_S);
        let deadline = sim.now();
        let spans = sim.span_log().expect("tracing enabled").spans();
        let retained: Vec<_> = spans
            .iter()
            .filter(|s| s.end_t >= warmup_at && s.end_t < deadline)
            .collect();
        prop_assert!(!retained.is_empty(), "no post-warmup spans at lambda {lambda}");

        // 1. Counts match the independent residency recorder (small slack
        //    for jobs whose service completed but whose StageDone event is
        //    still queued at the deadline).
        let rec = sim.instance_residency(InstanceId::from_raw(0));
        let diff = (retained.len() as i64 - rec.count as i64).abs();
        prop_assert!(
            diff <= 2,
            "span count {} vs recorder count {} at lambda {lambda}",
            retained.len(),
            rec.count
        );

        // 2. Mean residency matches the recorder. For a single-stage
        //    Simple-exec service, enqueue == node entry and service end ==
        //    node exit, so the two measurements are the same quantity.
        let span_mean =
            retained.iter().map(|s| s.total_s()).sum::<f64>() / retained.len() as f64;
        let rel = (span_mean - rec.mean).abs() / rec.mean;
        prop_assert!(
            rel < 0.02,
            "span mean residency {span_mean} vs recorder {} at lambda {lambda}",
            rec.mean
        );

        // 3. Mean queue wait tracks M/M/1 theory: Wq = rho / (mu - lambda).
        let mu = 1.0 / SERVICE_MEAN_S;
        let rho = lambda / mu;
        let wq = rho / (mu - lambda);
        let span_wq =
            retained.iter().map(|s| s.queue_wait_s()).sum::<f64>() / retained.len() as f64;
        let err = (span_wq - wq).abs();
        prop_assert!(
            err < 0.45 * wq + 20e-6,
            "span Wq {span_wq} vs analytic {wq} at lambda {lambda} (rho {rho:.2})"
        );
    }
}
