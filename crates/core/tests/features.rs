//! Integration tests of the extended client and observability features:
//! closed-loop load generation, client-side timeouts, request tracing,
//! per-stage statistics, payload-size-dependent costs, and NIC bandwidth.

use uqsim_core::builder::{ExecSpec, ScenarioBuilder};
use uqsim_core::client::{ClientSpec, RequestMix};
use uqsim_core::dist::Distribution;
use uqsim_core::ids::{InstanceId, PathNodeId, StageId};
use uqsim_core::machine::{DvfsSpec, MachineSpec, NetworkSpec};
use uqsim_core::path::{PathNodeSpec, RequestType};
use uqsim_core::service::{ExecPath, ServiceModel};
use uqsim_core::stage::{QueueDiscipline, ServiceTimeModel, StageSpec};
use uqsim_core::time::SimDuration;
use uqsim_core::Simulator;

/// A single-instance scenario with one epoll-fronted two-stage service.
fn build(spec: ClientSpec, service_mean: f64, cores: usize) -> Simulator {
    let mut b = ScenarioBuilder::new(9);
    b.warmup(SimDuration::from_millis(200));
    let m = b.add_machine(MachineSpec {
        name: "m".into(),
        cores,
        dvfs: DvfsSpec::fixed(2.6),
        network: NetworkSpec::passthrough(10e-6),
        power: Default::default(),
    });
    let s = b.add_service(ServiceModel::new(
        "svc",
        vec![
            StageSpec::new(
                "epoll",
                QueueDiscipline::Epoll { batch_per_conn: 16 },
                ServiceTimeModel::batched(
                    Distribution::constant(4e-6),
                    Distribution::constant(1e-6),
                    2.6,
                ),
            ),
            StageSpec::new(
                "proc",
                QueueDiscipline::Single,
                ServiceTimeModel::per_job(Distribution::exponential(service_mean), 2.6),
            ),
        ],
        vec![ExecPath::new(
            "p",
            vec![StageId::from_raw(0), StageId::from_raw(1)],
        )],
    ));
    let i = b
        .add_instance("svc0", s, m, cores, ExecSpec::Simple)
        .unwrap();
    let mut node = PathNodeSpec::request("svc", s, i);
    node.children = vec![PathNodeId::from_raw(1)];
    let sink = PathNodeSpec::client_sink(PathNodeId::from_raw(0));
    let ty = b
        .add_request_type(RequestType::new(
            "get",
            vec![node, sink],
            PathNodeId::from_raw(0),
        ))
        .unwrap();
    let mut spec = spec;
    spec.mix = RequestMix::single(ty);
    b.add_client(spec, vec![i]);
    b.build().unwrap()
}

#[test]
fn closed_loop_throughput_follows_littles_law() {
    // N users, think Z, service-ish response time R: X = N / (Z + R).
    let users = 8;
    let think = 2e-3;
    let service = 100e-6;
    let spec = ClientSpec::closed_loop(
        "users",
        users,
        Distribution::constant(think),
        64,
        uqsim_core::ids::RequestTypeId::from_raw(0),
    );
    let mut sim = build(spec, service, 4);
    sim.run_for(SimDuration::from_secs(10));
    let x = sim.latency_summary().count as f64 / 9.8;
    let r = sim.latency_summary().mean;
    let expect = users as f64 / (think + r);
    assert!(
        (x - expect).abs() / expect < 0.05,
        "closed-loop throughput {x} vs Little's law {expect}"
    );
}

#[test]
fn closed_loop_bounds_in_flight_work() {
    // Even with an absurdly slow server, a closed loop never piles up more
    // than `users` requests.
    let spec = ClientSpec::closed_loop(
        "users",
        5,
        Distribution::constant(1e-4),
        16,
        uqsim_core::ids::RequestTypeId::from_raw(0),
    );
    let mut sim = build(spec, 50e-3, 1);
    sim.run_for(SimDuration::from_secs(5));
    assert!(
        sim.live_requests() <= 5,
        "in flight {}",
        sim.live_requests()
    );
    assert_eq!(
        sim.generated(),
        sim.completed() + sim.live_requests() as u64
    );
}

#[test]
fn timeouts_fire_only_in_overload() {
    let make = |qps: f64| {
        ClientSpec::open_loop("c", qps, 64, uqsim_core::ids::RequestTypeId::from_raw(0))
            .with_timeout(20e-3)
    };
    // Light load (mu = 10k on 2 cores): no timeouts.
    let mut calm = build(make(4_000.0), 100e-6, 2);
    calm.run_for(SimDuration::from_secs(3));
    assert_eq!(calm.timeouts(), 0, "no timeouts below saturation");

    // Heavy overload: most requests exceed 20ms from submission.
    let mut hot = build(make(40_000.0), 100e-6, 2);
    hot.run_for(SimDuration::from_secs(3));
    assert!(hot.timeouts() > 1_000, "timeouts {}", hot.timeouts());
    // Timed-out requests that eventually finish are excluded from latency.
    assert!(hot.completed_after_timeout() > 0);
    assert!(hot.latency_summary().max <= 21e-3 || hot.latency_summary().count > 0);
}

#[test]
fn timeout_burst_frees_every_client_connection_slot() {
    // A finite burst (trace replay) of 300 requests at 1 ms spacing hits a
    // server whose ~50 ms service time dwarfs the 5 ms client deadline, so
    // essentially everything times out. Each timed-out call must release
    // its connection slot at the deadline — not when the abandoned response
    // eventually drains — or the 4-connection client wedges after the first
    // four launches.
    let spec = ClientSpec {
        name: "burst".into(),
        connections: 4,
        arrivals: uqsim_core::client::ArrivalProcess::trace(
            (0..300).map(|i| f64::from(i) * 1e-3).collect(),
        ),
        mix: RequestMix::single(uqsim_core::ids::RequestTypeId::from_raw(0)),
        request_size: Distribution::constant(512.0),
        closed_loop: None,
        timeout_s: Some(5e-3),
    };
    let mut sim = build(spec, 50e-3, 32);
    sim.run_for(SimDuration::from_secs(3));

    assert_eq!(sim.generated(), 300);
    assert!(sim.timeouts() > 200, "timeouts {}", sim.timeouts());
    // The server kept finishing abandoned work after the client moved on.
    assert!(sim.completed_after_timeout() > 0);
    // Pool-occupancy regression: after the burst drains, every client
    // connection slot is free again and nothing is left in flight. A
    // leaked slot would stay busy forever (the late response was already
    // discarded, so nothing else can ever release it).
    assert_eq!(
        sim.busy_client_connections(),
        0,
        "timed-out requests leaked client connection slots"
    );
    assert_eq!(sim.live_requests(), 0, "requests stuck in flight");
    // Timeouts are a distinct latency outcome, pinned at exactly the
    // deadline; the success-path summary never sees them.
    let t = sim.timeout_latency_summary();
    assert!(t.count > 50, "timeout outcome samples {}", t.count);
    assert!(
        (t.mean - 5e-3).abs() < 1e-6 && (t.max - 5e-3).abs() < 1e-6,
        "timeout latency must sit at the deadline: mean {} max {}",
        t.mean,
        t.max
    );
    assert!(
        sim.latency_summary().max <= 5e-3 + 1e-6,
        "success summary contains a timed-out call: max {}",
        sim.latency_summary().max
    );
}

#[test]
fn traces_record_spans_in_order() {
    let spec = ClientSpec::open_loop(
        "c",
        2_000.0,
        64,
        uqsim_core::ids::RequestTypeId::from_raw(0),
    );
    let mut sim = build(spec, 100e-6, 2);
    sim.enable_tracing(10, 100);
    sim.run_for(SimDuration::from_secs(2));
    let traces = sim.traces();
    assert!(!traces.is_empty() && traces.len() <= 100);
    for t in traces {
        assert_eq!(t.request_type, "get");
        assert_eq!(t.spans.len(), 1, "one service node per request");
        let span = &t.spans[0];
        assert_eq!(span.instance, "svc0");
        assert!(t.submitted <= span.enter);
        assert!(span.enter <= span.exit);
        assert!(span.exit <= t.completed);
    }
    // Traces are serializable (export format).
    let json = serde_json::to_string(&traces[0]).unwrap();
    assert!(json.contains("svc0"));
}

#[test]
fn stage_stats_show_batching_under_load() {
    let spec = ClientSpec::open_loop(
        "c",
        15_000.0,
        256,
        uqsim_core::ids::RequestTypeId::from_raw(0),
    );
    let mut sim = build(spec, 100e-6, 2);
    sim.run_for(SimDuration::from_secs(2));
    let stats = sim.instance_stage_stats(InstanceId::from_raw(0));
    assert_eq!(stats.len(), 2);
    assert_eq!(stats[0].name, "epoll");
    assert!(stats[0].invocations > 0);
    assert!(stats[0].jobs >= stats[0].invocations);
    // At 75% utilization the epoll stage visibly batches.
    assert!(
        stats[0].mean_batch > 1.05,
        "epoll should batch under load: mean batch {}",
        stats[0].mean_batch
    );
    // Single-discipline stage never batches.
    assert!((stats[1].mean_batch - 1.0).abs() < 1e-9);
    assert!(stats[1].busy > SimDuration::ZERO);
}

#[test]
fn request_sizes_slow_byte_proportional_stages() {
    // Same scenario, but the proc stage charges 50ns/byte; big payloads
    // must raise the mean latency accordingly.
    let run = |bytes: f64| {
        let mut b = ScenarioBuilder::new(4);
        b.warmup(SimDuration::from_millis(200));
        let m = b.add_machine(MachineSpec {
            name: "m".into(),
            cores: 2,
            dvfs: DvfsSpec::fixed(2.6),
            network: NetworkSpec::passthrough(0.0),
            power: Default::default(),
        });
        let s = b.add_service(ServiceModel::new(
            "svc",
            vec![StageSpec::new(
                "read",
                QueueDiscipline::Single,
                ServiceTimeModel::per_job(Distribution::constant(10e-6), 2.6).with_per_byte(50e-9),
            )],
            vec![ExecPath::new("p", vec![StageId::from_raw(0)])],
        ));
        let i = b.add_instance("svc0", s, m, 2, ExecSpec::Simple).unwrap();
        let mut node = PathNodeSpec::request("svc", s, i);
        node.children = vec![PathNodeId::from_raw(1)];
        let sink = PathNodeSpec::client_sink(PathNodeId::from_raw(0));
        let ty = b
            .add_request_type(RequestType::new(
                "get",
                vec![node, sink],
                PathNodeId::from_raw(0),
            ))
            .unwrap();
        b.add_client(
            ClientSpec::open_loop("c", 1_000.0, 64, ty)
                .with_request_size(Distribution::constant(bytes)),
            vec![i],
        );
        let mut sim = b.build().unwrap();
        sim.run_for(SimDuration::from_secs(3));
        sim.latency_summary().mean
    };
    let small = run(100.0); // +5us
    let large = run(4_000.0); // +200us
    assert!(
        large - small > 150e-6,
        "4KB payloads must add ~195us over 100B: {small} vs {large}"
    );
}

#[test]
fn nic_bandwidth_adds_transmission_time() {
    let run = |bandwidth: Option<f64>| {
        let mut b = ScenarioBuilder::new(4);
        b.warmup(SimDuration::from_millis(100));
        let mut net = NetworkSpec::passthrough(10e-6);
        net.bandwidth_gbps = bandwidth;
        let m = b.add_machine(MachineSpec {
            name: "m".into(),
            cores: 2,
            dvfs: DvfsSpec::fixed(2.6),
            network: net,
            power: Default::default(),
        });
        let s = b.add_service(ServiceModel::new(
            "svc",
            vec![StageSpec::new(
                "proc",
                QueueDiscipline::Single,
                ServiceTimeModel::per_job(Distribution::constant(10e-6), 2.6),
            )],
            vec![ExecPath::new("p", vec![StageId::from_raw(0)])],
        ));
        let i = b.add_instance("svc0", s, m, 2, ExecSpec::Simple).unwrap();
        let mut node = PathNodeSpec::request("svc", s, i);
        node.children = vec![PathNodeId::from_raw(1)];
        let sink = PathNodeSpec::client_sink(PathNodeId::from_raw(0));
        let ty = b
            .add_request_type(RequestType::new(
                "get",
                vec![node, sink],
                PathNodeId::from_raw(0),
            ))
            .unwrap();
        b.add_client(
            ClientSpec::open_loop("c", 500.0, 64, ty)
                .with_request_size(Distribution::constant(12_500.0)), // 100 kbit
            vec![i],
        );
        let mut sim = b.build().unwrap();
        sim.run_for(SimDuration::from_secs(2));
        sim.latency_summary().mean
    };
    let infinite = run(None);
    let one_gbps = run(Some(1.0)); // 100kbit / 1Gbps = 100us extra
    assert!(
        one_gbps - infinite > 80e-6,
        "1Gbps must add ~100us for 12.5KB: {infinite} vs {one_gbps}"
    );
}

#[test]
fn stage_profiling_feeds_back_as_empirical_model() {
    // The paper's histogram pipeline: profile a running stage, build a
    // histogram, and use it as an empirical service-time distribution.
    let spec = ClientSpec::open_loop(
        "c",
        5_000.0,
        128,
        uqsim_core::ids::RequestTypeId::from_raw(0),
    );
    let mut sim = build(spec, 80e-6, 2);
    sim.enable_stage_profiling(InstanceId::from_raw(0));
    sim.run_for(SimDuration::from_secs(2));
    let samples = sim.stage_profile(InstanceId::from_raw(0), 1);
    assert!(
        samples.len() > 1_000,
        "profiled {} invocations",
        samples.len()
    );
    let emp_mean = samples.iter().sum::<f64>() / samples.len() as f64;
    assert!(
        (emp_mean - 80e-6).abs() / 80e-6 < 0.1,
        "profiled mean {emp_mean}"
    );

    // Round trip through a histogram.
    let h = uqsim_core::histogram::Histogram::from_samples(samples, 100).unwrap();
    assert!((h.mean() - emp_mean).abs() / emp_mean < 0.05);
    let d = Distribution::Empirical { histogram: h };
    assert!(d.validate().is_ok());

    // A simulator driven by the empirical distribution lands in the same
    // latency regime as the parametric original.
    let spec2 = ClientSpec::open_loop(
        "c",
        5_000.0,
        128,
        uqsim_core::ids::RequestTypeId::from_raw(0),
    );
    let mut b = ScenarioBuilder::new(10);
    b.warmup(SimDuration::from_millis(200));
    let m = b.add_machine(MachineSpec {
        name: "m".into(),
        cores: 2,
        dvfs: DvfsSpec::fixed(2.6),
        network: NetworkSpec::passthrough(10e-6),
        power: Default::default(),
    });
    let s = b.add_service(ServiceModel::new(
        "svc",
        vec![StageSpec::new(
            "proc",
            QueueDiscipline::Single,
            ServiceTimeModel::per_job(d, 2.6),
        )],
        vec![ExecPath::new("p", vec![StageId::from_raw(0)])],
    ));
    let i = b.add_instance("svc0", s, m, 2, ExecSpec::Simple).unwrap();
    let mut node = PathNodeSpec::request("svc", s, i);
    node.children = vec![PathNodeId::from_raw(1)];
    let sink = PathNodeSpec::client_sink(PathNodeId::from_raw(0));
    let ty = b
        .add_request_type(RequestType::new(
            "get",
            vec![node, sink],
            PathNodeId::from_raw(0),
        ))
        .unwrap();
    let mut spec2 = spec2;
    spec2.mix = RequestMix::single(ty);
    b.add_client(spec2, vec![i]);
    let mut sim2 = b.build().unwrap();
    sim2.run_for(SimDuration::from_secs(2));
    let a = sim.latency_summary().mean;
    let b2 = sim2.latency_summary().mean;
    assert!(
        (a - b2).abs() / a < 0.35,
        "parametric {a} vs empirical {b2}"
    );
}

#[test]
fn scheduled_dvfs_slows_the_service() {
    let spec = ClientSpec::open_loop(
        "c",
        2_000.0,
        64,
        uqsim_core::ids::RequestTypeId::from_raw(0),
    );
    let mut sim = build(spec, 100e-6, 2);
    // The machine is fixed-frequency (2.6 only), so snapping keeps 2.6;
    // use instance freq setter semantics instead via schedule on a DVFS-
    // capable scenario.
    let mut b = ScenarioBuilder::new(3);
    b.warmup(SimDuration::from_millis(100));
    let m = b.add_machine(MachineSpec {
        name: "m".into(),
        cores: 2,
        dvfs: DvfsSpec::range(1.3, 2.6, 1.3),
        network: NetworkSpec::passthrough(0.0),
        power: Default::default(),
    });
    let s = b.add_service(ServiceModel::new(
        "svc",
        vec![StageSpec::new(
            "proc",
            QueueDiscipline::Single,
            ServiceTimeModel::per_job(Distribution::constant(100e-6), 2.6),
        )],
        vec![ExecPath::new("p", vec![StageId::from_raw(0)])],
    ));
    let i = b.add_instance("svc0", s, m, 2, ExecSpec::Simple).unwrap();
    let mut node = PathNodeSpec::request("svc", s, i);
    node.children = vec![PathNodeId::from_raw(1)];
    let sink = PathNodeSpec::client_sink(PathNodeId::from_raw(0));
    let ty = b
        .add_request_type(RequestType::new(
            "get",
            vec![node, sink],
            PathNodeId::from_raw(0),
        ))
        .unwrap();
    b.add_client(ClientSpec::open_loop("c", 1_000.0, 64, ty), vec![i]);
    let mut slow = b.build().unwrap();
    slow.schedule_dvfs(
        uqsim_core::time::SimTime::from_secs_f64(0.0),
        uqsim_core::ids::MachineId::from_raw(0),
        None,
        1.3,
    );
    slow.run_for(SimDuration::from_secs(2));
    // At 1.3 GHz the 100us (at 2.6) service takes 200us.
    let p50 = slow.latency_summary().p50;
    assert!(
        p50 > 180e-6,
        "halved frequency must double service time: p50 {p50}"
    );

    // Sanity on the untouched scenario.
    sim.run_for(SimDuration::from_secs(1));
    assert!(sim.latency_summary().p50 < 180e-6);
}

#[test]
fn pool_stats_report_backpressure() {
    // Build a two-instance chain with a tiny pool and overload it.
    let mut b = ScenarioBuilder::new(6);
    b.warmup(SimDuration::from_millis(100));
    let m = b.add_machine(MachineSpec {
        name: "m".into(),
        cores: 4,
        dvfs: DvfsSpec::fixed(2.6),
        network: NetworkSpec::passthrough(5e-6),
        power: Default::default(),
    });
    let s = b.add_service(ServiceModel::new(
        "svc",
        vec![StageSpec::new(
            "proc",
            QueueDiscipline::Single,
            ServiceTimeModel::per_job(Distribution::exponential(200e-6), 2.6),
        )],
        vec![ExecPath::new("p", vec![StageId::from_raw(0)])],
    ));
    let front = b.add_instance("front", s, m, 1, ExecSpec::Simple).unwrap();
    let back = b.add_instance("back", s, m, 1, ExecSpec::Simple).unwrap();
    b.add_pool(front, back, 2).unwrap();
    let mut n0 = PathNodeSpec::request("front", s, front);
    n0.children = vec![PathNodeId::from_raw(1)];
    let mut n1 = PathNodeSpec::request("back", s, back);
    n1.children = vec![PathNodeId::from_raw(2)];
    let mut n2 = PathNodeSpec::reply_to_parent("front_reply", s, PathNodeId::from_raw(0));
    n2.children = vec![PathNodeId::from_raw(3)];
    let sink = PathNodeSpec::client_sink(PathNodeId::from_raw(0));
    let ty = b
        .add_request_type(RequestType::new(
            "r",
            vec![n0, n1, n2, sink],
            PathNodeId::from_raw(0),
        ))
        .unwrap();
    b.add_client(ClientSpec::open_loop("c", 6_000.0, 512, ty), vec![front]);
    let mut sim = b.build().unwrap();
    sim.run_for(SimDuration::from_secs(1));
    let stats = sim.pool_stats();
    assert_eq!(stats.len(), 1);
    let (up, down, free, waiters) = stats[0];
    assert_eq!(up, front);
    assert_eq!(down, back);
    // The back tier (5k capacity at 200us) is overloaded at 6k: the pool
    // of 2 connections is exhausted and jobs wait.
    assert_eq!(free, 0, "pool should be exhausted");
    assert!(waiters > 0, "jobs should be waiting for connections");
}

#[test]
fn energy_accounting_is_cubic_in_frequency() {
    // Two identical runs at max and at half frequency: the same number of
    // requests costs 2x the busy time but (1/2)^3 the dynamic power, so
    // the dynamic energy at half frequency is 1/4 of the max-frequency
    // energy; total energy (with the static floor) must decrease.
    let run = |freq: f64| {
        let mut b = ScenarioBuilder::new(12);
        b.warmup(SimDuration::from_millis(100));
        let m = b.add_machine(MachineSpec {
            name: "m".into(),
            cores: 2,
            dvfs: DvfsSpec::range(1.3, 2.6, 1.3),
            network: NetworkSpec::passthrough(0.0),
            power: uqsim_core::machine::PowerModel {
                idle_w: 2.0,
                dyn_w: 8.0,
            },
        });
        let s = b.add_service(ServiceModel::new(
            "svc",
            vec![StageSpec::new(
                "proc",
                QueueDiscipline::Single,
                ServiceTimeModel::per_job(Distribution::constant(100e-6), 2.6),
            )],
            vec![ExecPath::new("p", vec![StageId::from_raw(0)])],
        ));
        let i = b.add_instance("svc0", s, m, 2, ExecSpec::Simple).unwrap();
        let mut node = PathNodeSpec::request("svc", s, i);
        node.children = vec![PathNodeId::from_raw(1)];
        let sink = PathNodeSpec::client_sink(PathNodeId::from_raw(0));
        let ty = b
            .add_request_type(RequestType::new(
                "get",
                vec![node, sink],
                PathNodeId::from_raw(0),
            ))
            .unwrap();
        b.add_client(ClientSpec::open_loop("c", 1_000.0, 64, ty), vec![i]);
        let mut sim = b.build().unwrap();
        sim.set_instance_freq(InstanceId::from_raw(0), freq);
        sim.run_for(SimDuration::from_secs(2));
        (sim.cluster_energy_j(), sim.completed())
    };
    let (e_fast, n_fast) = run(2.6);
    let (e_slow, n_slow) = run(1.3);
    // Same work completed.
    assert!((n_fast as f64 - n_slow as f64).abs() / (n_fast as f64) < 0.02);
    // Static floor: 2 cores * 2W * 2s = 8J in both runs.
    let static_j = 8.0;
    let dyn_fast = e_fast - static_j;
    let dyn_slow = e_slow - static_j;
    // Busy time doubles, dynamic power is 1/8 => dynamic energy ~ 1/4.
    let ratio = dyn_slow / dyn_fast;
    assert!(
        (ratio - 0.25).abs() < 0.05,
        "dynamic energy ratio {ratio} should be ~0.25 (fast {dyn_fast}J, slow {dyn_slow}J)"
    );
    assert!(e_slow < e_fast, "DVFS must save energy");
}

#[test]
fn trace_replay_reproduces_exact_arrivals() {
    use uqsim_core::client::ArrivalProcess;
    // Five arrivals at known instants; generation must stop afterwards.
    let timestamps = vec![0.010, 0.020, 0.025, 0.100, 0.500];
    let mut spec = ClientSpec::open_loop(
        "replay",
        1.0,
        8,
        uqsim_core::ids::RequestTypeId::from_raw(0),
    );
    spec.arrivals = ArrivalProcess::trace(timestamps.clone());
    let mut sim = build(spec, 10e-6, 2);
    sim.run_for(SimDuration::from_secs(2));
    assert_eq!(
        sim.generated(),
        timestamps.len() as u64,
        "one request per trace entry"
    );
    assert_eq!(sim.completed(), timestamps.len() as u64);
    // Running longer generates nothing more.
    sim.run_for(SimDuration::from_secs(2));
    assert_eq!(sim.generated(), timestamps.len() as u64);
}

#[test]
fn trace_validation_rejects_bad_traces() {
    use uqsim_core::client::ArrivalProcess;
    assert!(ArrivalProcess::trace(vec![]).validate().is_err());
    assert!(ArrivalProcess::trace(vec![1.0, 0.5]).validate().is_err());
    assert!(ArrivalProcess::trace(vec![-1.0]).validate().is_err());
    assert!(ArrivalProcess::trace(vec![0.0, 0.0, 1.0])
        .validate()
        .is_ok());
}

/// A two-request-type scenario (both served by the same instance) for
/// typed-trace replay tests.
fn build_two_types(spec: ClientSpec) -> Simulator {
    let mut b = ScenarioBuilder::new(9);
    b.warmup(SimDuration::ZERO);
    let m = b.add_machine(MachineSpec {
        name: "m".into(),
        cores: 4,
        dvfs: DvfsSpec::fixed(2.6),
        network: NetworkSpec::passthrough(10e-6),
        power: Default::default(),
    });
    let s = b.add_service(ServiceModel::new(
        "svc",
        vec![StageSpec::new(
            "proc",
            QueueDiscipline::Single,
            ServiceTimeModel::per_job(Distribution::constant(20e-6), 2.6),
        )],
        vec![ExecPath::new("p", vec![StageId::from_raw(0)])],
    ));
    let i = b.add_instance("svc0", s, m, 4, ExecSpec::Simple).unwrap();
    for name in ["alpha", "beta"] {
        let mut node = PathNodeSpec::request(name, s, i);
        node.children = vec![PathNodeId::from_raw(1)];
        let sink = PathNodeSpec::client_sink(PathNodeId::from_raw(0));
        b.add_request_type(RequestType::new(
            name,
            vec![node, sink],
            PathNodeId::from_raw(0),
        ))
        .unwrap();
    }
    b.add_client(spec, vec![i]);
    b.build().unwrap()
}

#[test]
fn typed_trace_dictates_request_types() {
    use uqsim_core::client::ArrivalProcess;
    // 90 arrivals: every third request is a "beta", the rest "alpha" —
    // exactly, not in distribution.
    let n = 90;
    let timestamps: Vec<f64> = (0..n).map(|i| f64::from(i) * 1e-3).collect();
    let types: Vec<String> = (0..n)
        .map(|i| {
            if i % 3 == 2 {
                "beta".into()
            } else {
                "alpha".into()
            }
        })
        .collect();
    let mut spec = ClientSpec::open_loop(
        "replay",
        1.0,
        8,
        uqsim_core::ids::RequestTypeId::from_raw(0),
    );
    spec.arrivals = ArrivalProcess::Trace { timestamps, types };
    let mut sim = build_two_types(spec);
    sim.run_for(SimDuration::from_secs(1));
    assert_eq!(sim.generated(), n as u64);
    let alpha = sim.type_latency_summary(uqsim_core::ids::RequestTypeId::from_raw(0));
    let beta = sim.type_latency_summary(uqsim_core::ids::RequestTypeId::from_raw(1));
    assert_eq!(alpha.count, 60, "alpha count {}", alpha.count);
    assert_eq!(beta.count, 30, "beta count {}", beta.count);
}

#[test]
fn typed_trace_with_unknown_type_fails_to_build() {
    use uqsim_core::client::ArrivalProcess;
    let mut b = ScenarioBuilder::new(1);
    let m = b.add_machine(MachineSpec {
        name: "m".into(),
        cores: 2,
        dvfs: DvfsSpec::fixed(2.6),
        network: NetworkSpec::passthrough(10e-6),
        power: Default::default(),
    });
    let s = b.add_service(ServiceModel::new(
        "svc",
        vec![StageSpec::new(
            "proc",
            QueueDiscipline::Single,
            ServiceTimeModel::per_job(Distribution::constant(20e-6), 2.6),
        )],
        vec![ExecPath::new("p", vec![StageId::from_raw(0)])],
    ));
    let i = b.add_instance("svc0", s, m, 2, ExecSpec::Simple).unwrap();
    let mut node = PathNodeSpec::request("get", s, i);
    node.children = vec![PathNodeId::from_raw(1)];
    let sink = PathNodeSpec::client_sink(PathNodeId::from_raw(0));
    let ty = b
        .add_request_type(RequestType::new(
            "get",
            vec![node, sink],
            PathNodeId::from_raw(0),
        ))
        .unwrap();
    let mut spec = ClientSpec::open_loop("c", 1.0, 4, ty);
    spec.arrivals = ArrivalProcess::Trace {
        timestamps: vec![0.0, 1e-3],
        types: vec!["get".into(), "nonexistent".into()],
    };
    b.add_client(spec, vec![i]);
    let err = b.build().unwrap_err().to_string();
    assert!(err.contains("nonexistent"), "error names the type: {err}");
}

#[test]
fn oversized_instance_is_a_config_error_not_a_panic() {
    // 65 threads exceed the 64-bit idle mask; the builder must refuse with
    // an error naming the instance instead of panicking (oversized
    // generated scenarios surface cleanly).
    let mut b = ScenarioBuilder::new(1);
    let m = b.add_machine(MachineSpec {
        name: "big".into(),
        cores: 80,
        dvfs: DvfsSpec::fixed(2.6),
        network: NetworkSpec::passthrough(10e-6),
        power: Default::default(),
    });
    let s = b.add_service(ServiceModel::new(
        "svc",
        vec![StageSpec::new(
            "proc",
            QueueDiscipline::Single,
            ServiceTimeModel::per_job(Distribution::constant(20e-6), 2.6),
        )],
        vec![ExecPath::new("p", vec![StageId::from_raw(0)])],
    ));
    let i = b
        .add_instance(
            "wide0",
            s,
            m,
            4,
            ExecSpec::MultiThreaded {
                threads: 65,
                ctx_switch: SimDuration::from_micros(2),
            },
        )
        .unwrap();
    let mut node = PathNodeSpec::request("get", s, i);
    node.children = vec![PathNodeId::from_raw(1)];
    let sink = PathNodeSpec::client_sink(PathNodeId::from_raw(0));
    let ty = b
        .add_request_type(RequestType::new(
            "get",
            vec![node, sink],
            PathNodeId::from_raw(0),
        ))
        .unwrap();
    b.add_client(ClientSpec::open_loop("c", 100.0, 4, ty), vec![i]);
    let err = b.build().unwrap_err().to_string();
    assert!(
        err.contains("wide0") && err.contains("64"),
        "error names the instance and the limit: {err}"
    );
}
