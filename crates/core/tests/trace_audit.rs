//! Trace-auditor integration tests on adversarial scenarios: a
//! fan-out/fan-in DAG (the paper's Fig. 10 shape), connection-pool
//! exhaustion, and multi-threaded execution with context switching. Each
//! scenario runs with span tracing enabled and must audit with zero
//! invariant violations.

use uqsim_core::builder::{ExecSpec, ScenarioBuilder};
use uqsim_core::client::ClientSpec;
use uqsim_core::dist::Distribution;
use uqsim_core::ids::{PathNodeId, ServiceId, StageId};
use uqsim_core::machine::{DvfsSpec, MachineSpec, NetworkSpec};
use uqsim_core::path::{
    InstanceSelect, LinkKind, NodeTarget, PathNodeSpec, PathSelect, RequestType,
};
use uqsim_core::service::{ExecPath, ServiceModel};
use uqsim_core::stage::{QueueDiscipline, ServiceTimeModel, StageSpec};
use uqsim_core::time::SimDuration;
use uqsim_core::trace::TraceEvent;
use uqsim_core::Simulator;

fn nid(i: usize) -> PathNodeId {
    PathNodeId::from_raw(i as u32)
}

fn service_node(
    name: &str,
    service: ServiceId,
    instance: InstanceSelect,
    link: LinkKind,
    children: Vec<PathNodeId>,
) -> PathNodeSpec {
    PathNodeSpec {
        name: name.into(),
        target: NodeTarget::Service {
            service,
            instance,
            exec_path: PathSelect::Fixed { index: 0 },
        },
        children,
        link,
        block_thread_until: None,
        pin_thread_of: None,
        fan_in_policy: Default::default(),
    }
}

fn single_stage_service(name: &str, mean_s: f64) -> ServiceModel {
    ServiceModel::new(
        name,
        vec![StageSpec::new(
            "proc",
            QueueDiscipline::Single,
            ServiceTimeModel::per_job(Distribution::exponential(mean_s), 2.6),
        )],
        vec![ExecPath::new("p", vec![StageId::from_raw(0)])],
    )
}

/// Runs the audit and asserts zero violations plus a non-trivial trace.
fn assert_clean(sim: &Simulator) {
    let log = sim.span_log().expect("span tracing enabled");
    assert_eq!(log.dropped(), 0, "event capacity too small for this test");
    let report = sim.audit_trace().expect("span tracing enabled");
    assert!(report.is_clean(), "violations: {:#?}", report.violations);
    assert!(report.spans_checked > 0, "no stage spans correlated");
}

/// Fig. 10 shape: a frontend fans out to two parallel backends whose
/// replies synchronize at a join node (fan-in 2) before answering the
/// client.
#[test]
fn fan_out_fan_in_dag_audits_clean() {
    let mut b = ScenarioBuilder::new(21);
    b.warmup(SimDuration::from_millis(100));
    let m = b.add_machine(MachineSpec {
        name: "m".into(),
        cores: 6,
        dvfs: DvfsSpec::fixed(2.6),
        network: NetworkSpec::passthrough(5e-6),
        power: Default::default(),
    });
    let s_front = b.add_service(single_stage_service("front", 30e-6));
    let s_back = b.add_service(single_stage_service("back", 80e-6));
    let i_front = b
        .add_instance("front0", s_front, m, 2, ExecSpec::Simple)
        .unwrap();
    let i_b = b
        .add_instance("back_b", s_back, m, 2, ExecSpec::Simple)
        .unwrap();
    let i_c = b
        .add_instance("back_c", s_back, m, 2, ExecSpec::Simple)
        .unwrap();

    // 0 root (front) → {1 b, 2 c} → 3 join (front, fan-in 2) → 4 sink.
    let root = service_node(
        "root",
        s_front,
        InstanceSelect::Fixed { instance: i_front },
        LinkKind::Request,
        vec![nid(1), nid(2)],
    );
    let node_b = service_node(
        "b",
        s_back,
        InstanceSelect::Fixed { instance: i_b },
        LinkKind::Request,
        vec![nid(3)],
    );
    let node_c = service_node(
        "c",
        s_back,
        InstanceSelect::Fixed { instance: i_c },
        LinkKind::Request,
        vec![nid(3)],
    );
    let join = service_node(
        "join",
        s_front,
        InstanceSelect::SameAsNode { node: nid(0) },
        LinkKind::ReplyVia {
            entries: vec![(nid(1), nid(1)), (nid(2), nid(2))],
        },
        vec![nid(4)],
    );
    let sink = PathNodeSpec::client_sink(nid(0));
    let ty = b
        .add_request_type(RequestType::new(
            "fanout",
            vec![root, node_b, node_c, join, sink],
            nid(0),
        ))
        .unwrap();
    b.add_client(ClientSpec::open_loop("c", 2_000.0, 64, ty), vec![i_front]);

    let mut sim = b.build().unwrap();
    sim.enable_span_tracing(2_000_000);
    sim.run_for(SimDuration::from_secs(1));
    assert!(sim.completed() > 500, "completed {}", sim.completed());
    assert_clean(&sim);

    // The join must produce fan-in events: two arrivals per request, the
    // second one firing.
    let log = sim.span_log().unwrap();
    let mut arrivals = 0u64;
    let mut fired = 0u64;
    for ev in log.events() {
        if let TraceEvent::FanIn {
            node,
            fan_in,
            fired: f,
            ..
        } = ev
        {
            assert_eq!(*node, nid(3), "only the join has fan-in > 1");
            assert_eq!(*fan_in, 2);
            arrivals += 1;
            fired += u64::from(*f);
        }
    }
    assert!(fired > 500, "join fired {fired} times");
    assert!(
        arrivals >= 2 * fired,
        "each firing needs two arrivals: {arrivals} arrivals, {fired} fired"
    );
}

/// A two-instance chain behind a pool of 2 connections, overloaded so the
/// pool is continuously exhausted: block/grant events must appear and the
/// pool discipline must still audit clean.
#[test]
fn pool_exhaustion_audits_clean() {
    let mut b = ScenarioBuilder::new(6);
    b.warmup(SimDuration::from_millis(100));
    let m = b.add_machine(MachineSpec {
        name: "m".into(),
        cores: 4,
        dvfs: DvfsSpec::fixed(2.6),
        network: NetworkSpec::passthrough(5e-6),
        power: Default::default(),
    });
    let s = b.add_service(single_stage_service("svc", 200e-6));
    let front = b.add_instance("front", s, m, 1, ExecSpec::Simple).unwrap();
    let back = b.add_instance("back", s, m, 1, ExecSpec::Simple).unwrap();
    b.add_pool(front, back, 2).unwrap();
    let mut n0 = service_node(
        "front",
        s,
        InstanceSelect::Fixed { instance: front },
        LinkKind::Request,
        vec![nid(1)],
    );
    n0.children = vec![nid(1)];
    let n1 = service_node(
        "back",
        s,
        InstanceSelect::Fixed { instance: back },
        LinkKind::Request,
        vec![nid(2)],
    );
    let n2 = service_node(
        "front_reply",
        s,
        InstanceSelect::SameAsNode { node: nid(0) },
        LinkKind::ReplyToParent,
        vec![nid(3)],
    );
    let sink = PathNodeSpec::client_sink(nid(0));
    let ty = b
        .add_request_type(RequestType::new("r", vec![n0, n1, n2, sink], nid(0)))
        .unwrap();
    b.add_client(ClientSpec::open_loop("c", 6_000.0, 512, ty), vec![front]);

    let mut sim = b.build().unwrap();
    sim.enable_span_tracing(4_000_000);
    sim.run_for(SimDuration::from_secs(1));
    assert_clean(&sim);

    let log = sim.span_log().unwrap();
    let mut blocks = 0u64;
    let mut grants = 0u64;
    let mut acquires = 0u64;
    let mut releases = 0u64;
    for ev in log.events() {
        match ev {
            TraceEvent::PoolBlock { .. } => blocks += 1,
            TraceEvent::PoolGrant { .. } => grants += 1,
            TraceEvent::PoolAcquire { .. } => acquires += 1,
            TraceEvent::PoolRelease { .. } => releases += 1,
            _ => {}
        }
    }
    // The back tier (5k capacity at 200us) is overloaded at 6k qps: jobs
    // must block on the exhausted pool and be granted connections later.
    assert!(blocks > 100, "pool blocks {blocks}");
    assert!(grants > 100, "pool grants {grants}");
    assert!(acquires > 0, "pool acquires {acquires}");
    // Every grant follows a release; direct acquires release too.
    assert!(releases >= grants, "releases {releases} vs grants {grants}");
}

/// Four worker threads contending for two cores with a context-switch
/// penalty: per-core non-overlap must hold even with threads migrating
/// between cores.
#[test]
fn multithreaded_ctx_switch_audits_clean() {
    let mut b = ScenarioBuilder::new(17);
    b.warmup(SimDuration::from_millis(100));
    let m = b.add_machine(MachineSpec {
        name: "m".into(),
        cores: 2,
        dvfs: DvfsSpec::fixed(2.6),
        network: NetworkSpec::passthrough(5e-6),
        power: Default::default(),
    });
    let s = b.add_service(single_stage_service("svc", 100e-6));
    let i = b
        .add_instance(
            "svc0",
            s,
            m,
            2,
            ExecSpec::MultiThreaded {
                threads: 4,
                ctx_switch: SimDuration::from_micros(2),
            },
        )
        .unwrap();
    let node = service_node(
        "svc",
        s,
        InstanceSelect::Fixed { instance: i },
        LinkKind::Request,
        vec![nid(1)],
    );
    let sink = PathNodeSpec::client_sink(nid(0));
    let ty = b
        .add_request_type(RequestType::new("get", vec![node, sink], nid(0)))
        .unwrap();
    b.add_client(ClientSpec::open_loop("c", 8_000.0, 64, ty), vec![i]);

    let mut sim = b.build().unwrap();
    sim.enable_span_tracing(2_000_000);
    sim.run_for(SimDuration::from_secs(1));
    assert!(sim.completed() > 1_000, "completed {}", sim.completed());
    assert_clean(&sim);

    // Both cores and several threads must actually have serviced batches.
    let log = sim.span_log().unwrap();
    let mut cores = std::collections::HashSet::new();
    let mut threads = std::collections::HashSet::new();
    for ev in log.events() {
        if let TraceEvent::BatchStart { core, thread, .. } = ev {
            cores.insert(*core);
            threads.insert(*thread);
        }
    }
    assert_eq!(cores.len(), 2, "both cores used: {cores:?}");
    assert!(
        threads.len() >= 2,
        "thread contention exercised: {threads:?}"
    );
}

/// Span-derived per-request windows agree with the old sampled-trace API:
/// every span of a traced request falls inside its submitted..completed
/// window (cross-validation of the two tracing subsystems).
#[test]
fn span_log_agrees_with_sampled_traces() {
    let mut b = ScenarioBuilder::new(9);
    b.warmup(SimDuration::from_millis(100));
    let m = b.add_machine(MachineSpec {
        name: "m".into(),
        cores: 2,
        dvfs: DvfsSpec::fixed(2.6),
        network: NetworkSpec::passthrough(10e-6),
        power: Default::default(),
    });
    let s = b.add_service(single_stage_service("svc", 100e-6));
    let i = b.add_instance("svc0", s, m, 2, ExecSpec::Simple).unwrap();
    let node = service_node(
        "svc",
        s,
        InstanceSelect::Fixed { instance: i },
        LinkKind::Request,
        vec![nid(1)],
    );
    let sink = PathNodeSpec::client_sink(nid(0));
    let ty = b
        .add_request_type(RequestType::new("get", vec![node, sink], nid(0)))
        .unwrap();
    b.add_client(ClientSpec::open_loop("c", 2_000.0, 64, ty), vec![i]);
    let mut sim = b.build().unwrap();
    sim.enable_tracing(10, 100);
    sim.enable_span_tracing(2_000_000);
    sim.run_for(SimDuration::from_secs(1));
    assert_clean(&sim);
    assert!(!sim.traces().is_empty(), "sampled traces recorded");

    // Span end times per request bound the sampled spans: both subsystems
    // observed the same executions, so every sampled span's [enter, exit]
    // must appear among the span log's batch intervals for that instance.
    let spans = sim.span_log().unwrap().spans();
    for t in sim.traces() {
        let covered = spans.iter().any(|s| {
            s.enqueue_t >= t.submitted
                && s.end_t <= t.completed
                && s.end_t.as_nanos() == t.spans[0].exit.as_nanos()
        });
        assert!(covered, "sampled trace has no matching stage span: {t:?}");
    }
}
