//! Differential tests of the partitioned execution engine against the
//! DESIGN.md §11 execution-model spec. Each test names the spec invariant
//! it checks (**P1**–**P7**); together they enforce the module's headline
//! guarantee: merged outputs are byte-identical at any shard count.

use proptest::prelude::*;
use uqsim_core::config::ScenarioConfig;
use uqsim_core::dist::Distribution;
use uqsim_core::fault::FaultPlan;
use uqsim_core::partition::{
    cell_seed, run_partitioned, split_cells, LookaheadMatrix, PartitionOptions, PartitionPlan,
    ShardClocks,
};
use uqsim_core::rng::RngFactory;
use uqsim_core::run::EXAMPLE_SCENARIO;
use uqsim_core::telemetry::TelemetryConfig;
use uqsim_core::time::{SimDuration, SimTime};

/// A cluster of `pods` independent single-machine pods. Pod 1 (when
/// present) additionally hosts a second instance and a connection pool on
/// its machine, so one middle cell emits the `uqsim_pool_*` metric
/// families that every other cell lacks — the case that forces the
/// registry merge to walk families canonically instead of positionally.
fn cluster_json(pods: usize) -> String {
    let mut machines = Vec::new();
    let mut instances = Vec::new();
    let mut pools = Vec::new();
    let mut request_types = Vec::new();
    let mut clients = Vec::new();
    for i in 0..pods {
        // Pod 1's machine needs a third core for its aux instance.
        let cores = if i == 1 { 3 } else { 2 };
        machines.push(format!(
            r#"{{ "name": "m{i}", "cores": {cores},
      "dvfs": {{ "levels_ghz": [2.6] }},
      "network": {{ "irq_cores": 1,
        "rx_time": {{ "type": "exponential", "mean": 0.0000166 }},
        "wire_latency": {{ "type": "constant", "value": 0.00002 }} }} }}"#
        ));
        instances.push(format!(
            r#"{{ "name": "api{i}", "service": "api", "machine": "m{i}",
      "cores": 1, "exec": {{ "type": "simple" }} }}"#
        ));
        request_types.push(format!(
            r#"{{ "name": "get{i}",
      "nodes": [
        {{ "name": "front",
          "target": {{ "type": "service", "service": "api",
            "instance": {{ "type": "fixed", "name": "api{i}" }},
            "exec_path": "default" }},
          "children": ["sink"] }},
        {{ "name": "sink", "target": {{ "type": "client_sink" }},
          "link": {{ "reply": {{ "of": "front" }} }} }}
      ] }}"#
        ));
        clients.push(format!(
            r#"{{ "name": "wrk{i}", "connections": 32,
      "arrivals": {{ "type": "poisson",
        "schedule": {{ "segments": [[0.0, 1500.0]] }} }},
      "mix": [["get{i}", 1.0]], "roots": ["api{i}"] }}"#
        ));
        if i == 1 {
            instances.push(format!(
                r#"{{ "name": "aux{i}", "service": "api", "machine": "m{i}",
      "cores": 1, "exec": {{ "type": "simple" }} }}"#
            ));
            pools.push(format!(
                r#"{{ "up": "api{i}", "down": "aux{i}", "size": 4 }}"#
            ));
        }
    }
    format!(
        r#"{{
  "seed": 42,
  "warmup_s": 0.1,
  "machines": [{}],
  "services": [
    {{ "name": "api",
      "stages": [
        {{ "name": "handler", "queue": {{ "type": "single" }},
          "service": {{ "base": {{ "type": "constant", "value": 0.0 }},
            "per_job": {{ "type": "exponential", "mean": 0.00008 }},
            "ref_freq_ghz": 2.6, "freq_alpha": 1.0 }} }}
      ],
      "paths": [{{ "name": "default", "stages": [0] }}] }}
  ],
  "instances": [{}],
  "pools": [{}],
  "request_types": [{}],
  "clients": [{}]
}}"#,
        machines.join(",\n"),
        instances.join(",\n"),
        pools.join(",\n"),
        request_types.join(",\n"),
        clients.join(",\n"),
    )
}

fn cluster(pods: usize) -> ScenarioConfig {
    ScenarioConfig::from_json(&cluster_json(pods)).expect("cluster json parses")
}

/// A fault plan spanning three different pods of [`cluster`]: a crash in
/// pod 0, a machine slowdown in pod 2, and a retry/breaker policy on pod
/// 1's client — so the per-cell plan split routes every spec kind.
fn cluster_faults() -> FaultPlan {
    FaultPlan::from_json(
        r#"{
  "faults": [
    { "kind": "instance_crash", "instance": "api0",
      "at_s": 0.15, "restart_after_s": 0.1 },
    { "kind": "machine_slowdown", "machine": "m2",
      "at_s": 0.2, "duration_s": 0.08, "factor": 4.0 }
  ],
  "policy": {
    "clients": [
      { "client": "wrk1", "max_retries": 2,
        "backoff_base_s": 0.002, "backoff_cap_s": 0.05, "jitter": 0.5 }
    ]
  }
}"#,
    )
    .expect("fault json parses")
}

/// Options that turn on every output channel, so the differential tests
/// compare everything the engine can export.
fn full_options(shards: usize) -> PartitionOptions {
    PartitionOptions {
        shards,
        telemetry: TelemetryConfig {
            sample_interval: Some(SimDuration::from_millis(50)),
            ..TelemetryConfig::default()
        },
        span_tracing: Some(1 << 16),
        sync_windows: 8,
    }
}

// ---------------------------------------------------------------------
// P1: ownership and request closure
// ---------------------------------------------------------------------

/// **P1** — independent pods split into one cell each, and colocation
/// edges (here: a connection pool) keep entities together.
#[test]
fn cells_split_by_colocation_edges() {
    let cfg = cluster(4);
    let cells = split_cells(&cfg).unwrap();
    assert_eq!(cells.len(), 4, "one cell per pod");
    for (i, cell) in cells.iter().enumerate() {
        assert_eq!(cell.machines, vec![i], "cells number by machine index");
        assert_eq!(cell.config.machines.len(), 1);
        assert_eq!(cell.config.clients.len(), 1);
    }
    // Pod 1 owns the aux instance and the pool; nobody else has any.
    assert_eq!(cells[1].config.instances.len(), 2);
    assert_eq!(cells[1].config.pools.len(), 1);
    assert!(cells[0].config.pools.is_empty());
}

/// **P1** — a machine is atomic: a zero-latency intra-machine hop (two
/// instances of one request chain on the same machine, loopback latency
/// zero) can never cross a cell boundary, because both endpoints live on
/// one machine and machines never split.
#[test]
fn zero_latency_intra_machine_hop_stays_in_one_cell() {
    let cfg = ScenarioConfig::from_json(
        r#"{
  "seed": 1, "warmup_s": 0.05,
  "machines": [
    { "name": "solo", "cores": 2,
      "dvfs": { "levels_ghz": [2.6] },
      "network": { "irq_cores": 1,
        "rx_time": { "type": "constant", "value": 0.0 },
        "wire_latency": { "type": "constant", "value": 0.0 },
        "loopback_latency": { "type": "constant", "value": 0.0 } } },
    { "name": "other", "cores": 2,
      "dvfs": { "levels_ghz": [2.6] },
      "network": { "irq_cores": 1,
        "rx_time": { "type": "constant", "value": 0.0 },
        "wire_latency": { "type": "constant", "value": 0.00002 } } }
  ],
  "services": [
    { "name": "api",
      "stages": [
        { "name": "handler", "queue": { "type": "single" },
          "service": { "base": { "type": "constant", "value": 0.0 },
            "per_job": { "type": "exponential", "mean": 0.00005 },
            "ref_freq_ghz": 2.6, "freq_alpha": 1.0 } }
      ],
      "paths": [{ "name": "default", "stages": [0] }] }
  ],
  "instances": [
    { "name": "a", "service": "api", "machine": "solo",
      "cores": 1, "exec": { "type": "simple" } },
    { "name": "b", "service": "api", "machine": "solo",
      "cores": 1, "exec": { "type": "simple" } },
    { "name": "c", "service": "api", "machine": "other",
      "cores": 1, "exec": { "type": "simple" } }
  ],
  "pools": [],
  "request_types": [
    { "name": "chain",
      "nodes": [
        { "name": "first",
          "target": { "type": "service", "service": "api",
            "instance": { "type": "fixed", "name": "a" },
            "exec_path": "default" },
          "children": ["second"] },
        { "name": "second",
          "target": { "type": "service", "service": "api",
            "instance": { "type": "fixed", "name": "b" },
            "exec_path": "default" },
          "children": ["sink"] },
        { "name": "sink", "target": { "type": "client_sink" },
          "link": { "reply": { "of": "first" } } }
      ] },
    { "name": "lone",
      "nodes": [
        { "name": "front",
          "target": { "type": "service", "service": "api",
            "instance": { "type": "fixed", "name": "c" },
            "exec_path": "default" },
          "children": ["sink"] },
        { "name": "sink", "target": { "type": "client_sink" },
          "link": { "reply": { "of": "front" } } }
      ] }
  ],
  "clients": [
    { "name": "w1", "connections": 8,
      "arrivals": { "type": "poisson",
        "schedule": { "segments": [[0.0, 500.0]] } },
      "mix": [["chain", 1.0]], "roots": ["a"] },
    { "name": "w2", "connections": 8,
      "arrivals": { "type": "poisson",
        "schedule": { "segments": [[0.0, 500.0]] } },
      "mix": [["lone", 1.0]], "roots": ["c"] }
  ]
}"#,
    )
    .unwrap();
    let cells = split_cells(&cfg).unwrap();
    assert_eq!(cells.len(), 2, "\"solo\" and \"other\" are separate cells");
    let solo = &cells[0];
    // Both endpoints of the zero-latency hop — and the request type that
    // contains it — belong to the single cell owning machine "solo".
    assert_eq!(solo.config.instances.len(), 2);
    assert_eq!(solo.config.request_types.len(), 1);
    assert_eq!(solo.config.request_types[0].name, "chain");
}

// ---------------------------------------------------------------------
// P2/P3: placement determinism and K-independent numbering/seeding
// ---------------------------------------------------------------------

/// **P2** — LPT assignment is a pure function of `(cfg, shards)` and
/// spreads equal-weight cells evenly.
#[test]
fn lpt_assignment_is_deterministic_and_balanced() {
    let cfg = cluster(8);
    let a = PartitionPlan::new(&cfg, 3).unwrap();
    let b = PartitionPlan::new(&cfg, 3).unwrap();
    assert_eq!(a.assignment, b.assignment, "assignment must be pure");
    assert!(a.assignment.iter().all(|&s| s < 3));
    let mut load = [0u64; 3];
    let weights = a.weights();
    for (cell, &shard) in a.assignment.iter().enumerate() {
        load[shard] += weights[cell];
    }
    let spread = load.iter().max().unwrap() - load.iter().min().unwrap();
    let max_w = *weights.iter().max().unwrap();
    assert!(
        spread <= max_w,
        "LPT never leaves shards more than one cell-weight apart: {load:?}"
    );
}

/// **P3** — the cell list (and hence numbering) is identical at any shard
/// count; only the assignment changes.
#[test]
fn cell_numbering_is_shard_independent() {
    let cfg = cluster(5);
    let one = PartitionPlan::new(&cfg, 1).unwrap();
    let eight = PartitionPlan::new(&cfg, 8).unwrap();
    let machines = |p: &PartitionPlan| {
        p.cells
            .iter()
            .map(|c| c.machines.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(machines(&one), machines(&eight));
    assert_eq!(one.cells.len(), 5);
}

/// **P3** — the master-seed → cell-seed mapping is frozen. These literals
/// are load-bearing: changing the derivation re-seeds every partitioned
/// golden, so it must be deliberate and show up here.
#[test]
fn cell_seed_derivation_is_pinned() {
    // The derivation: first draw of the factory's ("cell", i) stream.
    use rand::Rng;
    for (master, cell) in [(42u64, 0u64), (42, 1), (7, 0), (7, 3)] {
        let expected: u64 = RngFactory::new(master).stream("cell", cell).gen();
        assert_eq!(cell_seed(master, cell), expected);
    }
    // And the frozen values themselves:
    assert_eq!(cell_seed(42, 0), 6103144817593345708);
    assert_eq!(cell_seed(42, 1), 13026359202090660146);
    assert_eq!(cell_seed(7, 0), 612300986710873840);
}

// ---------------------------------------------------------------------
// P4: chunked advancement ≡ single-shot
// ---------------------------------------------------------------------

/// **P4** — advancing through paused horizons and finishing with
/// `run_until` reproduces a single-shot `run_until` exactly. (Horizons are
/// odd nanosecond counts so no event collides with a chunk boundary.)
#[test]
fn chunked_advance_matches_single_shot() {
    let cfg = ScenarioConfig::from_json(EXAMPLE_SCENARIO).unwrap();
    let deadline = SimTime::from_nanos(400_000_001);

    let mut single = cfg.build().unwrap();
    single.run_until(deadline);

    let mut chunked = cfg.build().unwrap();
    for boundary in [50_000_003u64, 133_333_337, 250_000_001, 399_999_999] {
        chunked.run_until_paused(SimTime::from_nanos(boundary));
    }
    chunked.run_until(deadline);

    assert_eq!(single.generated(), chunked.generated());
    assert_eq!(single.completed(), chunked.completed());
    assert_eq!(single.timeouts(), chunked.timeouts());
    assert_eq!(single.latency_summary(), chunked.latency_summary());
    assert_eq!(single.events_processed(), chunked.events_processed());
}

// ---------------------------------------------------------------------
// P6: lookahead and conservative horizons
// ---------------------------------------------------------------------

/// **P6** — a cell's horizon is the minimum over in-neighbors of
/// `published clock + link lookahead`, unbounded with no in-links.
#[test]
fn horizons_follow_neighbor_clocks() {
    let la = LookaheadMatrix::from_links(
        3,
        &[
            (0, 2, SimDuration::from_micros(20)),
            (1, 2, SimDuration::from_micros(50)),
        ],
    );
    let clocks = ShardClocks::new(3);
    assert_eq!(clocks.horizon(0, &la), SimTime::MAX, "no in-links");
    assert_eq!(
        clocks.horizon(2, &la),
        SimTime::from_nanos(20_000),
        "both neighbor clocks at zero: min lookahead binds"
    );
    clocks.publish(0, SimTime::from_nanos(100_000));
    assert_eq!(
        clocks.horizon(2, &la),
        SimTime::from_nanos(50_000),
        "cell 1's unpublished clock now binds"
    );
    clocks.publish(1, SimTime::from_nanos(100_000));
    assert_eq!(clocks.horizon(2, &la), SimTime::from_nanos(120_000));
}

/// **P6** — the lookahead of a cross-cell link is the wire-latency floor:
/// `Distribution::lower_bound` of the destination's wire-latency
/// distribution, which samples can never undercut.
#[test]
fn lookahead_floor_is_wire_latency_lower_bound() {
    let cfg = cluster(2);
    let wire = &cfg.machines[0].network.wire_latency;
    assert_eq!(wire.lower_bound(), 0.00002);
    // The shifted form keeps a positive floor too:
    let shifted = Distribution::Shifted {
        offset: 15e-6,
        inner: Box::new(Distribution::exponential(5e-6)),
    };
    assert!(shifted.lower_bound() >= 15e-6);
}

// ---------------------------------------------------------------------
// P5/P7: deterministic merges, byte-identical at any shard count
// ---------------------------------------------------------------------

/// **P7** — the headline guarantee, unfaulted: every merged output is
/// byte-identical at shard counts 1, 2, 4, and 8.
#[test]
fn shards_never_change_results_unfaulted() {
    let cfg = cluster(6);
    let d = SimDuration::from_millis(300);
    let base = run_partitioned(&cfg, None, 9, d, &full_options(1)).unwrap();
    let base_prom = base.prometheus();
    let base_csv = base.csv().expect("sampler on");
    let base_json = serde_json::to_string_pretty(&base.json()).unwrap();
    let base_trace =
        serde_json::to_string_pretty(&base.chrome_trace().expect("tracing on")).unwrap();
    assert!(base.result.completed > 0);
    for shards in [2, 4, 8] {
        let run = run_partitioned(&cfg, None, 9, d, &full_options(shards)).unwrap();
        assert_eq!(run.result, base.result, "RunResult at shards={shards}");
        assert_eq!(run.prometheus(), base_prom, "prometheus at shards={shards}");
        assert_eq!(run.csv().unwrap(), base_csv, "csv at shards={shards}");
        assert_eq!(
            serde_json::to_string_pretty(&run.json()).unwrap(),
            base_json,
            "json at shards={shards}"
        );
        assert_eq!(
            serde_json::to_string_pretty(&run.chrome_trace().unwrap()).unwrap(),
            base_trace,
            "chrome trace at shards={shards}"
        );
    }
}

/// **P7** — the headline guarantee under fault injection: chaos counters,
/// timelines, and all exports stay byte-identical at any shard count.
#[test]
fn shards_never_change_results_faulted() {
    let cfg = cluster(4);
    let plan = cluster_faults();
    let d = SimDuration::from_millis(400);
    let base = run_partitioned(&cfg, Some(&plan), 3, d, &full_options(1)).unwrap();
    let fault = base.result.fault.clone().expect("plan installed");
    assert!(fault.dropped > 0, "the crash window must drop requests");
    let base_prom = base.prometheus();
    for shards in [2, 4] {
        let run = run_partitioned(&cfg, Some(&plan), 3, d, &full_options(shards)).unwrap();
        assert_eq!(run.result, base.result, "faulted result at shards={shards}");
        assert_eq!(
            run.result.fault.as_ref().unwrap().timeline,
            fault.timeline,
            "fault timeline at shards={shards}"
        );
        assert_eq!(
            run.prometheus(),
            base_prom,
            "faulted prom at shards={shards}"
        );
    }
}

/// **P5** — merging a single cell is the identity for the registry (the
/// canonical family walk and histogram rebuilds reproduce the cell's own
/// exposition byte-for-byte).
#[test]
fn merge_of_one_cell_is_registry_identity() {
    let cfg = ScenarioConfig::from_json(EXAMPLE_SCENARIO).unwrap();
    let run = run_partitioned(
        &cfg,
        None,
        7,
        SimDuration::from_millis(300),
        &full_options(2),
    )
    .unwrap();
    assert_eq!(run.cells.len(), 1);
    assert_eq!(run.prometheus(), run.cells[0].registry.to_prometheus());
}

/// **P5** — the merged audit is clean whenever every per-cell audit is
/// clean, faulted or not.
#[test]
fn partitioned_audit_stays_clean() {
    let cfg = cluster(3);
    let plan = cluster_faults();
    let run = run_partitioned(
        &cfg,
        Some(&plan),
        11,
        SimDuration::from_millis(300),
        &full_options(3),
    )
    .unwrap();
    let audit = run.audit().expect("span tracing on");
    assert!(
        audit.violations.is_empty(),
        "merged audit must be clean: {:?}",
        audit.violations
    );
    assert!(audit.events_checked > 0);
}

proptest! {
    /// **P7**, randomized — random pod counts and master seeds, shard
    /// counts {1, 2, 4, 8}: the merged result and Prometheus exposition
    /// never depend on the shard count.
    #[test]
    fn random_topologies_are_shard_invariant(pods in 1usize..5, seed in any::<u64>()) {
        let cfg = cluster(pods);
        let d = SimDuration::from_millis(150);
        let base = run_partitioned(&cfg, None, seed, d, &full_options(1)).unwrap();
        let base_prom = base.prometheus();
        for shards in [2usize, 4, 8] {
            let run = run_partitioned(&cfg, None, seed, d, &full_options(shards)).unwrap();
            prop_assert_eq!(&run.result, &base.result, "shards={}", shards);
            prop_assert_eq!(run.prometheus(), base_prom.clone(), "shards={}", shards);
        }
    }

    /// **P1 + P7** over machine-generated topologies: for random
    /// `uqsim-synth` specs, every cell of `split_cells` is request-closed
    /// (each referenced instance, pool endpoint, and client root lives in
    /// the cell's own sub-scenario), and the merged result and Prometheus
    /// exposition are byte-identical at shards 1 vs 4.
    #[test]
    fn generated_topologies_are_closed_and_shard_invariant(
        replicas in 1usize..3,
        fan_max in 1usize..3,
        seed in any::<u64>(),
    ) {
        let mut spec = uqsim_synth::GenSpec::example();
        spec.replicas = replicas;
        for layer in &mut spec.layers {
            layer.fanout = uqsim_synth::CountDist::range(1, fan_max);
        }
        let cfg = spec.generate(seed).unwrap();

        // Request closure: the per-cell sub-scenario must resolve every
        // name it references, i.e. build standalone.
        let cells = split_cells(&cfg).unwrap();
        prop_assert!(cells.len() >= replicas);
        for cell in &cells {
            let names: std::collections::HashSet<&str> =
                cell.config.instances.iter().map(|i| i.name.as_str()).collect();
            for t in &cell.config.request_types {
                for node in &t.nodes {
                    if let uqsim_core::config::NodeTargetConfig::Service {
                        instance: uqsim_core::config::InstanceSelectConfig::RoundRobin { names: rr },
                        ..
                    } = &node.target
                    {
                        for n in rr {
                            prop_assert!(names.contains(n.as_str()),
                                "cell {} references foreign instance {}", cell.id, n);
                        }
                    }
                }
            }
            for p in &cell.config.pools {
                prop_assert!(names.contains(p.up.as_str()) && names.contains(p.down.as_str()));
            }
            for c in &cell.config.clients {
                for r in &c.roots {
                    prop_assert!(names.contains(r.as_str()));
                }
            }
            cell.config.build().expect("cells build standalone");
        }

        // Byte-identity at shards 1 vs 4.
        let d = SimDuration::from_millis(100);
        let one = run_partitioned(&cfg, None, seed, d, &full_options(1)).unwrap();
        let four = run_partitioned(&cfg, None, seed, d, &full_options(4)).unwrap();
        prop_assert_eq!(&one.result, &four.result);
        prop_assert_eq!(one.prometheus(), four.prometheus());
    }
}
