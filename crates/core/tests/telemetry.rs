//! Integration tests of the telemetry layer: streaming-histogram accuracy
//! against exact percentiles (proptest), merge algebra, the telescoping
//! latency-decomposition invariant on trace-audited runs, sampler-window
//! equivalence with [`WindowedRecorder`], and gap-free window series over
//! trailing idle time.

use proptest::prelude::*;
use uqsim_core::client::{ArrivalProcess, RateSchedule};
use uqsim_core::config::ScenarioConfig;
use uqsim_core::run::EXAMPLE_SCENARIO;
use uqsim_core::telemetry::{StreamingHistogram, TelemetryConfig};
use uqsim_core::time::SimDuration;

/// Exact nearest-rank quantile over sorted integer samples — the reference
/// the streaming histogram is measured against.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

fn hist_of(samples: &[u64]) -> StreamingHistogram {
    let mut h = StreamingHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    /// The streaming estimate never under-reports a quantile and
    /// over-reports by at most one sub-bucket width (1/32 relative, +1 ns
    /// integer slack) — the histogram's documented resolution contract.
    #[test]
    fn streaming_quantiles_track_exact(
        samples in proptest::collection::vec(0u64..2_000_000_000, 1..400),
    ) {
        let h = hist_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min_ns(), sorted[0]);
        prop_assert_eq!(h.max_ns(), *sorted.last().unwrap());
        prop_assert_eq!(h.sum_ns(), sorted.iter().map(|&s| s as u128).sum::<u128>());
        for q in [0.5, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let est = h.quantile_ns(q);
            prop_assert!(
                est >= exact,
                "q{q}: estimate {est} under exact {exact}"
            );
            prop_assert!(
                est <= exact + exact / 32 + 1,
                "q{q}: estimate {est} beyond resolution of exact {exact}"
            );
        }
    }

    /// Merging is commutative, associative, and identical to having
    /// recorded the concatenated sample streams into one histogram — the
    /// property that makes per-shard histograms aggregable in any order.
    #[test]
    fn streaming_merge_algebra(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..200),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..200),
        c in proptest::collection::vec(0u64..1_000_000_000, 0..200),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba, "merge must be commutative");

        let mut ab_c = ab.clone();
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "merge must be associative");

        let concatenated: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(
            &ab,
            &hist_of(&concatenated),
            "merge must equal recording the union"
        );
    }
}

/// Runs `cfg` for `secs` with full telemetry and span tracing, asserts the
/// trace audit is clean, and checks the telescoping invariant: for *every*
/// retained request the component attributions sum to the end-to-end
/// latency exactly (the ISSUE's 1 ns acceptance bound, met with 0 ns
/// error by construction).
fn assert_decomposition_telescopes(cfg: &ScenarioConfig, secs: f64, min_requests: usize) {
    let mut sim = cfg.build().expect("config builds");
    sim.enable_telemetry(TelemetryConfig {
        breakdown_capacity: 1_000_000,
        ..TelemetryConfig::default()
    });
    sim.enable_span_tracing(4_000_000);
    sim.run_for(SimDuration::from_secs_f64(secs));
    let report = sim.audit_trace().expect("tracing enabled");
    assert!(report.is_clean(), "violations: {:#?}", report.violations);
    let breakdowns = sim.latency_breakdowns();
    assert!(
        breakdowns.len() >= min_requests,
        "only {} breakdowns retained",
        breakdowns.len()
    );
    for b in breakdowns {
        assert_eq!(
            b.total_ns(),
            b.e2e_ns(),
            "decomposition does not telescope: {b:?}"
        );
    }
}

#[test]
fn decomposition_sums_to_e2e_on_audited_single_tier_run() {
    let cfg = ScenarioConfig::from_json(EXAMPLE_SCENARIO).unwrap();
    assert_decomposition_telescopes(&cfg, 1.0, 500);
}

#[test]
fn decomposition_sums_to_e2e_on_audited_two_tier_run() {
    // The bundled two-tier scenario exercises connection pools (Blocking)
    // and multi-node request paths (per-hop Network charges).
    let text = include_str!("../../cli/configs/two_tier.json");
    let cfg = ScenarioConfig::from_json(text).unwrap();
    assert_decomposition_telescopes(&cfg, 1.0, 500);
}

#[test]
fn decomposition_sums_to_e2e_on_audited_social_network_run() {
    // The bundled social-network scenario adds fan-out/fan-in (FanInSync)
    // and blocking RPC threads.
    let text = include_str!("../../cli/configs/social_network.json");
    let cfg = ScenarioConfig::from_json(text).unwrap();
    assert_decomposition_telescopes(&cfg, 1.0, 1_000);
}

/// The acceptance criterion tying the new sampler to the pre-existing
/// [`WindowedRecorder`]: with the sampler interval equal to the recorder
/// window width, both views of the same run must report bitwise-identical
/// per-window counts and percentiles.
#[test]
fn telemetry_windows_match_windowed_recorder() {
    let mut cfg = ScenarioConfig::from_json(EXAMPLE_SCENARIO).unwrap();
    cfg.window_s = Some(0.05);
    let mut sim = cfg.build().unwrap();
    sim.enable_telemetry(TelemetryConfig {
        sample_interval: Some(SimDuration::from_secs_f64(0.05)),
        ..TelemetryConfig::default()
    });
    sim.run_for(SimDuration::from_secs(1));
    let tw = sim.telemetry_windows();
    let ws = sim.window_series().expect("window collection enabled");
    // The recorder closes its final window when the run deadline fires,
    // one event the sampler tick at the same instant loses to; compare
    // the common prefix.
    let n = tw.len().min(ws.len());
    assert!(n >= 15, "only {n} comparable windows");
    for k in 0..n {
        assert_eq!(tw[k].end, ws[k].end, "window {k} end");
        assert_eq!(
            tw[k].count as usize, ws[k].latency.count,
            "window {k} count"
        );
        assert_eq!(tw[k].p50_s, ws[k].latency.p50, "window {k} p50");
        assert_eq!(tw[k].p95_s, ws[k].latency.p95, "window {k} p95");
        assert_eq!(tw[k].p99_s, ws[k].latency.p99, "window {k} p99");
        assert_eq!(tw[k].throughput, ws[k].throughput, "window {k} throughput");
    }
}

/// A run whose load stops well before the deadline must still produce a
/// gap-free window series all the way to the deadline, with explicit
/// count-0 windows over the idle tail — in both the windowed recorder and
/// the telemetry sampler.
#[test]
fn idle_tail_emits_trailing_empty_windows() {
    let mut cfg = ScenarioConfig::from_json(EXAMPLE_SCENARIO).unwrap();
    cfg.window_s = Some(0.1);
    // Deterministic arrivals that effectively stop at t=0.25s (the 0.01
    // qps tail means the next arrival lands 100 simulated seconds out).
    cfg.clients[0].arrivals = ArrivalProcess::Uniform {
        schedule: RateSchedule {
            segments: vec![(0.0, 2000.0), (0.25, 0.01)],
        },
    };
    let mut sim = cfg.build().unwrap();
    sim.enable_telemetry(TelemetryConfig {
        sample_interval: Some(SimDuration::from_secs_f64(0.1)),
        ..TelemetryConfig::default()
    });
    sim.run_for(SimDuration::from_secs(1));

    let ws = sim.window_series().expect("window collection enabled");
    assert_eq!(ws.len(), 10, "series must reach the deadline without gaps");
    assert!(
        ws[0].latency.count > 0,
        "load phase produced no completions"
    );
    for w in &ws[5..] {
        assert_eq!(
            w.latency.count, 0,
            "idle window ending at {:?} has completions",
            w.end
        );
    }
    // Windows tile the time axis: each starts where the previous ended.
    for pair in ws.windows(2) {
        assert_eq!(pair[0].end, pair[1].start);
    }

    // The sampler ticks at 0.1s..0.9s (the 1.0s tick loses to the stop
    // event) and must show the same idle tail.
    let tw = sim.telemetry_windows();
    assert_eq!(tw.len(), 9);
    for w in &tw[5..] {
        assert_eq!(w.count, 0, "idle sampler window at {:?}", w.end);
    }
}
