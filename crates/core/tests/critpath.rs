//! Integration tests of critical-path attribution: the streaming
//! (in-sim) fold and the post-hoc trace replay must produce *identical*
//! CPC profiles — the correspondence that lets `uqsim why` validate its
//! own bookkeeping on every run — both on a clean run and under a fault
//! plan with retries, crashes, and slowdowns in play.

use uqsim_core::config::ScenarioConfig;
use uqsim_core::critpath::CpcProfile;
use uqsim_core::fault::FaultPlan;
use uqsim_core::run::{EXAMPLE_FAULTS, EXAMPLE_SCENARIO};
use uqsim_core::telemetry::TelemetryConfig;
use uqsim_core::time::SimDuration;

const SPAN_CAPACITY: usize = 4_000_000;

fn streaming_and_replayed(faults: Option<&str>) -> (CpcProfile, CpcProfile) {
    let cfg = ScenarioConfig::from_json(EXAMPLE_SCENARIO).unwrap();
    let mut sim = cfg.build().unwrap();
    if let Some(text) = faults {
        let plan = FaultPlan::from_json(text).unwrap();
        sim.install_faults(&plan).unwrap();
    }
    sim.enable_span_tracing(SPAN_CAPACITY);
    sim.enable_telemetry(TelemetryConfig {
        critpath: true,
        ..TelemetryConfig::default()
    });
    sim.run_for(SimDuration::from_secs(2));

    let log = sim.span_log().expect("span tracing is on");
    assert_eq!(log.dropped(), 0, "span log truncated; raise SPAN_CAPACITY");
    let replayed = CpcProfile::from_trace(log, &sim.trace_meta())
        .expect("replay telescopes on a complete trace");
    let streaming = sim.critpath_profile().expect("critpath telemetry is on");
    (streaming, replayed)
}

/// Clean run: the bounded-memory streaming fold and the full trace replay
/// agree bit-for-bit, and both saw real traffic.
#[test]
fn streaming_equals_replay_on_clean_run() {
    let (streaming, replayed) = streaming_and_replayed(None);
    assert!(streaming.requests() > 0, "no requests measured");
    assert_eq!(
        streaming, replayed,
        "streaming and trace-replayed CPC profiles disagree"
    );
}

/// Faulted run: crashes, a machine slowdown, and client retries exercise
/// the retry_backoff / blocking edge kinds; the two folds must still
/// agree exactly.
#[test]
fn streaming_equals_replay_under_faults() {
    let (streaming, replayed) = streaming_and_replayed(Some(EXAMPLE_FAULTS));
    assert!(streaming.requests() > 0, "no requests measured");
    assert_eq!(
        streaming, replayed,
        "streaming and trace-replayed CPC profiles disagree under faults"
    );
}
