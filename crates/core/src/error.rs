//! Error types for the simulator.

use std::fmt;

/// Errors produced while building or running a simulation.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration file could not be parsed.
    Config {
        /// Which input (e.g. `service.json`) failed.
        source_name: String,
        /// Human-readable parse failure.
        detail: String,
    },
    /// A scenario references an entity that does not exist.
    UnknownEntity {
        /// Entity kind, e.g. `"service"` or `"machine"`.
        kind: &'static str,
        /// The name or id that failed to resolve.
        name: String,
    },
    /// A scenario is structurally invalid (bad DAG, empty path, overlapping
    /// core assignment, probability not summing to one, …).
    InvalidScenario(String),
    /// An I/O failure while loading configuration inputs.
    Io(std::io::Error),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config {
                source_name,
                detail,
            } => {
                write!(f, "invalid configuration in {source_name}: {detail}")
            }
            SimError::UnknownEntity { kind, name } => {
                write!(f, "unknown {kind}: {name}")
            }
            SimError::InvalidScenario(msg) => write!(f, "invalid scenario: {msg}"),
            SimError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SimError {
    fn from(e: std::io::Error) -> Self {
        SimError::Io(e)
    }
}

/// Convenience alias for simulator results.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = SimError::UnknownEntity {
            kind: "service",
            name: "nginx".into(),
        };
        assert_eq!(e.to_string(), "unknown service: nginx");
        let e = SimError::InvalidScenario("path probabilities sum to 0.9".into());
        assert!(e.to_string().starts_with("invalid scenario"));
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let e = SimError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "x"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
