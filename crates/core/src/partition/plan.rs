//! Shard assignment and lookahead derivation.
//!
//! Spec: DESIGN.md §11.3 ("Placement") and §11.4 ("Lookahead"). The plan
//! is the *only* place the shard count `K` enters the partitioned engine,
//! and it affects scheduling alone: cells, per-cell seeds, and per-cell
//! results are computed from the scenario and the master seed only (spec
//! invariants **P2**/**P3**).

use crate::config::ScenarioConfig;
use crate::error::SimResult;
use crate::rng::RngFactory;
use crate::time::SimDuration;

use super::graph::{split_cells, CellSpec};

/// The master seed of cell `cell` under `master_seed`.
///
/// Derivation: the first draw of the core RNG factory's `("cell", cell)`
/// stream — the same decoupled-stream machinery every simulator component
/// uses, so cell seeds never collide with (or perturb) any in-simulation
/// stream of the parent seed. The mapping is frozen by the
/// `cell_seed_derivation_is_pinned` test: changing it would silently
/// re-seed every partitioned golden.
///
/// # Examples
///
/// ```
/// use uqsim_core::partition::cell_seed;
///
/// // Deterministic, and distinct per cell:
/// assert_eq!(cell_seed(42, 0), cell_seed(42, 0));
/// assert_ne!(cell_seed(42, 0), cell_seed(42, 1));
/// assert_ne!(cell_seed(42, 0), cell_seed(43, 0));
/// ```
pub fn cell_seed(master_seed: u64, cell: u64) -> u64 {
    use rand::Rng;
    RngFactory::new(master_seed).stream("cell", cell).gen()
}

/// Conservative lookahead between cells: `between(src, dst)` is the
/// minimum simulated delay any event leaving `src` needs before it can
/// affect `dst`, or `None` when no such path exists (infinite lookahead —
/// the cells never interact).
///
/// For a link that does exist, the lookahead is the wire-latency floor of
/// the destination's machines
/// ([`Distribution::lower_bound`](crate::dist::Distribution::lower_bound)):
/// every cross-machine hop pays at least that much wire time, so an event
/// sent at `t` can be delivered no earlier than `t + lookahead` — the
/// classic CMB guarantee (spec invariant **P6**).
///
/// In the current engine cells are request-closed, so
/// [`PartitionPlan::new`] produces a matrix with no links; the matrix (and
/// [`ShardClocks`](super::ShardClocks) horizons over it) is exercised
/// directly by unit tests and is the contract the v2 cross-cell RPC
/// protocol (DESIGN.md §11.6) plugs into via [`LookaheadMatrix::from_links`].
#[derive(Debug, Clone)]
pub struct LookaheadMatrix {
    n: usize,
    /// Row-major `n×n` link lookaheads; `None` = no link.
    floor: Vec<Option<SimDuration>>,
}

impl LookaheadMatrix {
    /// A matrix with no links: every pair has infinite lookahead.
    pub fn unlinked(n: usize) -> Self {
        LookaheadMatrix {
            n,
            floor: vec![None; n * n],
        }
    }

    /// Builds a matrix from explicit `(src, dst, lookahead)` links,
    /// keeping the minimum when a pair is listed twice.
    ///
    /// # Panics
    ///
    /// Panics if a link names a cell `>= n`.
    ///
    /// # Examples
    ///
    /// ```
    /// use uqsim_core::partition::LookaheadMatrix;
    /// use uqsim_core::time::SimDuration;
    ///
    /// let la = LookaheadMatrix::from_links(
    ///     2,
    ///     &[(0, 1, SimDuration::from_micros(20))],
    /// );
    /// assert_eq!(la.between(0, 1), Some(SimDuration::from_micros(20)));
    /// assert_eq!(la.between(1, 0), None); // links are directed
    /// ```
    pub fn from_links(n: usize, links: &[(usize, usize, SimDuration)]) -> Self {
        let mut m = LookaheadMatrix::unlinked(n);
        for &(src, dst, la) in links {
            assert!(
                src < n && dst < n,
                "link ({src},{dst}) out of range for {n} cells"
            );
            let slot = &mut m.floor[src * n + dst];
            *slot = Some(slot.map_or(la, |prev| prev.min(la)));
        }
        m
    }

    /// Number of cells the matrix covers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the matrix covers no cells.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The lookahead of the `src → dst` link, or `None` when unlinked.
    pub fn between(&self, src: usize, dst: usize) -> Option<SimDuration> {
        self.floor[src * self.n + dst]
    }

    /// The cells with a link *into* `dst` — the neighbors whose published
    /// clocks bound `dst`'s safe horizon.
    pub fn in_neighbors(&self, dst: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(move |&src| src != dst && self.between(src, dst).is_some())
    }
}

/// A complete partitioned-execution plan: the cells, their deterministic
/// shard assignment, and the inter-cell lookahead matrix.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    /// The request-closed cells, in canonical (smallest-machine) order.
    pub cells: Vec<CellSpec>,
    /// Worker shards the plan targets (`>= 1`).
    pub shards: usize,
    /// `assignment[cell] = shard` (LPT bin packing; see [`PartitionPlan::new`]).
    pub assignment: Vec<usize>,
    /// Conservative inter-cell lookahead (no links while cells are closed).
    pub lookahead: LookaheadMatrix,
}

/// Deterministic cost proxy for LPT packing: how much simulated machinery
/// a cell owns. Any fixed formula preserves correctness (assignment never
/// changes results); this one tracks event volume well enough to balance
/// replicated-pod clusters.
fn cell_weight(cell: &CellSpec) -> u64 {
    let cores: usize = cell.config.machines.iter().map(|m| m.cores).sum();
    let conns: usize = cell.config.clients.iter().map(|c| c.connections).sum();
    (cores + cell.config.instances.len() * 2 + conns / 8 + 1) as u64
}

impl PartitionPlan {
    /// Splits `cfg` into cells and assigns them to `shards` workers with
    /// longest-processing-time-first bin packing: visit cells by
    /// descending weight (ties: lower cell id first), placing each
    /// on the least-loaded shard (ties: lowest shard id). The assignment
    /// is a pure function of `(cfg, shards)`; results never depend on it
    /// (spec invariant **P2**, `lpt_assignment_is_deterministic_and_balanced`
    /// in `tests/partition.rs`).
    ///
    /// # Errors
    ///
    /// Propagates [`split_cells`] reference errors.
    ///
    /// # Examples
    ///
    /// ```
    /// use uqsim_core::config::ScenarioConfig;
    /// use uqsim_core::partition::PartitionPlan;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let cfg = ScenarioConfig::from_json(uqsim_core::run::EXAMPLE_SCENARIO)?;
    /// let plan = PartitionPlan::new(&cfg, 4)?;
    /// assert_eq!(plan.cells.len(), 1);       // fully-connected scenario
    /// assert_eq!(plan.assignment, vec![0]);  // one cell -> first shard
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(cfg: &ScenarioConfig, shards: usize) -> SimResult<Self> {
        let shards = shards.max(1);
        let cells = split_cells(cfg)?;
        let mut order: Vec<usize> = (0..cells.len()).collect();
        let weights: Vec<u64> = cells.iter().map(cell_weight).collect();
        order.sort_by_key(|&c| (std::cmp::Reverse(weights[c]), c));
        let mut load = vec![0u64; shards];
        let mut assignment = vec![0usize; cells.len()];
        for c in order {
            let shard = (0..shards).min_by_key(|&s| (load[s], s)).unwrap_or(0);
            assignment[c] = shard;
            load[shard] += weights[c];
        }
        let lookahead = LookaheadMatrix::unlinked(cells.len());
        Ok(PartitionPlan {
            cells,
            shards,
            assignment,
            lookahead,
        })
    }

    /// The cells assigned to `shard`, in cell order.
    pub fn shard_cells(&self, shard: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == shard)
            .map(|(c, _)| c)
            .collect()
    }

    /// The LPT weights used for the assignment, per cell (diagnostics).
    pub fn weights(&self) -> Vec<u64> {
        self.cells.iter().map(cell_weight).collect()
    }
}
