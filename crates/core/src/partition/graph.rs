//! The must-colocate graph: splitting a scenario into request-closed cells.
//!
//! Spec: DESIGN.md §11.2 ("Ownership"). A **cell** is a connected
//! component of the graph whose vertices are machines and clients and
//! whose edges are every relation that can carry simulated causality:
//!
//! * a request type joins every machine any of its path nodes can select
//!   (fixed targets, *all* round-robin candidates, and transitively the
//!   nodes a `same_as_node` selector mirrors);
//! * a client joins the machines of every request type in its mix and of
//!   every root instance it opens connections to;
//! * a connection pool joins the machines of its up and down instances.
//!
//! Machines are atomic (a machine is never split across cells), so a
//! zero-latency intra-machine hop cannot cross a cell boundary — spec
//! invariant **P1**, enforced by
//! `zero_latency_intra_machine_hop_stays_in_one_cell` in
//! `tests/partition.rs`.

use std::collections::HashMap;

use crate::config::{ClientConfig, InstanceSelectConfig, NodeTargetConfig, ScenarioConfig};
use crate::error::{SimError, SimResult};
use crate::fault::{FaultPlan, FaultSpec, PolicySpec};

/// One request-closed cell of a partitioned scenario: which machines,
/// clients, instances, pools, and request types it owns (as indices into
/// the parent [`ScenarioConfig`]'s vectors, ascending), plus the extracted
/// sub-scenario that runs it.
///
/// Cells are numbered by their smallest machine index in the parent
/// configuration, so the cell list — and everything derived from it, seeds
/// included — is independent of the shard count (spec invariant **P3**).
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Cell index (position in the [`split_cells`] result).
    pub id: usize,
    /// Machine indices owned by this cell, ascending.
    pub machines: Vec<usize>,
    /// Client indices owned by this cell, ascending.
    pub clients: Vec<usize>,
    /// Instance indices owned by this cell, ascending.
    pub instances: Vec<usize>,
    /// Pool indices owned by this cell, ascending.
    pub pools: Vec<usize>,
    /// Request-type indices owned by this cell, ascending.
    pub request_types: Vec<usize>,
    /// The extracted sub-scenario: the owned entities plus every service
    /// model (services are stateless templates, cheap to share). Building
    /// this config re-validates the cell's closure: any dangling name
    /// would fail `ScenarioConfig::build`.
    pub config: ScenarioConfig,
}

/// Disjoint-set forest over `machines ∪ clients`.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller root wins, so representatives are
            // stable under edge insertion order.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Instance names a request type's path can select, in node order.
fn request_type_instances(nodes: &[crate::config::PathNodeConfig]) -> Vec<&str> {
    let mut out = Vec::new();
    for node in nodes {
        if let NodeTargetConfig::Service { instance, .. } = &node.target {
            match instance {
                InstanceSelectConfig::Fixed { name } => out.push(name.as_str()),
                InstanceSelectConfig::RoundRobin { names } => {
                    out.extend(names.iter().map(String::as_str));
                }
                // `same_as_node` mirrors a selection made by another node
                // of the same type, so it introduces no instance that the
                // mirrored node's own selector has not already added.
                InstanceSelectConfig::SameAsNode { .. } => {}
            }
        }
    }
    out
}

/// Splits a scenario into request-closed cells (see module docs).
///
/// # Errors
///
/// Returns [`SimError::UnknownEntity`] when a request type, client, or
/// pool names an instance or request type that does not exist — the same
/// references `ScenarioConfig::build` would reject, surfaced before any
/// cell is built.
///
/// # Examples
///
/// ```
/// use uqsim_core::config::ScenarioConfig;
/// use uqsim_core::partition::split_cells;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = ScenarioConfig::from_json(uqsim_core::run::EXAMPLE_SCENARIO)?;
/// let cells = split_cells(&cfg)?;
/// // One machine, one client, fully connected: a single cell that owns
/// // the whole scenario.
/// assert_eq!(cells.len(), 1);
/// assert_eq!(cells[0].machines, vec![0]);
/// # Ok(())
/// # }
/// ```
pub fn split_cells(cfg: &ScenarioConfig) -> SimResult<Vec<CellSpec>> {
    let n_machines = cfg.machines.len();
    let n_clients = cfg.clients.len();
    let client_node = |c: usize| n_machines + c;
    let mut dsu = Dsu::new(n_machines + n_clients);

    let machine_idx: HashMap<&str, usize> = cfg
        .machines
        .iter()
        .enumerate()
        .map(|(i, m)| (m.name.as_str(), i))
        .collect();
    let instance_machine: HashMap<&str, usize> = cfg
        .instances
        .iter()
        .map(|inst| {
            let m = machine_idx
                .get(inst.machine.as_str())
                .copied()
                .ok_or_else(|| SimError::UnknownEntity {
                    kind: "machine",
                    name: inst.machine.clone(),
                })?;
            Ok((inst.name.as_str(), m))
        })
        .collect::<SimResult<_>>()?;
    let lookup_instance = |name: &str| -> SimResult<usize> {
        instance_machine
            .get(name)
            .copied()
            .ok_or_else(|| SimError::UnknownEntity {
                kind: "instance",
                name: name.to_string(),
            })
    };

    // Request-type edges: all selectable machines of one type colocate.
    let mut rt_machines: Vec<Vec<usize>> = Vec::with_capacity(cfg.request_types.len());
    for rt in &cfg.request_types {
        let mut machines = Vec::new();
        for inst in request_type_instances(&rt.nodes) {
            machines.push(lookup_instance(inst)?);
        }
        if let Some((&first, rest)) = machines.split_first() {
            for &m in rest {
                dsu.union(first, m);
            }
        }
        rt_machines.push(machines);
    }
    let rt_idx: HashMap<&str, usize> = cfg
        .request_types
        .iter()
        .enumerate()
        .map(|(i, rt)| (rt.name.as_str(), i))
        .collect();

    // Client edges: a client colocates with its mix's types and its roots.
    for (c, client) in cfg.clients.iter().enumerate() {
        for (ty, _) in &client.mix {
            let &t = rt_idx
                .get(ty.as_str())
                .ok_or_else(|| SimError::UnknownEntity {
                    kind: "request type",
                    name: ty.clone(),
                })?;
            for &m in &rt_machines[t] {
                dsu.union(client_node(c), m);
            }
        }
        for root in &client.roots {
            dsu.union(client_node(c), lookup_instance(root)?);
        }
    }

    // Pool edges: both endpoints of a connection pool colocate.
    for pool in &cfg.pools {
        dsu.union(lookup_instance(&pool.up)?, lookup_instance(&pool.down)?);
    }

    // Components → cells, numbered by smallest machine index.
    let mut cell_of_root: HashMap<usize, usize> = HashMap::new();
    let mut cells_machines: Vec<Vec<usize>> = Vec::new();
    for m in 0..n_machines {
        let root = dsu.find(m);
        let cell = *cell_of_root.entry(root).or_insert_with(|| {
            cells_machines.push(Vec::new());
            cells_machines.len() - 1
        });
        cells_machines[cell].push(m);
    }
    if cells_machines.is_empty() {
        // Degenerate machine-less scenario: one cell owning everything.
        cells_machines.push(Vec::new());
    }

    // Clients attach to their component's cell; a client whose component
    // holds no machine (it touches no simulated resource) goes to cell 0.
    let mut cells_clients: Vec<Vec<usize>> = vec![Vec::new(); cells_machines.len()];
    for c in 0..n_clients {
        let root = dsu.find(client_node(c));
        let cell = cell_of_root.get(&root).copied().unwrap_or(0);
        cells_clients[cell].push(c);
    }

    // Instances and pools follow their machines; request types follow
    // their instances (or, for sink-only types, the first client that
    // emits them, falling back to cell 0).
    let machine_cell: Vec<usize> = (0..n_machines)
        .map(|m| cell_of_root[&dsu.find(m)])
        .collect();
    let mut cells_instances: Vec<Vec<usize>> = vec![Vec::new(); cells_machines.len()];
    for (i, inst) in cfg.instances.iter().enumerate() {
        cells_instances[machine_cell[instance_machine[inst.name.as_str()]]].push(i);
        let _ = inst;
    }
    let mut cells_pools: Vec<Vec<usize>> = vec![Vec::new(); cells_machines.len()];
    for (p, pool) in cfg.pools.iter().enumerate() {
        cells_pools[machine_cell[instance_machine[pool.up.as_str()]]].push(p);
    }
    let mut cells_rts: Vec<Vec<usize>> = vec![Vec::new(); cells_machines.len()];
    for (t, rt) in cfg.request_types.iter().enumerate() {
        let cell = if let Some(&m) = rt_machines[t].first() {
            machine_cell[m]
        } else {
            cfg.clients
                .iter()
                .enumerate()
                .find(|(_, c)| c.mix.iter().any(|(ty, _)| ty == &rt.name))
                .map(|(c, _)| {
                    cell_of_root
                        .get(&dsu.find(client_node(c)))
                        .copied()
                        .unwrap_or(0)
                })
                .unwrap_or(0)
        };
        cells_rts[cell].push(t);
        let _ = rt;
    }

    // Extract one sub-scenario per cell.
    let mut cells = Vec::with_capacity(cells_machines.len());
    for id in 0..cells_machines.len() {
        let pick = |indices: &[usize], from: &mut dyn FnMut(usize)| {
            for &i in indices {
                from(i);
            }
        };
        let mut config = ScenarioConfig {
            seed: cfg.seed,
            warmup_s: cfg.warmup_s,
            window_s: cfg.window_s,
            machines: Vec::new(),
            services: cfg.services.clone(),
            instances: Vec::new(),
            pools: Vec::new(),
            request_types: Vec::new(),
            clients: Vec::new(),
        };
        pick(&cells_machines[id], &mut |i| {
            config.machines.push(cfg.machines[i].clone())
        });
        pick(&cells_instances[id], &mut |i| {
            config.instances.push(cfg.instances[i].clone())
        });
        pick(&cells_pools[id], &mut |i| {
            config.pools.push(cfg.pools[i].clone())
        });
        pick(&cells_rts[id], &mut |i| {
            config.request_types.push(cfg.request_types[i].clone())
        });
        pick(&cells_clients[id], &mut |i| {
            config.clients.push(cfg.clients[i].clone())
        });
        cells.push(CellSpec {
            id,
            machines: cells_machines[id].clone(),
            clients: cells_clients[id].clone(),
            instances: cells_instances[id].clone(),
            pools: cells_pools[id].clone(),
            request_types: cells_rts[id].clone(),
            config,
        });
    }
    Ok(cells)
}

/// Restricts a fault plan to one cell: scheduled faults stay with the cell
/// that owns the named entity, per-client policies stay with the cell that
/// owns the client, and the network retransmission policy (global, not
/// entity-scoped) replicates into every cell.
///
/// Spec: DESIGN.md §11.5 — every [`FaultSpec`] variant names exactly one
/// owning entity, so this routing is total and unambiguous; when a global
/// plan is present, *every* cell installs its (possibly empty) slice so
/// per-cell exports keep a uniform shape.
pub fn split_fault_plan(plan: &FaultPlan, cell: &CellSpec) -> FaultPlan {
    let instances: std::collections::HashSet<&str> = cell
        .config
        .instances
        .iter()
        .map(|i| i.name.as_str())
        .collect();
    let machines: std::collections::HashSet<&str> = cell
        .config
        .machines
        .iter()
        .map(|m| m.name.as_str())
        .collect();
    let clients: std::collections::HashSet<&str> = cell
        .config
        .clients
        .iter()
        .map(|c: &ClientConfig| c.name.as_str())
        .collect();
    let faults = plan
        .faults
        .iter()
        .filter(|spec| match spec {
            FaultSpec::InstanceCrash { instance, .. } => instances.contains(instance.as_str()),
            FaultSpec::MachineSlowdown { machine, .. }
            | FaultSpec::NetworkDegrade { machine, .. } => machines.contains(machine.as_str()),
            FaultSpec::PoolLeak { up, .. } => instances.contains(up.as_str()),
        })
        .cloned()
        .collect();
    FaultPlan {
        faults,
        policy: PolicySpec {
            clients: plan
                .policy
                .clients
                .iter()
                .filter(|p| clients.contains(p.client.as_str()))
                .cloned()
                .collect(),
            network: plan.policy.network,
        },
    }
}
