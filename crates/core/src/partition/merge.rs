//! Deterministic merges of per-cell outputs.
//!
//! Spec: DESIGN.md §11.5. Every merge in this module is a pure function of
//! the per-cell outputs *in cell order* — no wall-clock, no thread
//! identity, no iteration over hash maps — so the merged run summary,
//! Prometheus exposition, CSV, JSON dump, Chrome trace, audit report, and
//! chaos summary are byte-identical at any shard count (spec invariant
//! **P5**, pinned by the `shards_*_byte_identical` tests in
//! `tests/partition.rs` and the CLI differential tests).

use std::cmp::Ordering;

use crate::critpath::CpcProfile;
use crate::fault::FaultSummary;
use crate::metrics::LatencySummary;
use crate::run::RunResult;
use crate::telemetry::{Metric, MetricValue, MetricsRegistry, MetricsSnapshot, StreamingHistogram};
use crate::time::SimDuration;
use crate::trace::AuditReport;
use serde::Value;
use serde_json::json;

use super::exec::CellOutput;

/// Merges per-cell run summaries into the cluster-level [`RunResult`].
///
/// Counters sum; the latency summaries are **re-summarized from the
/// concatenated raw samples** (percentiles are not mergeable from
/// percentiles); throughput and goodput are recomputed from the merged
/// counts over the shared measurement window. The merged result carries
/// the *master* seed — each cell ran under its own derived
/// [`cell_seed`](super::cell_seed).
///
/// # Panics
///
/// Panics when `cells` is empty ([`super::run_partitioned`] always
/// produces at least one cell).
pub fn merge_results(master_seed: u64, cells: &[CellOutput]) -> RunResult {
    assert!(!cells.is_empty(), "cannot merge zero cells");
    let duration = cells[0].result.duration;
    let warmup = cells[0].result.warmup;
    let mut samples = Vec::new();
    let mut timeout_samples = Vec::new();
    for c in cells {
        samples.extend_from_slice(&c.latency_samples);
        timeout_samples.extend_from_slice(&c.timeout_samples);
    }
    let latency = LatencySummary::from_samples(&samples);
    let timeout_latency = LatencySummary::from_samples(&timeout_samples);
    let measured = (duration.as_secs_f64() - warmup.as_secs_f64()).max(f64::EPSILON);
    let degraded_measured: u64 = cells.iter().map(|c| c.degraded_measured).sum();
    let good = (latency.count as u64).saturating_sub(degraded_measured);
    let sum = |f: fn(&RunResult) -> u64| -> u64 { cells.iter().map(|c| f(&c.result)).sum() };
    let faults: Vec<&FaultSummary> = cells
        .iter()
        .filter_map(|c| c.result.fault.as_ref())
        .collect();
    // Fold per-cell CPC profiles in cell order: site labels are globally
    // unique across cells, so the merge is a pure histogram sum and the
    // merged profile is byte-identical at any shard count (invariant P7).
    let mut critpath: Option<CpcProfile> = None;
    for c in cells {
        if let Some(p) = &c.result.critpath {
            critpath.get_or_insert_with(CpcProfile::new).merge(p);
        }
    }
    RunResult {
        seed: master_seed,
        duration,
        warmup,
        generated: sum(|r| r.generated),
        completed: sum(|r| r.completed),
        timeouts: sum(|r| r.timeouts),
        achieved_qps: latency.count as f64 / measured,
        goodput_qps: good as f64 / measured,
        dropped: sum(|r| r.dropped),
        shed: sum(|r| r.shed),
        retried: sum(|r| r.retried),
        degraded: sum(|r| r.degraded),
        latency,
        timeout_latency,
        events_processed: sum(|r| r.events_processed),
        metrics: merge_snapshots(cells),
        fault: if faults.is_empty() {
            None
        } else {
            Some(merge_fault_summaries(&faults))
        },
        critpath,
    }
}

/// Merges per-cell [`MetricsSnapshot`]s: utilizations are weighted means
/// (instances for `instance_utilization`, irq-equipped machines for
/// `network_utilization`, decomposed requests for the component means), so
/// the merged snapshot equals what one simulator owning every entity would
/// report for the same per-entity measurements.
fn merge_snapshots(cells: &[CellOutput]) -> MetricsSnapshot {
    let mut out = MetricsSnapshot::default();
    let wavg = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    let inst_w: f64 = cells.iter().map(|c| c.instances as f64).sum();
    let irq_w: f64 = cells.iter().map(|c| c.irq_machines as f64).sum();
    out.instance_utilization = wavg(
        cells
            .iter()
            .map(|c| c.result.metrics.instance_utilization * c.instances as f64)
            .sum(),
        inst_w,
    );
    out.network_utilization = wavg(
        cells
            .iter()
            .map(|c| c.result.metrics.network_utilization * c.irq_machines as f64)
            .sum(),
        irq_w,
    );
    out.decomposed_requests = cells
        .iter()
        .map(|c| c.result.metrics.decomposed_requests)
        .sum();
    let dec_w = out.decomposed_requests as f64;
    for j in 0..out.component_mean_s.len() {
        out.component_mean_s[j] = wavg(
            cells
                .iter()
                .map(|c| {
                    c.result.metrics.component_mean_s[j]
                        * c.result.metrics.decomposed_requests as f64
                })
                .sum(),
            dec_w,
        );
    }
    out
}

/// How one canonical metric family merges across cells.
#[derive(Clone, Copy, PartialEq)]
enum Merge {
    /// One unlabeled counter per cell; values sum.
    SumCounter,
    /// One unlabeled gauge per cell; values sum (live counts).
    SumGauge,
    /// Identical in every cell (sim time); take the first occurrence.
    First,
    /// Per-entity series with cell-disjoint label sets; concatenate in
    /// cell order.
    Concat,
    /// The e2e latency summary; rebuild from the merged
    /// [`StreamingHistogram`]s.
    HistE2e,
    /// Per-component latency summaries; merge histograms component-wise.
    HistComponents,
}

/// The canonical family walk: every family `Simulator::metrics_registry`
/// can emit, in its emission order, with its merge strategy. Walking this
/// list (instead of any one cell's registry positionally) keeps the merge
/// correct when a family is absent from some cells — e.g. a pool-less
/// cell emits no `uqsim_pool_free` at all.
const FAMILIES: &[(&str, Merge)] = &[
    ("uqsim_requests_generated_total", Merge::SumCounter),
    ("uqsim_requests_completed_total", Merge::SumCounter),
    ("uqsim_request_timeouts_total", Merge::SumCounter),
    ("uqsim_events_processed_total", Merge::SumCounter),
    ("uqsim_sim_time_seconds", Merge::First),
    ("uqsim_live_requests", Merge::SumGauge),
    ("uqsim_live_jobs", Merge::SumGauge),
    ("uqsim_instance_utilization", Merge::Concat),
    ("uqsim_instance_queue_depth", Merge::Concat),
    ("uqsim_network_utilization", Merge::Concat),
    ("uqsim_pool_free", Merge::Concat),
    ("uqsim_pool_waiters", Merge::Concat),
    ("uqsim_requests_dropped_total", Merge::SumCounter),
    ("uqsim_requests_shed_total", Merge::SumCounter),
    ("uqsim_retries_total", Merge::SumCounter),
    ("uqsim_responses_degraded_total", Merge::SumCounter),
    ("uqsim_hedges_total", Merge::SumCounter),
    ("uqsim_jobs_killed_total", Merge::SumCounter),
    ("uqsim_packets_dropped_total", Merge::SumCounter),
    ("uqsim_retransmits_total", Merge::SumCounter),
    ("uqsim_breaker_trips_total", Merge::SumCounter),
    ("uqsim_instance_fault_down", Merge::Concat),
    ("uqsim_e2e_latency_seconds", Merge::HistE2e),
    ("uqsim_latency_component_seconds", Merge::HistComponents),
    ("uqsim_stage_queue_wait_seconds", Merge::Concat),
    ("uqsim_stage_service_seconds", Merge::Concat),
];

/// The metrics of `reg` named `name`, in emission order.
fn family<'a>(reg: &'a MetricsRegistry, name: &str) -> Vec<&'a Metric> {
    reg.metrics().iter().filter(|m| m.name == name).collect()
}

/// Merges per-cell metrics registries into one cluster-level registry
/// whose Prometheus exposition is byte-identical at any shard count.
///
/// The merge walks the canonical family list in registry emission order;
/// each family takes its name/help strings from the first cell that emits
/// it and merges values per its strategy (counters sum, live gauges sum,
/// per-entity series concatenate in cell order, latency summaries are
/// rebuilt from the merged underlying histograms). A family emitted by no
/// cell is omitted, exactly as an unsharded registry omits it.
pub fn merge_registries(cells: &[CellOutput]) -> MetricsRegistry {
    let mut out = MetricsRegistry::new();
    for &(name, strategy) in FAMILIES {
        let per_cell: Vec<Vec<&Metric>> = cells.iter().map(|c| family(&c.registry, name)).collect();
        let Some(first) = per_cell.iter().flatten().next().copied() else {
            continue;
        };
        match strategy {
            Merge::SumCounter => {
                let mut total = 0u64;
                for ms in per_cell.iter().flatten() {
                    if let MetricValue::Counter(v) = ms.value {
                        total += v;
                    }
                }
                out.push(Metric {
                    value: MetricValue::Counter(total),
                    ..first.clone()
                });
            }
            Merge::SumGauge => {
                let mut total = 0.0f64;
                for ms in per_cell.iter().flatten() {
                    if let MetricValue::Gauge(v) = ms.value {
                        total += v;
                    }
                }
                out.push(Metric {
                    value: MetricValue::Gauge(total),
                    ..first.clone()
                });
            }
            Merge::First => out.push(first.clone()),
            Merge::Concat => {
                for ms in per_cell.iter().flatten() {
                    out.push((*ms).clone());
                }
            }
            Merge::HistE2e => {
                let mut merged = StreamingHistogram::new();
                for c in cells {
                    if let Some(h) = &c.e2e_hist {
                        merged.merge(h);
                    }
                }
                out.summary(first.name, first.help, first.labels.clone(), &merged);
            }
            Merge::HistComponents => {
                // Every telemetry-enabled cell emits one summary per
                // latency component, in the same component order.
                let proto = per_cell
                    .iter()
                    .find(|ms| !ms.is_empty())
                    .expect("first metric exists, so some cell has the family");
                for (j, m) in proto.iter().enumerate() {
                    let mut merged = StreamingHistogram::new();
                    for c in cells {
                        if let Some(hs) = &c.comp_hists {
                            if let Some(h) = hs.get(j) {
                                merged.merge(h);
                            }
                        }
                    }
                    out.summary(m.name, m.help, m.labels.clone(), &merged);
                }
            }
        }
    }
    // Forward-compatibility: any family a future registry emits that this
    // walk does not know yet is concatenated in cell order (first-seen
    // name order) rather than silently dropped.
    let known: Vec<&str> = FAMILIES.iter().map(|&(n, _)| n).collect();
    let mut extra: Vec<&'static str> = Vec::new();
    for c in cells {
        for m in c.registry.metrics() {
            if !known.contains(&m.name) && !extra.contains(&m.name) {
                extra.push(m.name);
            }
        }
    }
    for name in extra {
        for c in cells {
            for m in family(&c.registry, name) {
                out.push(m.clone());
            }
        }
    }
    out
}

/// Splits a telemetry CSV body (header stripped) into per-tick blocks: a
/// new block starts at each `windowed_count` row.
fn tick_blocks(csv: &str) -> Vec<Vec<&str>> {
    let mut blocks: Vec<Vec<&str>> = Vec::new();
    for line in csv.lines().skip(1) {
        if line.is_empty() {
            continue;
        }
        let metric = line.split(',').nth(1);
        if metric == Some("windowed_count") || blocks.is_empty() {
            blocks.push(Vec::new());
        }
        blocks.last_mut().expect("just pushed").push(line);
    }
    blocks
}

/// Merges per-cell telemetry CSVs (`t_s,metric,label,value`) into one
/// tick-major stream: for each sampler tick, cell 0's rows, then cell 1's,
/// and so on. Because the windowed latency percentiles of different cells
/// cannot be combined into one summary row, each cell's `windowed_*` rows
/// keep their values and gain a `cell<i>` label where the unsharded CSV
/// leaves the label empty; per-entity gauge rows pass through unchanged
/// (entity names are cell-disjoint). Returns `None` when any cell ran
/// without the sampler (all cells share one telemetry config, so this is
/// all-or-nothing in practice).
///
/// **Row/label ordering contract** (pinned by the `metrics_golden` CLI
/// test): within each tick, rows follow
/// [`Simulator::metrics_csv`](crate::sim::Simulator::metrics_csv) order —
/// the five `windowed_*` summary rows, then every gauge series in its
/// registration (configuration) order — and cells concatenate in cell
/// order. A **single-cell** merge is the identity: its bytes equal the
/// unsharded CSV exactly, `windowed_*` labels included, so the two merge
/// paths only diverge when there is genuinely more than one summary to
/// keep apart.
///
/// All cells tick on the same schedule (same duration, same interval); if
/// tick counts ever differ the merge stops at the shortest cell.
pub fn merge_csv(cells: &[CellOutput]) -> Option<String> {
    if let [only] = cells {
        return only.csv.clone();
    }
    let mut per_cell: Vec<Vec<Vec<&str>>> = Vec::with_capacity(cells.len());
    for c in cells {
        per_cell.push(tick_blocks(c.csv.as_deref()?));
    }
    let n_ticks = per_cell.iter().map(Vec::len).min().unwrap_or(0);
    let mut out = String::from("t_s,metric,label,value\n");
    for k in 0..n_ticks {
        for (i, blocks) in per_cell.iter().enumerate() {
            for line in &blocks[k] {
                let mut parts = line.splitn(4, ',');
                let (t, metric, label, value) = (
                    parts.next().unwrap_or(""),
                    parts.next().unwrap_or(""),
                    parts.next().unwrap_or(""),
                    parts.next().unwrap_or(""),
                );
                if metric.starts_with("windowed_") && label.is_empty() {
                    out.push_str(&format!("{t},{metric},cell{i},{value}\n"));
                } else {
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
    }
    Some(out)
}

/// Merges the per-cell `metrics_json` dumps under a cluster-level header:
/// the merged run counters / latency / snapshot / fault summary from
/// `merged`, a `partition` block recording the cell count, and the
/// untouched per-cell dumps under `"cells"` (in cell order) for drill-down.
pub fn merge_json(merged: &RunResult, cells: &[CellOutput]) -> Value {
    let cell_dumps: Vec<Value> = cells.iter().map(|c| c.json.clone()).collect();
    json!({
        "partition": {
            "cells": cells.len() as u64,
        },
        "run": {
            "seed": merged.seed,
            "sim_time_s": merged.duration.as_secs_f64(),
            "warmup_s": merged.warmup.as_secs_f64(),
            "generated": merged.generated,
            "completed": merged.completed,
            "timeouts": merged.timeouts,
            "events_processed": merged.events_processed,
        },
        "latency": merged.latency,
        "snapshot": merged.metrics,
        "fault": merged.fault,
        "cells": Value::Array(cell_dumps),
    })
}

/// Merges per-cell Chrome traces into one canonical trace.
///
/// Each cell's `pid` space (machines `0..M`, plus the request-lanes
/// pseudo-process `M`) is shifted by a running base of `machines + 1` per
/// cell, so processes stay distinct and ordered by cell; async-span `id`s
/// gain a `c<cell>:` prefix so span ids from different cells can never
/// alias. Event order inside a cell is preserved; cells concatenate in
/// cell order. Returns `None` when any cell ran without span tracing.
pub fn merge_chrome_traces(cells: &[CellOutput]) -> Option<Value> {
    let mut events: Vec<Value> = Vec::new();
    let mut base = 0u64;
    for (i, c) in cells.iter().enumerate() {
        let trace = c.chrome.as_ref()?;
        let arr = trace.get("traceEvents").and_then(Value::as_array)?;
        for ev in arr {
            let mut ev = ev.clone();
            if let Value::Object(map) = &mut ev {
                if let Some(pid) = map.get("pid").and_then(Value::as_u64) {
                    map.insert("pid", Value::from(pid + base));
                }
                if let Some(id) = map.get("id").and_then(Value::as_str) {
                    let prefixed = format!("c{i}:{id}");
                    map.insert("id", Value::from(prefixed));
                }
            }
            events.push(ev);
        }
        base += c.machines as u64 + 1;
    }
    Some(json!({
        "traceEvents": Value::Array(events),
        "displayTimeUnit": "ms"
    }))
}

/// Merges per-cell audit reports: counts sum, violations and notes
/// concatenate in cell order with a `[cell <i>]` prefix. The merged report
/// is clean iff every per-cell report is clean. Returns `None` when any
/// cell ran without span tracing (no log to audit).
pub fn merge_audits(cells: &[CellOutput]) -> Option<AuditReport> {
    let mut out = AuditReport::default();
    for (i, c) in cells.iter().enumerate() {
        let r = c.audit.as_ref()?;
        out.events_checked += r.events_checked;
        out.spans_checked += r.spans_checked;
        out.violations
            .extend(r.violations.iter().map(|v| format!("[cell {i}] {v}")));
        out.notes
            .extend(r.notes.iter().map(|n| format!("[cell {i}] {n}")));
    }
    Some(out)
}

/// Merges per-cell fault summaries: counters sum; timelines concatenate in
/// cell order, then stable-sort by simulated time — so simultaneous
/// transitions in different cells order by cell, deterministically.
pub fn merge_fault_summaries(summaries: &[&FaultSummary]) -> FaultSummary {
    let mut out = FaultSummary::default();
    for s in summaries {
        out.dropped += s.dropped;
        out.shed += s.shed;
        out.retried += s.retried;
        out.hedged += s.hedged;
        out.degraded += s.degraded;
        out.timed_out += s.timed_out;
        out.jobs_killed += s.jobs_killed;
        out.packets_dropped += s.packets_dropped;
        out.retransmits += s.retransmits;
        out.breaker_trips += s.breaker_trips;
        out.timeline.extend(s.timeline.iter().cloned());
    }
    out.timeline
        .sort_by(|a, b| a.t_s.partial_cmp(&b.t_s).unwrap_or(Ordering::Equal));
    out
}

/// The measurement window length shared by every cell of a partitioned
/// run, in seconds (duration minus warmup, floored at machine epsilon).
#[allow(dead_code)]
fn measured_secs(duration: SimDuration, warmup: SimDuration) -> f64 {
    (duration.as_secs_f64() - warmup.as_secs_f64()).max(f64::EPSILON)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultTimelineEntry;

    #[test]
    fn tick_blocks_split_on_windowed_count() {
        let csv = "t_s,metric,label,value\n\
                   0.1,windowed_count,,5\n\
                   0.1,windowed_p50_seconds,,0.001\n\
                   0.1,uqsim_live_requests,,3\n\
                   0.2,windowed_count,,7\n\
                   0.2,windowed_p50_seconds,,0.002\n";
        let blocks = tick_blocks(csv);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].len(), 3);
        assert_eq!(blocks[1].len(), 2);
    }

    #[test]
    fn fault_timelines_interleave_by_time_stably() {
        let a = FaultSummary {
            dropped: 2,
            timeline: vec![
                FaultTimelineEntry {
                    t_s: 0.1,
                    what: "a-first".into(),
                },
                FaultTimelineEntry {
                    t_s: 0.5,
                    what: "a-second".into(),
                },
            ],
            ..FaultSummary::default()
        };
        let b = FaultSummary {
            dropped: 3,
            timeline: vec![FaultTimelineEntry {
                t_s: 0.5,
                what: "b-first".into(),
            }],
            ..FaultSummary::default()
        };
        let m = merge_fault_summaries(&[&a, &b]);
        assert_eq!(m.dropped, 5);
        let order: Vec<&str> = m.timeline.iter().map(|e| e.what.as_str()).collect();
        // Stable sort: the t=0.5 entries keep cell order (a before b).
        assert_eq!(order, ["a-first", "a-second", "b-first"]);
    }
}
