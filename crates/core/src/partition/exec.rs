//! The partitioned execution engine: cells on shards, synced and merged.
//!
//! Spec: DESIGN.md §11.1 ("Execution"). [`run_partitioned`] is the
//! partitioned sibling of [`run_one_faulted`](crate::run::run_one_faulted):
//! it splits the scenario into cells, assigns them to shards, drives every
//! cell through the same K-independent schedule of conservative sync
//! windows, and merges the per-cell outputs deterministically. The shard
//! count (and the worker scheduling under it) affects wall-clock time
//! only — never a single output byte.

use std::collections::HashSet;

use minipool::Pool;
use serde::Value;

use crate::config::ScenarioConfig;
use crate::error::{SimError, SimResult};
use crate::fault::{FaultPlan, FaultSpec};
use crate::run::RunResult;
use crate::telemetry::{MetricsRegistry, StreamingHistogram, TelemetryConfig};
use crate::time::{SimDuration, SimTime};
use crate::trace::{chrome_trace, AuditReport};

use super::clock::ShardClocks;
use super::graph::split_fault_plan;
use super::merge::{
    merge_audits, merge_chrome_traces, merge_csv, merge_json, merge_registries, merge_results,
};
use super::plan::{cell_seed, PartitionPlan};

/// Knobs for a partitioned run. Only [`PartitionOptions::shards`] affects
/// scheduling; everything else configures what each cell records, and is
/// applied identically to every cell.
#[derive(Debug, Clone)]
pub struct PartitionOptions {
    /// Worker shards to spread cells over (`0` is treated as `1`).
    pub shards: usize,
    /// Telemetry configuration installed on every cell.
    /// [`TelemetryConfig::self_profile`] is forcibly disabled — wall-clock
    /// samples are inherently nondeterministic and would break the
    /// byte-identical-output guarantee.
    pub telemetry: TelemetryConfig,
    /// Span-log capacity per cell; `Some` enables span tracing (and with
    /// it the merged Chrome trace and audit report).
    pub span_tracing: Option<usize>,
    /// Conservative sync windows per run (`0` is treated as `1`). The
    /// window schedule depends on the run duration and this count only —
    /// never on the shard count — so chunked advancement preserves
    /// K-invariance (spec invariant **P4**).
    pub sync_windows: usize,
}

impl PartitionOptions {
    /// Options for a plain `shards`-way run: default (decomposition-only)
    /// telemetry plus the streaming critical-path profile, no span tracing,
    /// 8 sync windows.
    pub fn with_shards(shards: usize) -> Self {
        PartitionOptions {
            shards: shards.max(1),
            telemetry: TelemetryConfig {
                critpath: true,
                ..TelemetryConfig::default()
            },
            span_tracing: None,
            sync_windows: 8,
        }
    }
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions::with_shards(1)
    }
}

/// Everything one cell produced: its run summary plus the raw material
/// (samples, histograms, registry, exports) the `merge` layer needs to reassemble cluster-level outputs losslessly.
#[derive(Debug, Clone)]
pub struct CellOutput {
    /// Cell index (position in [`PartitionPlan::cells`]).
    pub cell: usize,
    /// Shard that executed the cell (diagnostic only — results never
    /// depend on it).
    pub shard: usize,
    /// Machines the cell owns (sizes the Chrome-trace pid space).
    pub machines: usize,
    /// Instances the cell owns (weights the utilization merge).
    pub instances: usize,
    /// Machines with irq cores (weights the network-utilization merge).
    pub irq_machines: usize,
    /// The cell's run summary, under its derived [`cell_seed`].
    pub result: RunResult,
    /// Degraded completions inside the measurement window (the goodput
    /// subtrahend; re-aggregated by [`merge_results`]).
    pub degraded_measured: u64,
    /// Raw post-warmup latency samples, seconds, in completion order.
    pub latency_samples: Vec<f64>,
    /// Raw timeout-latency samples, seconds, in deadline order.
    pub timeout_samples: Vec<f64>,
    /// The cell's Prometheus registry.
    pub registry: MetricsRegistry,
    /// The cell's e2e latency histogram (when telemetry is enabled).
    pub e2e_hist: Option<StreamingHistogram>,
    /// The cell's per-component latency histograms (when telemetry is
    /// enabled), in [`LatencyComponent`](crate::telemetry::LatencyComponent)
    /// order.
    pub comp_hists: Option<Vec<StreamingHistogram>>,
    /// The cell's time-series CSV (when the sampler is enabled).
    pub csv: Option<String>,
    /// The cell's full `metrics_json` dump.
    pub json: Value,
    /// The cell's Chrome trace (when span tracing is enabled).
    pub chrome: Option<Value>,
    /// The cell's audit report (when span tracing is enabled).
    pub audit: Option<AuditReport>,
    /// Span events this cell dropped because its log filled up (`0` when
    /// tracing is off). A nonzero value means the audit and Chrome trace
    /// are incomplete — raise the per-cell capacity.
    pub span_dropped: u64,
}

/// A completed partitioned run: the merged cluster-level summary plus the
/// per-cell outputs and the plan that produced them.
#[derive(Debug, Clone)]
pub struct PartitionedRun {
    /// Cluster-level summary (master seed, merged per [`merge_results`]).
    pub result: RunResult,
    /// Per-cell outputs, in cell order.
    pub cells: Vec<CellOutput>,
    /// Shard count the run used.
    pub shards: usize,
    /// `assignment[cell] = shard` (diagnostic only).
    pub assignment: Vec<usize>,
}

impl PartitionedRun {
    /// The merged Prometheus exposition (byte-identical at any shard
    /// count).
    pub fn prometheus(&self) -> String {
        merge_registries(&self.cells).to_prometheus()
    }

    /// The merged time-series CSV, or `None` when the sampler was off.
    pub fn csv(&self) -> Option<String> {
        merge_csv(&self.cells)
    }

    /// The merged JSON metrics dump (cluster header + per-cell dumps).
    pub fn json(&self) -> Value {
        merge_json(&self.result, &self.cells)
    }

    /// The merged Chrome trace, or `None` when span tracing was off.
    pub fn chrome_trace(&self) -> Option<Value> {
        merge_chrome_traces(&self.cells)
    }

    /// The merged audit report, or `None` when span tracing was off.
    pub fn audit(&self) -> Option<AuditReport> {
        merge_audits(&self.cells)
    }
}

/// Rejects fault-plan references that no cell will claim, with the same
/// [`SimError::UnknownEntity`] the unsharded
/// [`Simulator::install_faults`](crate::sim::Simulator::install_faults)
/// raises — per-cell plans are *filtered*, so without this check a
/// misspelled entity name would silently vanish instead of erroring.
fn validate_fault_plan(cfg: &ScenarioConfig, plan: &FaultPlan) -> SimResult<()> {
    let instances: HashSet<&str> = cfg.instances.iter().map(|i| i.name.as_str()).collect();
    let machines: HashSet<&str> = cfg.machines.iter().map(|m| m.name.as_str()).collect();
    let clients: HashSet<&str> = cfg.clients.iter().map(|c| c.name.as_str()).collect();
    let unknown = |kind: &'static str, name: &str| SimError::UnknownEntity {
        kind,
        name: name.to_string(),
    };
    for spec in &plan.faults {
        match spec {
            FaultSpec::InstanceCrash { instance, .. }
            | FaultSpec::PoolLeak { up: instance, .. } => {
                if !instances.contains(instance.as_str()) {
                    return Err(unknown("instance", instance));
                }
            }
            FaultSpec::MachineSlowdown { machine, .. }
            | FaultSpec::NetworkDegrade { machine, .. } => {
                if !machines.contains(machine.as_str()) {
                    return Err(unknown("machine", machine));
                }
            }
        }
    }
    for p in &plan.policy.clients {
        if !clients.contains(p.client.as_str()) {
            return Err(unknown("client", &p.client));
        }
    }
    Ok(())
}

/// Builds, syncs, and summarizes one cell (see [`run_partitioned`]).
#[allow(clippy::too_many_arguments)]
fn run_cell(
    plan: &PartitionPlan,
    clocks: &ShardClocks,
    cell: usize,
    shard: usize,
    faults: Option<&FaultPlan>,
    master_seed: u64,
    duration: SimDuration,
    opts: &PartitionOptions,
) -> SimResult<CellOutput> {
    let spec = &plan.cells[cell];
    let sub = spec.config.with_seed(cell_seed(master_seed, cell as u64));
    let mut sim = sub.build()?;
    if let Some(p) = faults {
        // Install even when the filtered slice is empty: the presence of a
        // plan changes which metric families the registry emits, and every
        // cell must stay structurally congruent for the merge.
        sim.install_faults(&split_fault_plan(p, spec))?;
    }
    let mut tcfg = opts.telemetry;
    tcfg.self_profile = false;
    sim.enable_telemetry(tcfg);
    if let Some(cap) = opts.span_tracing {
        sim.enable_span_tracing(cap);
    }

    // Advance through the K-independent window schedule, waiting at each
    // boundary until every in-neighbor's published clock guarantees no
    // remote event can still land inside the window (inert today — closed
    // cells have no in-neighbors, so horizons are infinite).
    let windows = opts.sync_windows.max(1) as u128;
    let total = duration.as_nanos() as u128;
    for j in 1..windows {
        let boundary = SimTime::from_nanos((total * j / windows) as u64);
        while clocks.horizon(cell, &plan.lookahead) < boundary {
            std::thread::yield_now();
        }
        sim.run_until_paused(boundary);
        clocks.publish(cell, boundary);
    }
    let deadline = SimTime::ZERO + duration;
    while clocks.horizon(cell, &plan.lookahead) < deadline {
        std::thread::yield_now();
    }
    sim.run_until(deadline);
    clocks.publish(cell, deadline);

    let result = crate::run::summarize(&sim, sub.seed, duration, sub.warmup_s);
    let span_dropped = sim.span_log().map_or(0, |log| log.dropped());
    let chrome = sim
        .span_log()
        .map(|log| chrome_trace(log, &sim.trace_meta()));
    Ok(CellOutput {
        cell,
        shard,
        machines: sub.machines.len(),
        instances: sub.instances.len(),
        irq_machines: sub
            .machines
            .iter()
            .filter(|m| m.network.irq_cores > 0)
            .count(),
        degraded_measured: sim.degraded_measured(),
        latency_samples: sim.latency_samples().to_vec(),
        timeout_samples: sim.timeout_latency_samples().to_vec(),
        registry: sim.metrics_registry(),
        e2e_hist: sim.e2e_latency_histogram().cloned(),
        comp_hists: sim.component_latency_histograms().map(<[_]>::to_vec),
        csv: sim.metrics_csv(),
        json: sim.metrics_json(),
        audit: sim.audit_trace(),
        chrome,
        span_dropped,
        result,
    })
}

/// Runs `cfg` partitioned across `opts.shards` worker threads and merges
/// the per-cell outputs into cluster-level results.
///
/// The scenario is split into request-closed cells
/// ([`split_cells`](crate::partition::split_cells)), each cell runs as an independent simulator under
/// its [`cell_seed`], shards execute cells in parallel, and every output —
/// run summary, Prometheus text, CSV, JSON, Chrome trace, audit, chaos
/// summary — is merged in cell order. **The merged outputs are
/// byte-identical at any `shards` value**, faulted or not; see the module
/// docs and DESIGN.md §11 for the argument.
///
/// Relative to the unsharded
/// [`run_one_faulted`](crate::run::run_one_faulted), per-cell RNG streams differ from the
/// single global stream, so partitioned results are statistically
/// equivalent but not bitwise equal to unsharded results — compare
/// partitioned runs against partitioned runs.
///
/// # Errors
///
/// Propagates cell-construction failures and fault-plan references to
/// unknown entities (checked against the whole scenario before any cell
/// runs, so a typo errors rather than silently filtering away). When
/// several cells fail, the lowest-numbered cell's error wins,
/// deterministically.
///
/// # Examples
///
/// ```
/// use uqsim_core::config::ScenarioConfig;
/// use uqsim_core::partition::{run_partitioned, PartitionOptions};
/// use uqsim_core::time::SimDuration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = ScenarioConfig::from_json(uqsim_core::run::EXAMPLE_SCENARIO)?;
/// let run = run_partitioned(
///     &cfg,
///     None,
///     7,
///     SimDuration::from_millis(400),
///     &PartitionOptions::with_shards(2),
/// )?;
/// assert!(run.result.completed > 0);
/// assert_eq!(run.cells.len(), 1); // the example scenario is one cell
/// # Ok(())
/// # }
/// ```
pub fn run_partitioned(
    cfg: &ScenarioConfig,
    faults: Option<&FaultPlan>,
    seed: u64,
    duration: SimDuration,
    opts: &PartitionOptions,
) -> SimResult<PartitionedRun> {
    if let Some(plan) = faults {
        validate_fault_plan(cfg, plan)?;
    }
    let plan = PartitionPlan::new(cfg, opts.shards)?;
    let clocks = ShardClocks::new(plan.cells.len());
    let plan_ref = &plan;
    let clocks_ref = &clocks;
    let tasks: Vec<_> = (0..plan.shards)
        .map(|s| {
            move || -> Vec<(usize, SimResult<CellOutput>)> {
                plan_ref
                    .shard_cells(s)
                    .into_iter()
                    .map(|cell| {
                        (
                            cell,
                            run_cell(plan_ref, clocks_ref, cell, s, faults, seed, duration, opts),
                        )
                    })
                    .collect()
            }
        })
        .collect();
    let pool = Pool::new(plan.shards.min(plan.cells.len().max(1)));
    let mut outputs: Vec<(usize, SimResult<CellOutput>)> =
        pool.run(tasks).into_iter().flatten().collect();
    outputs.sort_by_key(|&(cell, _)| cell);
    let mut cells = Vec::with_capacity(outputs.len());
    for (_, out) in outputs {
        cells.push(out?);
    }
    let result = merge_results(seed, &cells);
    Ok(PartitionedRun {
        result,
        cells,
        shards: plan.shards,
        assignment: plan.assignment,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::EXAMPLE_SCENARIO;

    #[test]
    fn unknown_fault_entities_error_before_any_cell_runs() {
        let cfg = ScenarioConfig::from_json(EXAMPLE_SCENARIO).unwrap();
        let plan = FaultPlan::from_json(
            r#"{ "faults": [ { "kind": "instance_crash",
                 "instance": "nope", "at_s": 0.1 } ] }"#,
        )
        .unwrap();
        let err = run_partitioned(
            &cfg,
            Some(&plan),
            1,
            SimDuration::from_millis(100),
            &PartitionOptions::with_shards(2),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SimError::UnknownEntity {
                kind: "instance",
                ..
            }
        ));
    }

    #[test]
    fn shard_count_never_changes_the_merged_result() {
        let cfg = ScenarioConfig::from_json(EXAMPLE_SCENARIO).unwrap();
        let d = SimDuration::from_millis(300);
        let one = run_partitioned(&cfg, None, 5, d, &PartitionOptions::with_shards(1)).unwrap();
        let four = run_partitioned(&cfg, None, 5, d, &PartitionOptions::with_shards(4)).unwrap();
        assert_eq!(one.result, four.result);
        assert_eq!(one.prometheus(), four.prometheus());
    }
}
