//! Barrier-free conservative synchronization clocks.
//!
//! Spec: DESIGN.md §11.4. Every cell publishes a monotone *clock* — a
//! simulated time it is guaranteed never to send an event before — into a
//! lock-free table. A cell may safely advance to its **horizon**: the
//! minimum over its in-neighbors of `published clock + link lookahead`.
//! There is no global barrier; each cell advances as far as its own
//! neighborhood allows (the Chandy–Misra–Bryant null-message discipline
//! with the null messages replaced by shared atomic clocks).
//!
//! While cells are request-closed the in-neighbor sets are empty and every
//! horizon is [`SimTime::MAX`], so the clocks are inert — but they are the
//! load-bearing contract for the v2 cross-cell protocol, and the horizon
//! math is pinned by `horizons_follow_neighbor_clocks` in
//! `tests/partition.rs` (spec invariant **P6**).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::time::SimTime;

use super::plan::LookaheadMatrix;

/// Published per-cell clocks: `clock(c)` is a promise that cell `c` will
/// never emit an event timestamped earlier than the published value.
///
/// # Examples
///
/// ```
/// use uqsim_core::partition::{LookaheadMatrix, ShardClocks};
/// use uqsim_core::time::{SimDuration, SimTime};
///
/// let la = LookaheadMatrix::from_links(2, &[(0, 1, SimDuration::from_micros(20))]);
/// let clocks = ShardClocks::new(2);
/// // Cell 1 may not advance past cell 0's clock + 20us:
/// clocks.publish(0, SimTime::from_nanos(1_000));
/// assert_eq!(clocks.horizon(1, &la), SimTime::from_nanos(21_000));
/// // Cell 0 has no in-links, so its horizon is unbounded:
/// assert_eq!(clocks.horizon(0, &la), SimTime::MAX);
/// ```
#[derive(Debug)]
pub struct ShardClocks {
    clocks: Vec<AtomicU64>,
}

impl ShardClocks {
    /// Clocks for `n` cells, all starting at time zero.
    pub fn new(n: usize) -> Self {
        ShardClocks {
            clocks: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of cells tracked.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// `true` when no cells are tracked.
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// Publishes `cell`'s clock. Clocks are monotone: publishing an
    /// earlier time than already published is a no-op, so a worker may
    /// republish freely.
    pub fn publish(&self, cell: usize, t: SimTime) {
        self.clocks[cell].fetch_max(t.as_nanos(), Ordering::Release);
    }

    /// The last published clock of `cell`.
    pub fn clock(&self, cell: usize) -> SimTime {
        SimTime::from_nanos(self.clocks[cell].load(Ordering::Acquire))
    }

    /// The conservative horizon of `cell`: the earliest simulated time at
    /// which any in-neighbor could still deliver an event, i.e.
    /// `min over in-links (src → cell) of clock(src) + lookahead(src, cell)`,
    /// or [`SimTime::MAX`] when the cell has no in-links. Advancing
    /// through every event `<= horizon` can never miss a remote event —
    /// the conservative-sync safety property (spec invariant **P6**).
    pub fn horizon(&self, cell: usize, lookahead: &LookaheadMatrix) -> SimTime {
        let mut h = SimTime::MAX;
        for src in lookahead.in_neighbors(cell) {
            let la = lookahead
                .between(src, cell)
                .expect("in_neighbors only yields linked cells");
            let bound = self.clock(src).checked_add(la).unwrap_or(SimTime::MAX);
            h = h.min(bound);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn clocks_are_monotone() {
        let c = ShardClocks::new(1);
        c.publish(0, SimTime::from_nanos(500));
        c.publish(0, SimTime::from_nanos(100)); // stale republish
        assert_eq!(c.clock(0), SimTime::from_nanos(500));
    }

    #[test]
    fn horizon_is_min_over_in_links() {
        let la = LookaheadMatrix::from_links(
            3,
            &[
                (0, 2, SimDuration::from_nanos(10)),
                (1, 2, SimDuration::from_nanos(1_000)),
            ],
        );
        let c = ShardClocks::new(3);
        c.publish(0, SimTime::from_nanos(90));
        c.publish(1, SimTime::from_nanos(0));
        // min(90 + 10, 0 + 1000) = 100.
        assert_eq!(c.horizon(2, &la), SimTime::from_nanos(100));
        c.publish(1, SimTime::from_nanos(40));
        // The 0-link still binds: min(100, 1040) = 100.
        assert_eq!(c.horizon(2, &la), SimTime::from_nanos(100));
        c.publish(0, SimTime::from_nanos(10_000));
        assert_eq!(c.horizon(2, &la), SimTime::from_nanos(1_040));
    }

    #[test]
    fn unlinked_cells_have_unbounded_horizons() {
        let la = LookaheadMatrix::unlinked(2);
        let c = ShardClocks::new(2);
        c.publish(0, SimTime::from_nanos(5));
        assert_eq!(c.horizon(0, &la), SimTime::MAX);
        assert_eq!(c.horizon(1, &la), SimTime::MAX);
    }

    #[test]
    fn duplicate_links_keep_the_minimum_lookahead() {
        let la = LookaheadMatrix::from_links(
            2,
            &[
                (0, 1, SimDuration::from_nanos(50)),
                (0, 1, SimDuration::from_nanos(20)),
            ],
        );
        assert_eq!(la.between(0, 1), Some(SimDuration::from_nanos(20)));
    }
}
