//! Partitioned single-run parallelism: shard one scenario across cores.
//!
//! The sweep engine (`uqsim-runner`) parallelizes *across* independent
//! simulations; this module parallelizes *inside* one big scenario. The
//! full execution-model specification — ownership rules, message timestamp
//! invariants, lookahead derivation, and the determinism argument — lives
//! in `DESIGN.md §11`; the spec's invariants are referenced below and in
//! the test suite as **P1**–**P7**.
//!
//! # The model in one paragraph
//!
//! A scenario is first split into **cells**: the connected components of
//! the *must-colocate* graph over machines and clients (edges: every
//! machine a request type can touch, every client's mix and roots, and
//! both endpoints of every connection pool — see [`split_cells`]). A cell
//! is request-closed by construction: no request, reply, pool grant, or
//! fault effect ever crosses a cell boundary (**P1**), so each cell runs
//! as a complete, independent [`Simulator`](crate::sim::Simulator) with
//! its own ladder queue, arenas, RNG streams, and telemetry sampler. Cells
//! are deterministically assigned to `K` shards (LPT bin packing, **P2**)
//! and driven by `vendor/minipool` workers through conservative sync
//! windows ([`ShardClocks`]); per-cell seeds derive from the master seed
//! and the cell index alone (**P3**). Because nothing a cell computes
//! depends on `K`, worker scheduling, or sync timing (**P4**), and every
//! merge (the `merge` layer) is a deterministic function of per-cell outputs in
//! cell order (**P5**), the merged run/trace/metrics/chaos outputs are
//! **byte-identical at any shard count** — the same guarantee the sweep
//! engine makes for `--jobs`.
//!
//! Cross-*cell* traffic does not exist in this version (cells are closed);
//! the conservative-sync layer ([`ShardClocks`], [`LookaheadMatrix`])
//! still bounds every cell's advance the CMB way — horizon = min over
//! in-neighbors of (published clock + lookahead), with the lookahead of a
//! link derived from the wire-latency floor
//! ([`Distribution::lower_bound`](crate::dist::Distribution::lower_bound))
//! that every cross-machine hop must pay (**P6**). DESIGN.md §11.6
//! specifies the v2 cross-cell RPC protocol on top of the same clocks.
//!
//! # Quick start
//!
//! ```
//! use uqsim_core::config::ScenarioConfig;
//! use uqsim_core::partition::{run_partitioned, PartitionOptions};
//! use uqsim_core::time::SimDuration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = ScenarioConfig::from_json(uqsim_core::run::EXAMPLE_SCENARIO)?;
//! let d = SimDuration::from_millis(400);
//! let two = run_partitioned(&cfg, None, 7, d, &PartitionOptions::with_shards(2))?;
//! let eight = run_partitioned(&cfg, None, 7, d, &PartitionOptions::with_shards(8))?;
//! // The shard count affects wall-clock only, never results:
//! assert_eq!(two.result, eight.result);
//! # Ok(())
//! # }
//! ```

mod clock;
mod exec;
mod graph;
mod merge;
mod plan;

pub use clock::ShardClocks;
pub use exec::{run_partitioned, CellOutput, PartitionOptions, PartitionedRun};
pub use graph::{split_cells, split_fault_plan, CellSpec};
pub use merge::{
    merge_audits, merge_chrome_traces, merge_csv, merge_fault_summaries, merge_json,
    merge_registries, merge_results,
};
pub use plan::{cell_seed, LookaheadMatrix, PartitionPlan};
