//! Inter-microservice request paths (`path.json`, §III-C).
//!
//! A *request type* is a DAG of [`PathNodeSpec`]s. Each node names a
//! microservice (and the intra-service execution path to run there) or the
//! client sink. Path nodes serve the paper's three roles:
//!
//! 1. **Traversal order & fan-out** — after a node completes, a copy of the
//!    job is sent to each child.
//! 2. **Synchronization (fan-in)** — a node with multiple parents fires only
//!    once all parents' copies have arrived.
//! 3. **Blocking** — request edges acquire HTTP/1.1 connections (released
//!    when the matching reply edge is delivered), and a node may hold its
//!    worker thread until a downstream reply node arrives (RPC-style
//!    synchronous calls).

use crate::ids::{InstanceId, PathNodeId, ServiceId};
use serde::{Deserialize, Serialize};

/// How a node picks the concrete instance of its target service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum InstanceSelect {
    /// Always this instance.
    Fixed {
        /// The instance.
        instance: InstanceId,
    },
    /// Round-robin across these instances, advancing once per request
    /// entering the node (the NGINX load-balancer policy of §IV-B).
    RoundRobin {
        /// Candidate instances.
        instances: Vec<InstanceId>,
    },
    /// Reuse the instance that executed another node of the same request
    /// (reply/continuation nodes return to their caller).
    SameAsNode {
        /// The earlier node.
        node: PathNodeId,
    },
}

/// How the intra-service execution path is chosen at node entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum PathSelect {
    /// Always this execution path index.
    Fixed {
        /// Index into [`crate::service::ServiceModel::paths`].
        index: usize,
    },
    /// Draw from the service's `path_probabilities` state machine.
    Probabilistic,
}

/// What kind of edge leads *into* this node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum LinkKind {
    /// A fresh request: acquire a connection from the (sender → target)
    /// pool, or an unbounded ephemeral connection if no pool is configured.
    Request,
    /// A reply traveling back on the connection that carried the request
    /// into node `of`; that connection is released upon delivery.
    Reply {
        /// The node whose entry connection this reply reuses.
        of: PathNodeId,
    },
    /// A reply traveling back on the connection that carried the request
    /// into the *sending parent* node. This is the right choice when the
    /// parent is the service visit being replied to (e.g. the cache tier
    /// replying to the front end).
    ReplyToParent,
    /// A reply whose connection depends on which parent fans out to it:
    /// each `(parent, of)` entry routes the copy from `parent` over the
    /// connection that entered node `of`. Needed by fan-in joins whose
    /// parents are themselves continuation nodes — e.g. a frontend join
    /// collecting replies from two backend services, where the copy from
    /// each backend's compose node must travel on the connection that
    /// entered that backend's *first* node.
    ReplyVia {
        /// `(sending parent node, node whose entry connection to reuse)`.
        entries: Vec<(PathNodeId, PathNodeId)>,
    },
}

/// How a fan-in node decides it has seen enough parent copies to fire.
///
/// Healthy runs behave identically under every policy (all parents arrive
/// eventually); the policies differ under partial failure, where `All`
/// blocks forever on a dead branch while `Quorum`/`BestEffort` let the
/// request degrade gracefully (see [`crate::fault`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum FanInPolicy {
    /// Fire only once every parent's copy has arrived (the default, and the
    /// paper's synchronization semantics).
    #[default]
    All,
    /// Fire as soon as `k` parent copies have arrived; later copies are
    /// absorbed without re-firing.
    Quorum {
        /// Copies required to fire (clamped to the node's fan-in).
        k: u32,
    },
    /// Fire on the first arriving copy (equivalent to `quorum(1)`).
    BestEffort,
}

impl FanInPolicy {
    /// Number of parent copies required to fire for a node with the given
    /// fan-in (always in `1..=fan_in`).
    pub fn required(self, fan_in: usize) -> usize {
        let fan_in = fan_in.max(1);
        match self {
            FanInPolicy::All => fan_in,
            FanInPolicy::Quorum { k } => (k as usize).clamp(1, fan_in),
            FanInPolicy::BestEffort => 1,
        }
    }
}

/// What the node runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum NodeTarget {
    /// Execute on an instance of a microservice.
    Service {
        /// The service model.
        service: ServiceId,
        /// Instance selection policy.
        instance: InstanceSelect,
        /// Execution-path selection policy.
        exec_path: PathSelect,
    },
    /// Terminal: deliver the response to the issuing client. A request
    /// completes when this node fires.
    ClientSink,
}

/// One node of a request-type DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathNodeSpec {
    /// Human-readable name.
    pub name: String,
    /// What to run.
    pub target: NodeTarget,
    /// Child nodes receiving a copy of the job after this node completes.
    pub children: Vec<PathNodeId>,
    /// Edge semantics for entering this node.
    pub link: LinkKind,
    /// If set, the worker thread executing this node stays blocked (held,
    /// core released) until the given node's job arrives back at this
    /// instance — synchronous RPC semantics (Apache Thrift, §IV-C).
    #[serde(default)]
    pub block_thread_until: Option<PathNodeId>,
    /// If set, this node must execute on the same worker thread that
    /// executed the given node (continuations of blocked threads).
    #[serde(default)]
    pub pin_thread_of: Option<PathNodeId>,
    /// Fan-in firing policy for nodes with multiple parents (ignored for
    /// fan-in 1). Defaults to [`FanInPolicy::All`].
    #[serde(default)]
    pub fan_in_policy: FanInPolicy,
}

impl PathNodeSpec {
    /// A plain request node on a fixed instance running exec path 0.
    pub fn request(name: impl Into<String>, service: ServiceId, instance: InstanceId) -> Self {
        PathNodeSpec {
            name: name.into(),
            target: NodeTarget::Service {
                service,
                instance: InstanceSelect::Fixed { instance },
                exec_path: PathSelect::Fixed { index: 0 },
            },
            children: Vec::new(),
            link: LinkKind::Request,
            block_thread_until: None,
            pin_thread_of: None,
            fan_in_policy: FanInPolicy::All,
        }
    }

    /// A reply node returning to the instance that executed `caller_node`,
    /// on the connection that entered `conn_node`.
    pub fn reply(
        name: impl Into<String>,
        service: ServiceId,
        caller_node: PathNodeId,
        conn_node: PathNodeId,
    ) -> Self {
        PathNodeSpec {
            name: name.into(),
            target: NodeTarget::Service {
                service,
                instance: InstanceSelect::SameAsNode { node: caller_node },
                exec_path: PathSelect::Fixed { index: 0 },
            },
            children: Vec::new(),
            link: LinkKind::Reply { of: conn_node },
            block_thread_until: None,
            pin_thread_of: None,
            fan_in_policy: FanInPolicy::All,
        }
    }

    /// A reply node returning to the instance that executed `caller_node`,
    /// on the connection of whichever parent fans out to it (the usual
    /// choice for joins collecting several replies).
    pub fn reply_to_parent(
        name: impl Into<String>,
        service: ServiceId,
        caller_node: PathNodeId,
    ) -> Self {
        PathNodeSpec {
            name: name.into(),
            target: NodeTarget::Service {
                service,
                instance: InstanceSelect::SameAsNode { node: caller_node },
                exec_path: PathSelect::Fixed { index: 0 },
            },
            children: Vec::new(),
            link: LinkKind::ReplyToParent,
            block_thread_until: None,
            pin_thread_of: None,
            fan_in_policy: FanInPolicy::All,
        }
    }

    /// The terminal client sink, replying on the connection that entered
    /// `root` (the client's own connection).
    pub fn client_sink(root: PathNodeId) -> Self {
        PathNodeSpec {
            name: "client_sink".into(),
            target: NodeTarget::ClientSink,
            children: Vec::new(),
            link: LinkKind::Reply { of: root },
            block_thread_until: None,
            pin_thread_of: None,
            fan_in_policy: FanInPolicy::All,
        }
    }

    /// Sets the execution path selection.
    pub fn with_exec_path(mut self, select: PathSelect) -> Self {
        if let NodeTarget::Service { exec_path, .. } = &mut self.target {
            *exec_path = select;
        }
        self
    }
}

/// A request type: the DAG a request of this kind traverses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestType {
    /// Name, e.g. `"get_post_cache_hit"`.
    pub name: String,
    /// Nodes, indexed by [`PathNodeId`].
    pub nodes: Vec<PathNodeSpec>,
    /// The root node (entered from the client).
    pub root: PathNodeId,
    /// Fan-in (parent count) per node; computed by [`RequestType::validate`].
    #[serde(default)]
    pub fan_in: Vec<usize>,
}

impl RequestType {
    /// Creates a request type; call [`RequestType::validate`] before use.
    pub fn new(name: impl Into<String>, nodes: Vec<PathNodeSpec>, root: PathNodeId) -> Self {
        RequestType {
            name: name.into(),
            nodes,
            root,
            fan_in: Vec::new(),
        }
    }

    /// Validates the DAG and computes fan-in counts.
    ///
    /// # Errors
    ///
    /// Returns a message if the graph is empty, has dangling child
    /// references, is cyclic, the root has parents, some node is
    /// unreachable, no client sink exists, or a sink has children.
    pub fn validate(&mut self) -> Result<(), String> {
        let n = self.nodes.len();
        if n == 0 {
            return Err(format!("request type {}: no nodes", self.name));
        }
        if self.root.index() >= n {
            return Err(format!("request type {}: root out of range", self.name));
        }
        let mut fan_in = vec![0usize; n];
        for (i, node) in self.nodes.iter().enumerate() {
            for &c in &node.children {
                if c.index() >= n {
                    return Err(format!(
                        "request type {}: node {i} has dangling child {c}",
                        self.name
                    ));
                }
                fan_in[c.index()] += 1;
            }
            if matches!(node.target, NodeTarget::ClientSink) && !node.children.is_empty() {
                return Err(format!(
                    "request type {}: client sink has children",
                    self.name
                ));
            }
            match &node.link {
                LinkKind::Reply { of } => {
                    if of.index() >= n {
                        return Err(format!(
                            "request type {}: node {i} replies on missing node {of}",
                            self.name
                        ));
                    }
                }
                LinkKind::ReplyVia { entries } => {
                    if entries.is_empty() {
                        return Err(format!(
                            "request type {}: node {i} has an empty reply_via map",
                            self.name
                        ));
                    }
                    for (parent, of) in entries {
                        if parent.index() >= n || of.index() >= n {
                            return Err(format!(
                                "request type {}: node {i} reply_via references missing nodes",
                                self.name
                            ));
                        }
                    }
                }
                LinkKind::Request | LinkKind::ReplyToParent => {}
            }
        }
        if fan_in[self.root.index()] != 0 {
            return Err(format!("request type {}: root has parents", self.name));
        }
        // Topological check (Kahn) + reachability from root.
        let mut indeg = fan_in.clone();
        let mut stack = vec![self.root];
        let mut visited = vec![false; n];
        visited[self.root.index()] = true;
        let mut seen = 0;
        while let Some(u) = stack.pop() {
            seen += 1;
            for &c in &self.nodes[u.index()].children {
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    if visited[c.index()] {
                        return Err(format!("request type {}: node revisited", self.name));
                    }
                    visited[c.index()] = true;
                    stack.push(c);
                }
            }
        }
        if seen != n {
            return Err(format!(
                "request type {}: cycle or unreachable nodes ({seen}/{n} visited)",
                self.name
            ));
        }
        let sinks = self
            .nodes
            .iter()
            .filter(|nd| matches!(nd.target, NodeTarget::ClientSink))
            .count();
        if sinks != 1 {
            return Err(format!(
                "request type {}: expected exactly 1 client sink, found {sinks}",
                self.name
            ));
        }
        self.fan_in = fan_in;
        Ok(())
    }

    /// The number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Incremental construction of a [`RequestType`] DAG: add nodes (getting
/// their ids back), wire edges, and finish with validation.
///
/// # Examples
///
/// ```
/// use uqsim_core::ids::{InstanceId, ServiceId};
/// use uqsim_core::path::{PathNodeSpec, RequestTypeBuilder};
///
/// # fn main() -> Result<(), String> {
/// let svc = ServiceId::from_raw(0);
/// let inst = InstanceId::from_raw(0);
/// let mut b = RequestTypeBuilder::new("get");
/// let front = b.add(PathNodeSpec::request("front", svc, inst));
/// let sink = b.add(PathNodeSpec::client_sink(front));
/// b.link(front, sink);
/// let ty = b.finish()?;
/// assert_eq!(ty.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RequestTypeBuilder {
    name: String,
    nodes: Vec<PathNodeSpec>,
}

impl RequestTypeBuilder {
    /// Starts a builder; the first added node becomes the root.
    pub fn new(name: impl Into<String>) -> Self {
        RequestTypeBuilder {
            name: name.into(),
            nodes: Vec::new(),
        }
    }

    /// Adds a node (its `children` may be empty; wire edges with
    /// [`RequestTypeBuilder::link`]) and returns its id.
    pub fn add(&mut self, spec: PathNodeSpec) -> PathNodeId {
        let id = PathNodeId::from_raw(self.nodes.len() as u32);
        self.nodes.push(spec);
        id
    }

    /// Adds an edge from `parent` to `child`.
    ///
    /// # Panics
    ///
    /// Panics if either id was not returned by this builder's `add`.
    pub fn link(&mut self, parent: PathNodeId, child: PathNodeId) {
        assert!(parent.index() < self.nodes.len(), "unknown parent {parent}");
        assert!(child.index() < self.nodes.len(), "unknown child {child}");
        self.nodes[parent.index()].children.push(child);
    }

    /// Mutable access to a node added earlier (to set blocking/pinning).
    ///
    /// # Panics
    ///
    /// Panics if the id was not returned by this builder's `add`.
    pub fn node_mut(&mut self, id: PathNodeId) -> &mut PathNodeSpec {
        &mut self.nodes[id.index()]
    }

    /// Validates and returns the request type (rooted at the first node).
    ///
    /// # Errors
    ///
    /// Propagates [`RequestType::validate`] failures.
    pub fn finish(self) -> Result<RequestType, String> {
        let mut ty = RequestType::new(self.name, self.nodes, PathNodeId::from_raw(0));
        ty.validate()?;
        Ok(ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(n: u32) -> PathNodeId {
        PathNodeId::from_raw(n)
    }
    fn sid(n: u32) -> ServiceId {
        ServiceId::from_raw(n)
    }
    fn iid(n: u32) -> InstanceId {
        InstanceId::from_raw(n)
    }

    /// client → svc0 → svc1 → svc0(reply) → sink
    fn chain() -> RequestType {
        let mut n0 = PathNodeSpec::request("front", sid(0), iid(0));
        n0.children = vec![nid(1)];
        let mut n1 = PathNodeSpec::request("back", sid(1), iid(1));
        n1.children = vec![nid(2)];
        let mut n2 = PathNodeSpec::reply("front_reply", sid(0), nid(0), nid(1));
        n2.children = vec![nid(3)];
        let sink = PathNodeSpec::client_sink(nid(0));
        RequestType::new("chain", vec![n0, n1, n2, sink], nid(0))
    }

    #[test]
    fn valid_chain_passes_and_computes_fan_in() {
        let mut t = chain();
        t.validate().unwrap();
        assert_eq!(t.fan_in, vec![0, 1, 1, 1]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn fanout_fan_in_counts() {
        // root → {a, b} → join → sink
        let mut root = PathNodeSpec::request("root", sid(0), iid(0));
        root.children = vec![nid(1), nid(2)];
        let mut a = PathNodeSpec::request("a", sid(1), iid(1));
        a.children = vec![nid(3)];
        let mut b = PathNodeSpec::request("b", sid(1), iid(2));
        b.children = vec![nid(3)];
        let mut join = PathNodeSpec::reply("join", sid(0), nid(0), nid(0));
        join.children = vec![nid(4)];
        // join's reply conn should reference its own request edges; for the
        // test any valid node id suffices structurally.
        join.link = LinkKind::Reply { of: nid(1) };
        let sink = PathNodeSpec::client_sink(nid(0));
        let mut t = RequestType::new("fanout", vec![root, a, b, join, sink], nid(0));
        t.validate().unwrap();
        assert_eq!(t.fan_in[3], 2, "join has fan-in 2");
    }

    #[test]
    fn rejects_cycle() {
        let mut t = chain();
        t.nodes[2].children = vec![nid(1)]; // back-edge
        assert!(t.validate().is_err());
    }

    #[test]
    fn rejects_dangling_child() {
        let mut t = chain();
        t.nodes[0].children.push(nid(99));
        assert!(t.validate().is_err());
    }

    #[test]
    fn rejects_root_with_parents() {
        let mut t = chain();
        t.nodes[1].children.push(nid(0));
        assert!(t.validate().is_err());
    }

    #[test]
    fn rejects_missing_or_extra_sinks() {
        let mut t = chain();
        t.nodes[3].target = NodeTarget::Service {
            service: sid(0),
            instance: InstanceSelect::Fixed { instance: iid(0) },
            exec_path: PathSelect::Fixed { index: 0 },
        };
        assert!(t.validate().is_err());

        let mut t = chain();
        t.nodes[2].target = NodeTarget::ClientSink;
        t.nodes[2].children.clear();
        // Now node 3 unreachable AND two sinks; either error is fine.
        assert!(t.validate().is_err());
    }

    #[test]
    fn rejects_unreachable_node() {
        let mut t = chain();
        t.nodes
            .push(PathNodeSpec::request("orphan", sid(0), iid(0)));
        assert!(t.validate().is_err());
    }

    #[test]
    fn rejects_sink_with_children() {
        let mut t = chain();
        t.nodes[3].children = vec![nid(0)];
        assert!(t.validate().is_err());
    }

    #[test]
    fn rejects_bad_reply_reference() {
        let mut t = chain();
        t.nodes[2].link = LinkKind::Reply { of: nid(50) };
        assert!(t.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let mut t = chain();
        t.validate().unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: RequestType = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn builder_assembles_a_valid_dag() {
        let mut b = RequestTypeBuilder::new("built");
        let front = b.add(PathNodeSpec::request("front", sid(0), iid(0)));
        let back = b.add(PathNodeSpec::request("back", sid(1), iid(1)));
        let reply = b.add(PathNodeSpec::reply_to_parent("reply", sid(0), front));
        let sink = b.add(PathNodeSpec::client_sink(front));
        b.link(front, back);
        b.link(back, reply);
        b.link(reply, sink);
        b.node_mut(front).block_thread_until = Some(reply);
        let ty = b.finish().unwrap();
        assert_eq!(ty.len(), 4);
        assert_eq!(ty.fan_in, vec![0, 1, 1, 1]);
        assert_eq!(ty.nodes[0].block_thread_until, Some(reply));
    }

    #[test]
    fn builder_rejects_invalid_graphs() {
        // A dangling node never linked from the root is unreachable.
        let mut b = RequestTypeBuilder::new("bad");
        let front = b.add(PathNodeSpec::request("front", sid(0), iid(0)));
        let sink = b.add(PathNodeSpec::client_sink(front));
        b.link(front, sink);
        b.add(PathNodeSpec::request("orphan", sid(0), iid(0)));
        assert!(b.finish().is_err());
    }

    #[test]
    #[should_panic(expected = "unknown child")]
    fn builder_link_checks_ids() {
        let mut b = RequestTypeBuilder::new("bad");
        let front = b.add(PathNodeSpec::request("front", sid(0), iid(0)));
        b.link(front, nid(9));
    }
}
