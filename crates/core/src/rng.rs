//! Deterministic random-number streams.
//!
//! The whole simulator is driven by one master seed. Each component
//! (per-stage service-time sampling, per-client arrivals, path selection, …)
//! derives its own decoupled stream from the master seed and a stream label,
//! so that adding a component or reordering samples in one component does not
//! perturb the draws seen by any other — a standard variance-reduction and
//! reproducibility technique for discrete-event simulation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 finalizer; mixes a 64-bit value into a well-distributed one.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Factory for decoupled per-component random streams.
///
/// # Examples
///
/// ```
/// use uqsim_core::rng::RngFactory;
///
/// let factory = RngFactory::new(42);
/// let mut a = factory.stream("client", 0);
/// let mut b = factory.stream("client", 1);
/// // Streams with different labels are independent but each is reproducible:
/// let mut a2 = factory.stream("client", 0);
/// use rand::Rng;
/// assert_eq!(a.gen::<u64>(), a2.gen::<u64>());
/// let _ = b.gen::<u64>();
/// ```
#[derive(Debug, Clone)]
pub struct RngFactory {
    master_seed: u64,
}

impl RngFactory {
    /// Creates a factory from a master seed.
    pub fn new(master_seed: u64) -> Self {
        RngFactory { master_seed }
    }

    /// The master seed this factory was built from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Derives a reproducible stream for `(label, index)`.
    ///
    /// The same `(seed, label, index)` triple always yields an identical
    /// stream; distinct triples yield streams that are decorrelated for
    /// simulation purposes.
    pub fn stream(&self, label: &str, index: u64) -> SmallRng {
        let mut h = splitmix64(self.master_seed);
        for &b in label.as_bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        h = splitmix64(h ^ index);
        SmallRng::seed_from_u64(h)
    }
}

/// Samples an exponentially distributed value with the given mean using
/// inverse-CDF sampling. Exposed for the distribution module and tests.
pub(crate) fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    // 1 - u in (0, 1] avoids ln(0).
    let u: f64 = 1.0 - rng.gen::<f64>();
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_triple_same_stream() {
        let f = RngFactory::new(7);
        let mut a = f.stream("svc", 3);
        let mut b = f.stream("svc", 3);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_labels_differ() {
        let f = RngFactory::new(7);
        let mut a = f.stream("svc", 0);
        let mut b = f.stream("client", 0);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn different_indices_differ() {
        let f = RngFactory::new(7);
        let mut a = f.stream("svc", 0);
        let mut b = f.stream("svc", 1);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RngFactory::new(1).stream("x", 0);
        let mut b = RngFactory::new(2).stream("x", 0);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = RngFactory::new(99).stream("exp", 0);
        let n = 200_000;
        let mean = 2.5;
        let sum: f64 = (0..n).map(|_| sample_exponential(&mut rng, mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.03,
            "sample mean {sample_mean} too far from {mean}"
        );
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut rng = RngFactory::new(5).stream("exp", 1);
        for _ in 0..10_000 {
            assert!(sample_exponential(&mut rng, 1.0) >= 0.0);
        }
    }
}
