//! Simulation time.
//!
//! µqSim keeps time as an integer number of nanoseconds since the start of
//! the simulation. Integer time makes the event queue ordering exact and the
//! simulation bit-for-bit reproducible for a given seed; one nanosecond of
//! resolution is three orders of magnitude finer than the shortest service
//! times the paper models (single-digit microseconds).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use uqsim_core::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(250);
/// assert_eq!(t.as_nanos(), 250_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use uqsim_core::time::SimDuration;
///
/// let d = SimDuration::from_secs_f64(0.001);
/// assert_eq!(d.as_micros_f64(), 1000.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from a floating-point number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(SimDuration::from_secs_f64(secs).0)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Microseconds since simulation start, as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The duration since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from a floating-point number of seconds, rounding
    /// to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        let ns = secs * 1e9;
        assert!(
            ns <= u64::MAX as f64,
            "duration overflows u64 nanoseconds: {secs}s"
        );
        SimDuration(ns.round() as u64)
    }

    /// Creates a duration from a floating-point number of microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative, NaN, or too large to represent.
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1e6)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Microseconds as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the duration by a non-negative float, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "factor must be non-negative"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(d.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if the right-hand side is later than the left-hand side.
    fn sub(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime subtraction went negative"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(other.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `other` is longer than `self`.
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(other.0)
                .expect("SimDuration subtraction went negative"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(k).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}us", self.as_micros_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_500);
        let d = SimDuration::from_micros(2);
        assert_eq!((t + d).as_nanos(), 3_500);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn from_secs_f64_rounds_to_nanos() {
        let d = SimDuration::from_secs_f64(1e-9 * 1.4);
        assert_eq!(d.as_nanos(), 1);
        let d = SimDuration::from_secs_f64(1e-9 * 1.6);
        assert_eq!(d.as_nanos(), 2);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(b.saturating_since(a).as_nanos(), 10);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(100);
        assert_eq!(d.mul_f64(1.5).as_nanos(), 150);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn time_sub_underflow_panics() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        let _ = a - b;
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(1_500).to_string(), "1.500us");
        assert_eq!(SimDuration::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_millis(1_500).to_string(), "1.500s");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_micros(1) < SimDuration::from_millis(1));
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_nanos(5)),
            Some(SimTime::from_nanos(5))
        );
    }

    #[test]
    fn serde_roundtrip() {
        let t = SimTime::from_nanos(42);
        let s = serde_json::to_string(&t).unwrap();
        assert_eq!(s, "42");
        let back: SimTime = serde_json::from_str(&s).unwrap();
        assert_eq!(back, t);
    }
}
