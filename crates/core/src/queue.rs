//! Runtime stage queues.
//!
//! Each deployed stage owns a [`StageQueue`] matching its declared
//! [`QueueDiscipline`]: a plain FIFO, or
//! per-connection subqueues with socket- or epoll-style batching. Batch
//! assembly follows §III-B of the paper:
//!
//! * **epoll**: one invocation returns the first `N` jobs of *each* active
//!   subqueue;
//! * **socket**: one invocation returns the first `N` jobs of a *single*
//!   ready connection (connections served round-robin);
//! * **single**: one job per invocation.

use crate::fasthash::FastMap;
use crate::ids::{ConnectionId, JobId};
use crate::stage::QueueDiscipline;
use std::collections::VecDeque;

/// A runtime queue for one stage instance.
#[derive(Debug, Clone)]
pub enum StageQueue {
    /// Plain FIFO.
    Single {
        /// Waiting jobs.
        q: VecDeque<JobId>,
    },
    /// Per-connection subqueues with a batching mode.
    PerConn {
        /// Jobs per connection. `BTreeMap` keeps iteration deterministic.
        subqueues: FastMap<ConnectionId, VecDeque<JobId>>,
        /// Ready (non-empty) connections in arrival/rotation order.
        active: VecDeque<ConnectionId>,
        /// `Socket { batch }` or `Epoll { batch_per_conn }`.
        mode: QueueDiscipline,
        /// Cached total job count.
        len: usize,
    },
}

impl StageQueue {
    /// Creates the queue matching a discipline.
    pub fn new(discipline: QueueDiscipline) -> Self {
        match discipline {
            QueueDiscipline::Single => StageQueue::Single { q: VecDeque::new() },
            mode @ (QueueDiscipline::Socket { .. } | QueueDiscipline::Epoll { .. }) => {
                StageQueue::PerConn {
                    subqueues: FastMap::default(),
                    active: VecDeque::new(),
                    mode,
                    len: 0,
                }
            }
        }
    }

    /// Enqueues a job. `conn` selects the subqueue for per-connection
    /// disciplines and is ignored for `Single`.
    pub fn push(&mut self, job: JobId, conn: ConnectionId) {
        match self {
            StageQueue::Single { q } => q.push_back(job),
            StageQueue::PerConn {
                subqueues,
                active,
                len,
                ..
            } => {
                let sub = subqueues.entry(conn).or_default();
                if sub.is_empty() {
                    active.push_back(conn);
                }
                sub.push_back(job);
                *len += 1;
            }
        }
    }

    /// Total queued jobs.
    pub fn len(&self) -> usize {
        match self {
            StageQueue::Single { q } => q.len(),
            StageQueue::PerConn { len, .. } => *len,
        }
    }

    /// True if no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Assembles the next batch according to the discipline, removing the
    /// jobs from the queue. Returns an empty vector if nothing is queued.
    /// Convenience wrapper around [`StageQueue::assemble_batch_into`].
    pub fn assemble_batch(&mut self) -> Vec<JobId> {
        let mut out = Vec::new();
        self.assemble_batch_into(&mut out);
        out
    }

    /// Assembles the next batch into `out` (cleared first), letting the
    /// dispatch hot path reuse one scratch vector instead of allocating a
    /// fresh one per batch.
    pub fn assemble_batch_into(&mut self, out: &mut Vec<JobId>) {
        out.clear();
        match self {
            StageQueue::Single { q } => {
                if let Some(j) = q.pop_front() {
                    out.push(j);
                }
            }
            StageQueue::PerConn {
                subqueues,
                active,
                mode,
                len,
            } => {
                match *mode {
                    QueueDiscipline::Epoll { batch_per_conn } => {
                        // Harvest up to N from every active connection,
                        // rotating still-busy ones to the back in place.
                        for _ in 0..active.len() {
                            let conn = active.pop_front().expect("counted active conn");
                            let sub = subqueues.get_mut(&conn).expect("active conn has subqueue");
                            for _ in 0..batch_per_conn {
                                match sub.pop_front() {
                                    Some(j) => out.push(j),
                                    None => break,
                                }
                            }
                            if !sub.is_empty() {
                                active.push_back(conn);
                            }
                        }
                    }
                    QueueDiscipline::Socket { batch } => {
                        // Drain up to N from one ready connection, rotating.
                        if let Some(conn) = active.pop_front() {
                            let sub = subqueues.get_mut(&conn).expect("active conn has subqueue");
                            for _ in 0..batch {
                                match sub.pop_front() {
                                    Some(j) => out.push(j),
                                    None => break,
                                }
                            }
                            if !sub.is_empty() {
                                active.push_back(conn);
                            }
                        }
                    }
                    QueueDiscipline::Single => unreachable!("PerConn never holds Single"),
                }
                *len -= out.len();
            }
        }
    }

    /// Removes and returns every queued job, in deterministic (FIFO /
    /// connection-id) order. Used when a fault drains a crashed instance's
    /// queues.
    pub fn drain_all(&mut self) -> Vec<JobId> {
        match self {
            StageQueue::Single { q } => q.drain(..).collect(),
            StageQueue::PerConn {
                subqueues,
                active,
                len,
                ..
            } => {
                // Hash-map iteration order is not deterministic; draining
                // active connections in ascending id order reproduces the
                // original BTreeMap key order byte for byte (a connection
                // is active exactly when its subqueue is non-empty).
                let mut out = Vec::with_capacity(*len);
                let mut conns: Vec<ConnectionId> = active.drain(..).collect();
                conns.sort_unstable();
                for conn in conns {
                    let sub = subqueues.get_mut(&conn).expect("active conn has subqueue");
                    out.extend(sub.drain(..));
                }
                *len = 0;
                out
            }
        }
    }

    /// Drops any empty subqueues (housekeeping for long runs with ephemeral
    /// connections). No-op for `Single`.
    pub fn compact(&mut self) {
        if let StageQueue::PerConn { subqueues, .. } = self {
            subqueues.retain(|_, q| !q.is_empty());
        }
    }
}

/// One queue set: per-stage queues plus a non-empty bitmask so the
/// dispatcher finds the latest ready stage with one `leading_zeros`
/// instead of a linear scan (the scan dominated the dispatch hot path).
///
/// The mask is maintained by [`StageQueueSet::push`] /
/// [`StageQueueSet::assemble_batch_into`] / [`StageQueueSet::drain_all`];
/// all mutation goes through those methods so it cannot drift.
#[derive(Debug, Clone)]
pub struct StageQueueSet {
    stages: Vec<StageQueue>,
    /// Bit `s` set ⇔ `stages[s]` is non-empty.
    nonempty: u64,
}

impl StageQueueSet {
    /// Wraps per-stage queues. Stage count is capped at 64 by the mask
    /// width; real services have a handful of stages.
    ///
    /// # Panics
    ///
    /// Panics if `stages.len() > 64`.
    pub fn new(stages: Vec<StageQueue>) -> Self {
        assert!(
            stages.len() <= 64,
            "a service is limited to 64 stages (got {})",
            stages.len()
        );
        StageQueueSet {
            stages,
            nonempty: 0,
        }
    }

    /// Enqueues a job into `stage`.
    pub fn push(&mut self, stage: usize, job: JobId, conn: ConnectionId) {
        self.stages[stage].push(job, conn);
        self.nonempty |= 1u64 << stage;
    }

    /// Assembles the next batch of `stage` into `out` (cleared first).
    pub fn assemble_batch_into(&mut self, stage: usize, out: &mut Vec<JobId>) {
        self.stages[stage].assemble_batch_into(out);
        if self.stages[stage].is_empty() {
            self.nonempty &= !(1u64 << stage);
        }
    }

    /// Index of the latest (highest-index) non-empty stage, if any.
    #[inline]
    pub fn highest_nonempty(&self) -> Option<usize> {
        if self.nonempty == 0 {
            None
        } else {
            Some(63 - self.nonempty.leading_zeros() as usize)
        }
    }

    /// Total queued jobs across all stages.
    pub fn len(&self) -> usize {
        self.stages.iter().map(StageQueue::len).sum()
    }

    /// True if no stage has queued jobs.
    pub fn is_empty(&self) -> bool {
        self.nonempty == 0
    }

    /// Removes and returns every queued job, stage by stage in index order
    /// (used when a fault drains a crashed instance).
    pub fn drain_all(&mut self) -> Vec<JobId> {
        let mut out = Vec::new();
        for q in &mut self.stages {
            out.extend(q.drain_all());
        }
        self.nonempty = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(n: u32) -> JobId {
        JobId::new(n, 0)
    }
    fn c(n: u32) -> ConnectionId {
        ConnectionId::from_raw(n)
    }

    #[test]
    fn single_is_fifo_one_at_a_time() {
        let mut q = StageQueue::new(QueueDiscipline::Single);
        q.push(j(1), c(0));
        q.push(j(2), c(9));
        assert_eq!(q.len(), 2);
        assert_eq!(q.assemble_batch(), vec![j(1)]);
        assert_eq!(q.assemble_batch(), vec![j(2)]);
        assert!(q.assemble_batch().is_empty());
        assert!(q.is_empty());
    }

    #[test]
    fn epoll_harvests_every_active_connection() {
        let mut q = StageQueue::new(QueueDiscipline::Epoll { batch_per_conn: 2 });
        // conn0: 3 jobs, conn1: 1 job, conn2: 2 jobs
        q.push(j(1), c(0));
        q.push(j(2), c(0));
        q.push(j(3), c(0));
        q.push(j(4), c(1));
        q.push(j(5), c(2));
        q.push(j(6), c(2));
        let batch = q.assemble_batch();
        // Up to 2 per conn, in activation order: conn0 → (1,2), conn1 → (4), conn2 → (5,6)
        assert_eq!(batch, vec![j(1), j(2), j(4), j(5), j(6)]);
        assert_eq!(q.len(), 1);
        // Remaining job on conn0 comes in the next harvest.
        assert_eq!(q.assemble_batch(), vec![j(3)]);
    }

    #[test]
    fn socket_drains_one_connection_round_robin() {
        let mut q = StageQueue::new(QueueDiscipline::Socket { batch: 2 });
        q.push(j(1), c(0));
        q.push(j(2), c(0));
        q.push(j(3), c(0));
        q.push(j(4), c(1));
        // First call: 2 jobs from conn0; conn0 rotates behind conn1.
        assert_eq!(q.assemble_batch(), vec![j(1), j(2)]);
        assert_eq!(q.assemble_batch(), vec![j(4)]);
        assert_eq!(q.assemble_batch(), vec![j(3)]);
        assert!(q.is_empty());
    }

    #[test]
    fn reactivation_after_drain() {
        let mut q = StageQueue::new(QueueDiscipline::Epoll { batch_per_conn: 4 });
        q.push(j(1), c(0));
        assert_eq!(q.assemble_batch(), vec![j(1)]);
        // Re-push on the same conn reactivates it.
        q.push(j(2), c(0));
        assert_eq!(q.assemble_batch(), vec![j(2)]);
    }

    #[test]
    fn len_tracks_across_operations() {
        let mut q = StageQueue::new(QueueDiscipline::Socket { batch: 3 });
        for i in 0..10 {
            q.push(j(i), c(i % 3));
        }
        assert_eq!(q.len(), 10);
        let mut popped = 0;
        while !q.is_empty() {
            popped += q.assemble_batch().len();
        }
        assert_eq!(popped, 10);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn compact_removes_empty_subqueues() {
        let mut q = StageQueue::new(QueueDiscipline::Epoll { batch_per_conn: 8 });
        for i in 0..100 {
            q.push(j(i), c(i));
        }
        while !q.is_empty() {
            q.assemble_batch();
        }
        q.compact();
        if let StageQueue::PerConn { subqueues, .. } = &q {
            assert!(subqueues.is_empty());
        } else {
            panic!("expected PerConn");
        }
    }

    #[test]
    fn empty_batch_from_empty_queue() {
        let mut q = StageQueue::new(QueueDiscipline::Epoll { batch_per_conn: 2 });
        assert!(q.assemble_batch().is_empty());
        let mut q = StageQueue::new(QueueDiscipline::Socket { batch: 2 });
        assert!(q.assemble_batch().is_empty());
    }

    // Property test: no job is lost or duplicated under random operations.
    #[test]
    fn conservation_property() {
        use rand::Rng;
        let mut rng = crate::rng::RngFactory::new(8).stream("queue", 0);
        for mode in [
            QueueDiscipline::Single,
            QueueDiscipline::Socket { batch: 3 },
            QueueDiscipline::Epoll { batch_per_conn: 2 },
        ] {
            let mut q = StageQueue::new(mode);
            let mut pushed = Vec::new();
            let mut popped = Vec::new();
            let mut next = 0u32;
            for _ in 0..2000 {
                if rng.gen_bool(0.6) {
                    q.push(j(next), c(rng.gen_range(0..5)));
                    pushed.push(j(next));
                    next += 1;
                } else {
                    popped.extend(q.assemble_batch());
                }
            }
            while !q.is_empty() {
                popped.extend(q.assemble_batch());
            }
            pushed.sort();
            popped.sort();
            assert_eq!(pushed, popped, "conservation violated for {mode:?}");
        }
    }
}
