//! Runtime stage queues.
//!
//! Each deployed stage owns a [`StageQueue`] matching its declared
//! [`QueueDiscipline`]: a plain FIFO, or
//! per-connection subqueues with socket- or epoll-style batching. Batch
//! assembly follows §III-B of the paper:
//!
//! * **epoll**: one invocation returns the first `N` jobs of *each* active
//!   subqueue;
//! * **socket**: one invocation returns the first `N` jobs of a *single*
//!   ready connection (connections served round-robin);
//! * **single**: one job per invocation.

use crate::ids::{ConnectionId, JobId};
use crate::stage::QueueDiscipline;
use std::collections::{BTreeMap, VecDeque};

/// A runtime queue for one stage instance.
#[derive(Debug, Clone)]
pub enum StageQueue {
    /// Plain FIFO.
    Single {
        /// Waiting jobs.
        q: VecDeque<JobId>,
    },
    /// Per-connection subqueues with a batching mode.
    PerConn {
        /// Jobs per connection. `BTreeMap` keeps iteration deterministic.
        subqueues: BTreeMap<ConnectionId, VecDeque<JobId>>,
        /// Ready (non-empty) connections in arrival/rotation order.
        active: VecDeque<ConnectionId>,
        /// `Socket { batch }` or `Epoll { batch_per_conn }`.
        mode: QueueDiscipline,
        /// Cached total job count.
        len: usize,
    },
}

impl StageQueue {
    /// Creates the queue matching a discipline.
    pub fn new(discipline: QueueDiscipline) -> Self {
        match discipline {
            QueueDiscipline::Single => StageQueue::Single { q: VecDeque::new() },
            mode @ (QueueDiscipline::Socket { .. } | QueueDiscipline::Epoll { .. }) => {
                StageQueue::PerConn {
                    subqueues: BTreeMap::new(),
                    active: VecDeque::new(),
                    mode,
                    len: 0,
                }
            }
        }
    }

    /// Enqueues a job. `conn` selects the subqueue for per-connection
    /// disciplines and is ignored for `Single`.
    pub fn push(&mut self, job: JobId, conn: ConnectionId) {
        match self {
            StageQueue::Single { q } => q.push_back(job),
            StageQueue::PerConn {
                subqueues,
                active,
                len,
                ..
            } => {
                let sub = subqueues.entry(conn).or_default();
                if sub.is_empty() {
                    active.push_back(conn);
                }
                sub.push_back(job);
                *len += 1;
            }
        }
    }

    /// Total queued jobs.
    pub fn len(&self) -> usize {
        match self {
            StageQueue::Single { q } => q.len(),
            StageQueue::PerConn { len, .. } => *len,
        }
    }

    /// True if no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Assembles the next batch according to the discipline, removing the
    /// jobs from the queue. Returns an empty vector if nothing is queued.
    pub fn assemble_batch(&mut self) -> Vec<JobId> {
        match self {
            StageQueue::Single { q } => q.pop_front().into_iter().collect(),
            StageQueue::PerConn {
                subqueues,
                active,
                mode,
                len,
            } => {
                let mut out = Vec::new();
                match *mode {
                    QueueDiscipline::Epoll { batch_per_conn } => {
                        // Harvest up to N from every active connection.
                        let mut still_active = VecDeque::new();
                        while let Some(conn) = active.pop_front() {
                            let sub = subqueues.get_mut(&conn).expect("active conn has subqueue");
                            for _ in 0..batch_per_conn {
                                match sub.pop_front() {
                                    Some(j) => out.push(j),
                                    None => break,
                                }
                            }
                            if !sub.is_empty() {
                                still_active.push_back(conn);
                            }
                        }
                        *active = still_active;
                    }
                    QueueDiscipline::Socket { batch } => {
                        // Drain up to N from one ready connection, rotating.
                        if let Some(conn) = active.pop_front() {
                            let sub = subqueues.get_mut(&conn).expect("active conn has subqueue");
                            for _ in 0..batch {
                                match sub.pop_front() {
                                    Some(j) => out.push(j),
                                    None => break,
                                }
                            }
                            if !sub.is_empty() {
                                active.push_back(conn);
                            }
                        }
                    }
                    QueueDiscipline::Single => unreachable!("PerConn never holds Single"),
                }
                *len -= out.len();
                out
            }
        }
    }

    /// Removes and returns every queued job, in deterministic (FIFO /
    /// connection-id) order. Used when a fault drains a crashed instance's
    /// queues.
    pub fn drain_all(&mut self) -> Vec<JobId> {
        match self {
            StageQueue::Single { q } => q.drain(..).collect(),
            StageQueue::PerConn {
                subqueues,
                active,
                len,
                ..
            } => {
                let mut out = Vec::with_capacity(*len);
                for (_, sub) in subqueues.iter_mut() {
                    out.extend(sub.drain(..));
                }
                active.clear();
                *len = 0;
                out
            }
        }
    }

    /// Drops any empty subqueues (housekeeping for long runs with ephemeral
    /// connections). No-op for `Single`.
    pub fn compact(&mut self) {
        if let StageQueue::PerConn { subqueues, .. } = self {
            subqueues.retain(|_, q| !q.is_empty());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(n: u32) -> JobId {
        JobId::new(n, 0)
    }
    fn c(n: u32) -> ConnectionId {
        ConnectionId::from_raw(n)
    }

    #[test]
    fn single_is_fifo_one_at_a_time() {
        let mut q = StageQueue::new(QueueDiscipline::Single);
        q.push(j(1), c(0));
        q.push(j(2), c(9));
        assert_eq!(q.len(), 2);
        assert_eq!(q.assemble_batch(), vec![j(1)]);
        assert_eq!(q.assemble_batch(), vec![j(2)]);
        assert!(q.assemble_batch().is_empty());
        assert!(q.is_empty());
    }

    #[test]
    fn epoll_harvests_every_active_connection() {
        let mut q = StageQueue::new(QueueDiscipline::Epoll { batch_per_conn: 2 });
        // conn0: 3 jobs, conn1: 1 job, conn2: 2 jobs
        q.push(j(1), c(0));
        q.push(j(2), c(0));
        q.push(j(3), c(0));
        q.push(j(4), c(1));
        q.push(j(5), c(2));
        q.push(j(6), c(2));
        let batch = q.assemble_batch();
        // Up to 2 per conn, in activation order: conn0 → (1,2), conn1 → (4), conn2 → (5,6)
        assert_eq!(batch, vec![j(1), j(2), j(4), j(5), j(6)]);
        assert_eq!(q.len(), 1);
        // Remaining job on conn0 comes in the next harvest.
        assert_eq!(q.assemble_batch(), vec![j(3)]);
    }

    #[test]
    fn socket_drains_one_connection_round_robin() {
        let mut q = StageQueue::new(QueueDiscipline::Socket { batch: 2 });
        q.push(j(1), c(0));
        q.push(j(2), c(0));
        q.push(j(3), c(0));
        q.push(j(4), c(1));
        // First call: 2 jobs from conn0; conn0 rotates behind conn1.
        assert_eq!(q.assemble_batch(), vec![j(1), j(2)]);
        assert_eq!(q.assemble_batch(), vec![j(4)]);
        assert_eq!(q.assemble_batch(), vec![j(3)]);
        assert!(q.is_empty());
    }

    #[test]
    fn reactivation_after_drain() {
        let mut q = StageQueue::new(QueueDiscipline::Epoll { batch_per_conn: 4 });
        q.push(j(1), c(0));
        assert_eq!(q.assemble_batch(), vec![j(1)]);
        // Re-push on the same conn reactivates it.
        q.push(j(2), c(0));
        assert_eq!(q.assemble_batch(), vec![j(2)]);
    }

    #[test]
    fn len_tracks_across_operations() {
        let mut q = StageQueue::new(QueueDiscipline::Socket { batch: 3 });
        for i in 0..10 {
            q.push(j(i), c(i % 3));
        }
        assert_eq!(q.len(), 10);
        let mut popped = 0;
        while !q.is_empty() {
            popped += q.assemble_batch().len();
        }
        assert_eq!(popped, 10);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn compact_removes_empty_subqueues() {
        let mut q = StageQueue::new(QueueDiscipline::Epoll { batch_per_conn: 8 });
        for i in 0..100 {
            q.push(j(i), c(i));
        }
        while !q.is_empty() {
            q.assemble_batch();
        }
        q.compact();
        if let StageQueue::PerConn { subqueues, .. } = &q {
            assert!(subqueues.is_empty());
        } else {
            panic!("expected PerConn");
        }
    }

    #[test]
    fn empty_batch_from_empty_queue() {
        let mut q = StageQueue::new(QueueDiscipline::Epoll { batch_per_conn: 2 });
        assert!(q.assemble_batch().is_empty());
        let mut q = StageQueue::new(QueueDiscipline::Socket { batch: 2 });
        assert!(q.assemble_batch().is_empty());
    }

    // Property test: no job is lost or duplicated under random operations.
    #[test]
    fn conservation_property() {
        use rand::Rng;
        let mut rng = crate::rng::RngFactory::new(8).stream("queue", 0);
        for mode in [
            QueueDiscipline::Single,
            QueueDiscipline::Socket { batch: 3 },
            QueueDiscipline::Epoll { batch_per_conn: 2 },
        ] {
            let mut q = StageQueue::new(mode);
            let mut pushed = Vec::new();
            let mut popped = Vec::new();
            let mut next = 0u32;
            for _ in 0..2000 {
                if rng.gen_bool(0.6) {
                    q.push(j(next), c(rng.gen_range(0..5)));
                    pushed.push(j(next));
                    next += 1;
                } else {
                    popped.extend(q.assemble_batch());
                }
            }
            while !q.is_empty() {
                popped.extend(q.assemble_batch());
            }
            pushed.sort();
            popped.sort();
            assert_eq!(pushed, popped, "conservation violated for {mode:?}");
        }
    }
}
