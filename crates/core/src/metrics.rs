//! Latency and throughput metrics.
//!
//! The validation methodology of the paper revolves around load–latency
//! curves (mean and tail) and time series of windowed tail latency (for the
//! power-management study). This module provides:
//!
//! * [`LatencySummary`] — percentiles/mean over a set of samples,
//! * [`LatencyRecorder`] — an accumulating recorder with warmup filtering,
//! * [`WindowedRecorder`] — fixed-width time windows producing a series of
//!   summaries (Fig. 16 traces, Table III violation rates).

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Summary statistics over a batch of latency samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Mean latency, seconds.
    pub mean: f64,
    /// Median (p50), seconds.
    pub p50: f64,
    /// 95th percentile, seconds.
    pub p95: f64,
    /// 99th percentile, seconds.
    pub p99: f64,
    /// Maximum observed, seconds.
    pub max: f64,
}

impl LatencySummary {
    /// The empty summary (all zeros).
    pub fn empty() -> Self {
        LatencySummary {
            count: 0,
            mean: 0.0,
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
            max: 0.0,
        }
    }

    /// Computes a summary from unsorted samples (seconds). Sorts a copy.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::empty();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        Self::from_sorted(&sorted)
    }

    /// Computes a summary from already-sorted samples.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `sorted` is non-decreasing.
    pub fn from_sorted(sorted: &[f64]) -> Self {
        if sorted.is_empty() {
            return Self::empty();
        }
        debug_assert!(
            sorted.windows(2).all(|w| w[0] <= w[1]),
            "samples must be sorted"
        );
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        LatencySummary {
            count,
            mean,
            p50: percentile_sorted(sorted, 0.50),
            p95: percentile_sorted(sorted, 0.95),
            p99: percentile_sorted(sorted, 0.99),
            max: sorted[count - 1],
        }
    }
}

/// Nearest-rank percentile (the convention used by wrk2 and most tail-latency
/// reporting): the smallest sample such that at least `q` of the samples are
/// ≤ it.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    let idx = rank.max(1) - 1;
    sorted[idx.min(sorted.len() - 1)]
}

/// Accumulates end-to-end latency samples, ignoring those completed before
/// the warmup deadline.
///
/// # Examples
///
/// ```
/// use uqsim_core::metrics::LatencyRecorder;
/// use uqsim_core::time::{SimDuration, SimTime};
///
/// let mut rec = LatencyRecorder::new(SimTime::from_secs_f64(1.0));
/// rec.record(SimTime::from_secs_f64(0.5), SimDuration::from_millis(9)); // warmup: dropped
/// rec.record(SimTime::from_secs_f64(1.5), SimDuration::from_millis(2));
/// assert_eq!(rec.summary().count, 1);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyRecorder {
    warmup_until: SimTime,
    samples: Vec<f64>,
    dropped_warmup: usize,
}

impl LatencyRecorder {
    /// Creates a recorder that ignores completions before `warmup_until`.
    pub fn new(warmup_until: SimTime) -> Self {
        LatencyRecorder {
            warmup_until,
            samples: Vec::new(),
            dropped_warmup: 0,
        }
    }

    /// Records a completion at `now` with the given end-to-end latency.
    pub fn record(&mut self, now: SimTime, latency: SimDuration) {
        if now < self.warmup_until {
            self.dropped_warmup += 1;
            return;
        }
        self.samples.push(latency.as_secs_f64());
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of samples discarded as warmup.
    pub fn dropped_warmup(&self) -> usize {
        self.dropped_warmup
    }

    /// Summary over all retained samples.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary::from_samples(&self.samples)
    }

    /// Raw retained samples (seconds), in completion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// One completed window of a [`WindowedRecorder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Window start time.
    pub start: SimTime,
    /// Window end time (exclusive).
    pub end: SimTime,
    /// Latency summary over completions in the window.
    pub latency: LatencySummary,
    /// Completions per second over the window.
    pub throughput: f64,
}

/// Collects latency samples into fixed-width, non-overlapping windows.
///
/// Used by the power manager (which makes one decision per window) and by
/// the Fig. 16 traces.
#[derive(Debug, Clone)]
pub struct WindowedRecorder {
    width: SimDuration,
    current_start: SimTime,
    current: Vec<f64>,
    finished: Vec<WindowStats>,
}

impl WindowedRecorder {
    /// Creates a recorder with the given window width, starting at time 0.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: SimDuration) -> Self {
        assert!(width > SimDuration::ZERO, "window width must be positive");
        WindowedRecorder {
            width,
            current_start: SimTime::ZERO,
            current: Vec::new(),
            finished: Vec::new(),
        }
    }

    /// Window width.
    pub fn width(&self) -> SimDuration {
        self.width
    }

    /// Advances window boundaries up to `now`, closing any elapsed windows
    /// (empty ones included, so the series has no gaps).
    ///
    /// [`record`](WindowedRecorder::record) calls this itself, which keeps
    /// the series gap-free *between* completions; the simulator additionally
    /// calls it when a run deadline fires, so idle time at the *end* of a
    /// run shows up as explicit count-0 windows instead of silently
    /// truncating the time axis.
    pub fn advance_to(&mut self, now: SimTime) {
        while now >= self.current_start + self.width {
            let end = self.current_start + self.width;
            let latency = LatencySummary::from_samples(&self.current);
            let throughput = self.current.len() as f64 / self.width.as_secs_f64();
            self.finished.push(WindowStats {
                start: self.current_start,
                end,
                latency,
                throughput,
            });
            self.current.clear();
            self.current_start = end;
        }
    }

    /// Records a completion; call with non-decreasing `now`.
    pub fn record(&mut self, now: SimTime, latency: SimDuration) {
        self.advance_to(now);
        self.current.push(latency.as_secs_f64());
    }

    /// All closed windows so far.
    pub fn finished(&self) -> &[WindowStats] {
        &self.finished
    }

    /// Closes the in-progress window (even if shorter than `width`) and
    /// returns the full series.
    pub fn into_series(mut self) -> Vec<WindowStats> {
        if !self.current.is_empty() {
            let end = self.current_start + self.width;
            let latency = LatencySummary::from_samples(&self.current);
            let throughput = self.current.len() as f64 / self.width.as_secs_f64();
            self.finished.push(WindowStats {
                start: self.current_start,
                end,
                latency,
                throughput,
            });
        }
        self.finished
    }

    /// Summary of the most recently *closed* window, if any.
    pub fn last_window(&self) -> Option<&WindowStats> {
        self.finished.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile_sorted(&xs, 0.50), 50.0);
        assert_eq!(percentile_sorted(&xs, 0.99), 99.0);
        assert_eq!(percentile_sorted(&xs, 1.0), 100.0);
        assert_eq!(percentile_sorted(&xs, 0.0), 1.0);
        assert_eq!(percentile_sorted(&[], 0.5), 0.0);
    }

    #[test]
    fn percentile_small_samples() {
        assert_eq!(percentile_sorted(&[7.0], 0.99), 7.0);
        assert_eq!(percentile_sorted(&[1.0, 2.0], 0.5), 1.0);
        assert_eq!(percentile_sorted(&[1.0, 2.0], 0.51), 2.0);
    }

    #[test]
    fn summary_from_samples() {
        let s = LatencySummary::from_samples(&[3.0, 1.0, 2.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summary_percentiles_monotone() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64) * 1e-6).collect();
        let s = LatencySummary::from_samples(&xs);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn recorder_drops_warmup() {
        let mut rec = LatencyRecorder::new(SimTime::from_secs_f64(1.0));
        rec.record(SimTime::from_secs_f64(0.9), SimDuration::from_millis(100));
        rec.record(SimTime::from_secs_f64(1.0), SimDuration::from_millis(1));
        rec.record(SimTime::from_secs_f64(2.0), SimDuration::from_millis(3));
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped_warmup(), 1);
        let s = rec.summary();
        assert!((s.mean - 0.002).abs() < 1e-12);
    }

    #[test]
    fn windowed_recorder_closes_empty_windows() {
        let mut w = WindowedRecorder::new(SimDuration::from_secs(1));
        w.record(SimTime::from_secs_f64(0.5), SimDuration::from_millis(1));
        w.record(SimTime::from_secs_f64(3.5), SimDuration::from_millis(2));
        let series = w.into_series();
        assert_eq!(series.len(), 4);
        assert_eq!(series[0].latency.count, 1);
        assert_eq!(series[1].latency.count, 0);
        assert_eq!(series[2].latency.count, 0);
        assert_eq!(series[3].latency.count, 1);
        assert!((series[0].throughput - 1.0).abs() < 1e-12);
    }

    #[test]
    fn advance_to_emits_trailing_empty_windows() {
        let mut w = WindowedRecorder::new(SimDuration::from_secs(1));
        w.record(SimTime::from_secs_f64(0.5), SimDuration::from_millis(1));
        // A long idle stretch after the last completion must still close
        // windows — with zero counts — up to the advance point.
        w.advance_to(SimTime::from_secs_f64(3.7));
        let series = w.finished();
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].latency.count, 1);
        assert_eq!(series[1].latency.count, 0);
        assert_eq!(series[2].latency.count, 0);
        assert_eq!(series[2].end, SimTime::from_secs_f64(3.0));
        // Idempotent: advancing to the same instant adds nothing.
        w.advance_to(SimTime::from_secs_f64(3.7));
        assert_eq!(w.finished().len(), 3);
    }

    #[test]
    fn windowed_recorder_boundaries() {
        let mut w = WindowedRecorder::new(SimDuration::from_secs(1));
        // Exactly at the boundary goes into the next window.
        w.record(SimTime::from_secs_f64(1.0), SimDuration::from_millis(1));
        let series = w.into_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].latency.count, 0);
        assert_eq!(series[1].latency.count, 1);
    }

    #[test]
    fn last_window_tracks_closed() {
        let mut w = WindowedRecorder::new(SimDuration::from_secs(1));
        assert!(w.last_window().is_none());
        w.record(SimTime::from_secs_f64(0.2), SimDuration::from_millis(5));
        w.advance_to(SimTime::from_secs_f64(1.5));
        let last = w.last_window().unwrap();
        assert_eq!(last.latency.count, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        let _ = WindowedRecorder::new(SimDuration::ZERO);
    }

    #[test]
    fn window_stats_serde_roundtrip() {
        let mut w = WindowedRecorder::new(SimDuration::from_secs(1));
        w.record(SimTime::from_secs_f64(0.5), SimDuration::from_millis(2));
        let series = w.into_series();
        let json = serde_json::to_string(&series).unwrap();
        let back: Vec<WindowStats> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, series);
    }

    #[test]
    fn summary_of_empty_is_all_zero() {
        let s = LatencySummary::from_samples(&[]);
        assert_eq!(s, LatencySummary::empty());
        assert_eq!(s.count, 0);
    }

    #[test]
    fn into_series_includes_partial_window() {
        let mut w = WindowedRecorder::new(SimDuration::from_secs(1));
        w.record(SimTime::from_secs_f64(0.25), SimDuration::from_millis(1));
        w.record(SimTime::from_secs_f64(1.25), SimDuration::from_millis(1));
        let series = w.into_series();
        assert_eq!(series.len(), 2, "second (partial) window must be closed");
        assert_eq!(series[1].latency.count, 1);
    }
}
