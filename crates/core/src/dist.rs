//! Parametric and empirical probability distributions for service and
//! inter-arrival times.
//!
//! All distributions sample **durations in seconds** as `f64`; callers
//! convert to [`crate::time::SimDuration`] at the point of use. The enum is
//! closed (not a trait) so scenario files can describe distributions
//! declaratively and so samples stay allocation-free on the hot path.

use crate::histogram::Histogram;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution over non-negative durations, in seconds.
///
/// # Examples
///
/// ```
/// use uqsim_core::dist::Distribution;
/// use uqsim_core::rng::RngFactory;
///
/// let d = Distribution::exponential(1e-3);
/// let mut rng = RngFactory::new(1).stream("doc", 0);
/// let x = d.sample(&mut rng);
/// assert!(x >= 0.0);
/// assert!((d.mean() - 1e-3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Distribution {
    /// Always the same value.
    Constant {
        /// The value, seconds.
        value: f64,
    },
    /// Exponential with the given mean (i.e. rate `1/mean`).
    Exponential {
        /// Mean, seconds.
        mean: f64,
    },
    /// Uniform on `[low, high]`.
    Uniform {
        /// Lower bound, seconds.
        low: f64,
        /// Upper bound, seconds.
        high: f64,
    },
    /// Log-normal with the given location/scale of the underlying normal.
    LogNormal {
        /// Mean of the underlying normal (of ln x).
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Pareto (heavy-tailed) with scale `x_min` and shape `alpha`.
    Pareto {
        /// Minimum value, seconds.
        x_min: f64,
        /// Tail index; must be > 1 for a finite mean.
        alpha: f64,
    },
    /// Empirical histogram, typically collected by profiling (Table I).
    Empirical {
        /// The histogram.
        histogram: Histogram,
    },
    /// A deterministic offset plus another distribution; convenient for
    /// "fixed cost + variable cost" stage models.
    Shifted {
        /// Constant offset, seconds.
        offset: f64,
        /// The variable part.
        inner: Box<Distribution>,
    },
    /// Mixture of distributions with the given weights.
    Mixture {
        /// `(weight, distribution)` components; weights must sum to 1.
        components: Vec<(f64, Distribution)>,
    },
}

impl Distribution {
    /// A constant (deterministic) duration.
    pub fn constant(value: f64) -> Self {
        Distribution::Constant { value }
    }

    /// An exponential distribution with the given mean.
    pub fn exponential(mean: f64) -> Self {
        Distribution::Exponential { mean }
    }

    /// A uniform distribution on `[low, high]`.
    pub fn uniform(low: f64, high: f64) -> Self {
        Distribution::Uniform { low, high }
    }

    /// A log-normal distribution parameterized by its own mean and the
    /// coefficient of variation `cv` (sigma of ln x derived from cv).
    pub fn lognormal_mean_cv(mean: f64, cv: f64) -> Self {
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        Distribution::LogNormal {
            mu,
            sigma: sigma2.sqrt(),
        }
    }

    /// Validates parameters; call when accepting untrusted configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid parameter found.
    pub fn validate(&self) -> Result<(), String> {
        fn pos(name: &str, v: f64) -> Result<(), String> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(format!("{name} must be positive and finite, got {v}"))
            }
        }
        match self {
            Distribution::Constant { value } => {
                if value.is_finite() && *value >= 0.0 {
                    Ok(())
                } else {
                    Err(format!("constant value must be non-negative, got {value}"))
                }
            }
            Distribution::Exponential { mean } => pos("mean", *mean),
            Distribution::Uniform { low, high } => {
                if low.is_finite() && *low >= 0.0 && high.is_finite() && high > low {
                    Ok(())
                } else {
                    Err(format!("uniform bounds invalid: [{low}, {high}]"))
                }
            }
            Distribution::LogNormal { mu, sigma } => {
                if mu.is_finite() && sigma.is_finite() && *sigma >= 0.0 {
                    Ok(())
                } else {
                    Err(format!("lognormal params invalid: mu={mu} sigma={sigma}"))
                }
            }
            Distribution::Pareto { x_min, alpha } => {
                pos("x_min", *x_min)?;
                if alpha.is_finite() && *alpha > 1.0 {
                    Ok(())
                } else {
                    Err(format!("pareto alpha must be > 1, got {alpha}"))
                }
            }
            Distribution::Empirical { .. } => Ok(()),
            Distribution::Shifted { offset, inner } => {
                if !offset.is_finite() || *offset < 0.0 {
                    return Err(format!("shift offset must be non-negative, got {offset}"));
                }
                inner.validate()
            }
            Distribution::Mixture { components } => {
                if components.is_empty() {
                    return Err("mixture has no components".into());
                }
                let total: f64 = components.iter().map(|(w, _)| *w).sum();
                if (total - 1.0).abs() > 1e-6 {
                    return Err(format!("mixture weights sum to {total}, expected 1"));
                }
                for (w, d) in components {
                    if !w.is_finite() || *w < 0.0 {
                        return Err(format!("mixture weight {w} invalid"));
                    }
                    d.validate()?;
                }
                Ok(())
            }
        }
    }

    /// Draws one duration (seconds).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            Distribution::Constant { value } => *value,
            Distribution::Exponential { mean } => crate::rng::sample_exponential(rng, *mean),
            Distribution::Uniform { low, high } => low + (high - low) * rng.gen::<f64>(),
            Distribution::LogNormal { mu, sigma } => {
                let z = sample_standard_normal(rng);
                (mu + sigma * z).exp()
            }
            Distribution::Pareto { x_min, alpha } => {
                let u: f64 = 1.0 - rng.gen::<f64>();
                x_min / u.powf(1.0 / alpha)
            }
            Distribution::Empirical { histogram } => histogram.sample(rng),
            Distribution::Shifted { offset, inner } => offset + inner.sample(rng),
            Distribution::Mixture { components } => {
                let mut u: f64 = rng.gen();
                for (w, d) in components {
                    if u < *w {
                        return d.sample(rng);
                    }
                    u -= w;
                }
                components
                    .last()
                    .expect("mixture validated non-empty")
                    .1
                    .sample(rng)
            }
        }
    }

    /// The analytic mean, seconds.
    pub fn mean(&self) -> f64 {
        match self {
            Distribution::Constant { value } => *value,
            Distribution::Exponential { mean } => *mean,
            Distribution::Uniform { low, high } => (low + high) / 2.0,
            Distribution::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            Distribution::Pareto { x_min, alpha } => alpha * x_min / (alpha - 1.0),
            Distribution::Empirical { histogram } => histogram.mean(),
            Distribution::Shifted { offset, inner } => offset + inner.mean(),
            Distribution::Mixture { components } => {
                components.iter().map(|(w, d)| w * d.mean()).sum()
            }
        }
    }

    /// The greatest lower bound of the distribution's support, seconds: no
    /// sample can be smaller. The partitioned execution engine
    /// ([`crate::partition`]) uses the wire-latency lower bound as
    /// conservative lookahead — the minimum simulated delay any
    /// cross-machine hop must pay — so this must be a true infimum, never
    /// an estimate.
    ///
    /// # Examples
    ///
    /// ```
    /// use uqsim_core::dist::Distribution;
    ///
    /// assert_eq!(Distribution::constant(2e-5).lower_bound(), 2e-5);
    /// assert_eq!(Distribution::exponential(1e-3).lower_bound(), 0.0);
    /// assert_eq!(Distribution::uniform(1e-6, 3e-6).lower_bound(), 1e-6);
    /// let shifted = Distribution::Shifted {
    ///     offset: 5e-6,
    ///     inner: Box::new(Distribution::exponential(1e-4)),
    /// };
    /// assert_eq!(shifted.lower_bound(), 5e-6);
    /// ```
    pub fn lower_bound(&self) -> f64 {
        match self {
            Distribution::Constant { value } => *value,
            // The inverse-CDF samplers can return values arbitrarily close
            // to zero (u → 1 gives -mean·ln(u) → 0), so the only safe
            // bound is zero.
            Distribution::Exponential { .. } => 0.0,
            Distribution::Uniform { low, .. } => *low,
            // exp(mu + sigma·z) with unbounded-below z: infimum zero.
            Distribution::LogNormal { sigma, mu } => {
                if *sigma == 0.0 {
                    mu.exp()
                } else {
                    0.0
                }
            }
            Distribution::Pareto { x_min, .. } => *x_min,
            Distribution::Empirical { histogram } => histogram.min_value(),
            Distribution::Shifted { offset, inner } => offset + inner.lower_bound(),
            Distribution::Mixture { components } => components
                .iter()
                .map(|(_, d)| d.lower_bound())
                .fold(f64::INFINITY, f64::min),
        }
    }

    /// Returns a copy with all durations multiplied by `factor` (frequency
    /// scaling). Parametric forms scale analytically; empirical histograms
    /// scale their bounds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scaled(&self, factor: f64) -> Distribution {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        match self {
            Distribution::Constant { value } => Distribution::Constant {
                value: value * factor,
            },
            Distribution::Exponential { mean } => Distribution::Exponential {
                mean: mean * factor,
            },
            Distribution::Uniform { low, high } => Distribution::Uniform {
                low: low * factor,
                high: high * factor,
            },
            Distribution::LogNormal { mu, sigma } => Distribution::LogNormal {
                mu: mu + factor.ln(),
                sigma: *sigma,
            },
            Distribution::Pareto { x_min, alpha } => Distribution::Pareto {
                x_min: x_min * factor,
                alpha: *alpha,
            },
            Distribution::Empirical { histogram } => Distribution::Empirical {
                histogram: histogram.scaled(factor),
            },
            Distribution::Shifted { offset, inner } => Distribution::Shifted {
                offset: offset * factor,
                inner: Box::new(inner.scaled(factor)),
            },
            Distribution::Mixture { components } => Distribution::Mixture {
                components: components
                    .iter()
                    .map(|(w, d)| (*w, d.scaled(factor)))
                    .collect(),
            },
        }
    }
}

/// Box–Muller standard normal.
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngFactory;

    fn rng() -> rand::rngs::SmallRng {
        RngFactory::new(77).stream("dist", 0)
    }

    fn sample_mean(d: &Distribution, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = Distribution::constant(5e-6);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), 5e-6);
        }
    }

    #[test]
    fn means_match_sampling() {
        let cases = vec![
            Distribution::exponential(1e-3),
            Distribution::uniform(1e-6, 3e-6),
            Distribution::lognormal_mean_cv(2e-4, 0.5),
            Distribution::Pareto {
                x_min: 1e-4,
                alpha: 3.0,
            },
            Distribution::Shifted {
                offset: 1e-5,
                inner: Box::new(Distribution::exponential(1e-5)),
            },
            Distribution::Mixture {
                components: vec![
                    (0.3, Distribution::constant(1e-5)),
                    (0.7, Distribution::exponential(1e-4)),
                ],
            },
        ];
        for d in cases {
            let m = sample_mean(&d, 300_000);
            let a = d.mean();
            assert!(
                (m - a).abs() / a < 0.05,
                "distribution {d:?}: sample mean {m} vs analytic {a}"
            );
        }
    }

    #[test]
    fn scaled_scales_mean() {
        let cases = vec![
            Distribution::constant(1e-5),
            Distribution::exponential(1e-3),
            Distribution::uniform(1e-6, 3e-6),
            Distribution::lognormal_mean_cv(2e-4, 0.5),
            Distribution::Pareto {
                x_min: 1e-4,
                alpha: 3.0,
            },
        ];
        for d in cases {
            let s = d.scaled(2.5);
            assert!(
                (s.mean() - 2.5 * d.mean()).abs() / d.mean() < 1e-9,
                "scaling failed for {d:?}"
            );
        }
    }

    #[test]
    fn validation_catches_bad_params() {
        assert!(Distribution::exponential(0.0).validate().is_err());
        assert!(Distribution::uniform(2.0, 1.0).validate().is_err());
        assert!(Distribution::Pareto {
            x_min: 1.0,
            alpha: 1.0
        }
        .validate()
        .is_err());
        assert!(Distribution::Constant { value: -1.0 }.validate().is_err());
        assert!(Distribution::Mixture { components: vec![] }
            .validate()
            .is_err());
        assert!(Distribution::Mixture {
            components: vec![(0.4, Distribution::constant(1.0))]
        }
        .validate()
        .is_err());
        assert!(Distribution::exponential(1.0).validate().is_ok());
    }

    #[test]
    fn lognormal_mean_cv_hits_requested_mean() {
        let d = Distribution::lognormal_mean_cv(3e-3, 1.2);
        assert!((d.mean() - 3e-3).abs() / 3e-3 < 1e-9);
    }

    #[test]
    fn serde_roundtrip() {
        let d = Distribution::Mixture {
            components: vec![
                (0.5, Distribution::exponential(1e-3)),
                (0.5, Distribution::constant(1e-4)),
            ],
        };
        let json = serde_json::to_string(&d).unwrap();
        let back: Distribution = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
        // Tagged representation is human-authorable:
        assert!(json.contains("\"type\":\"mixture\""));
    }

    #[test]
    fn empirical_distribution_survives_serde() {
        // Deserialized histograms must have a usable CDF (it is skipped in
        // serde and rebuilt on deserialization).
        let h =
            crate::histogram::Histogram::from_bins(0.0, vec![(1e-6, 0.4), (2e-6, 0.6)]).unwrap();
        let d = Distribution::Empirical { histogram: h };
        let json = serde_json::to_string(&d).unwrap();
        let back: Distribution = serde_json::from_str(&json).unwrap();
        let mut r = rng();
        for _ in 0..100 {
            let x = back.sample(&mut r);
            assert!((0.0..=2e-6).contains(&x), "sample {x} out of support");
        }
    }

    #[test]
    fn lower_bound_is_never_undercut_by_samples() {
        let h =
            crate::histogram::Histogram::from_bins(2e-6, vec![(3e-6, 0.5), (5e-6, 0.5)]).unwrap();
        let cases = vec![
            Distribution::constant(4e-6),
            Distribution::exponential(1e-3),
            Distribution::uniform(1e-6, 3e-6),
            Distribution::lognormal_mean_cv(2e-4, 0.5),
            Distribution::Pareto {
                x_min: 1e-4,
                alpha: 3.0,
            },
            Distribution::Empirical { histogram: h },
            Distribution::Shifted {
                offset: 7e-6,
                inner: Box::new(Distribution::exponential(1e-5)),
            },
            Distribution::Mixture {
                components: vec![
                    (0.3, Distribution::constant(9e-6)),
                    (
                        0.7,
                        Distribution::Shifted {
                            offset: 2e-6,
                            inner: Box::new(Distribution::exponential(1e-4)),
                        },
                    ),
                ],
            },
        ];
        let mut r = rng();
        for d in cases {
            let lb = d.lower_bound();
            assert!(lb.is_finite() && lb >= 0.0, "bad bound for {d:?}");
            for _ in 0..20_000 {
                let x = d.sample(&mut r);
                assert!(x >= lb, "{d:?} sampled {x} below its lower bound {lb}");
            }
        }
        // Mixture bound is the min over components; shift adds through.
        assert_eq!(
            Distribution::Mixture {
                components: vec![
                    (0.5, Distribution::constant(3e-6)),
                    (0.5, Distribution::constant(1e-6)),
                ],
            }
            .lower_bound(),
            1e-6
        );
    }

    #[test]
    fn samples_nonnegative() {
        let cases = vec![
            Distribution::exponential(1e-3),
            Distribution::lognormal_mean_cv(1e-4, 2.0),
            Distribution::Pareto {
                x_min: 1e-5,
                alpha: 2.0,
            },
        ];
        let mut r = rng();
        for d in cases {
            for _ in 0..10_000 {
                assert!(d.sample(&mut r) >= 0.0);
            }
        }
    }
}
