//! Execution stages: the basic element of a microservice's application logic.
//!
//! A *stage* is a queue–consumer pair (§III-B). Each stage declares a queue
//! discipline (plain FIFO, per-connection socket queues, or epoll-style
//! event harvesting with batching) and a *service-time model* describing how
//! long one invocation takes, possibly as a function of batch size and of
//! the core's DVFS frequency.

use crate::dist::Distribution;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a stage's queue admits and releases jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum QueueDiscipline {
    /// One FIFO; each invocation serves exactly one job.
    Single,
    /// Per-connection subqueues; one invocation drains up to `batch` jobs
    /// from a *single* ready connection (models `socket_read`).
    Socket {
        /// Maximum jobs taken from the chosen connection.
        batch: usize,
    },
    /// Per-connection subqueues; one invocation harvests up to
    /// `batch_per_conn` jobs from *every* active connection (models `epoll`).
    Epoll {
        /// Maximum jobs returned per active connection.
        batch_per_conn: usize,
    },
}

impl QueueDiscipline {
    /// True if one invocation may return more than one job.
    pub fn is_batching(self) -> bool {
        !matches!(self, QueueDiscipline::Single)
    }
}

/// Service-time model of one stage invocation.
///
/// The invocation cost is `base + Σ per_job` over the jobs in the batch —
/// this captures the paper's observation that `epoll`'s execution time grows
/// linearly with the number of returned events and `socket_read`'s with the
/// bytes read, while the fixed part is amortized over the whole batch
/// (the mechanism behind Fig. 13's µqSim-vs-BigHouse gap).
///
/// Frequency dependence: either an explicit per-frequency table (the paper's
/// per-DVFS-setting histograms) or analytic scaling
/// `t(f) = t(f_ref) · (f_ref / f)^alpha`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceTimeModel {
    /// Fixed cost per invocation (amortized over the batch), seconds.
    pub base: Distribution,
    /// Additional cost per job in the batch, seconds.
    pub per_job: Distribution,
    /// Additional cost per byte carried by the batch's jobs, seconds/byte.
    /// Models the paper's observation that `socket_read`'s processing time
    /// is proportional to the bytes read from the socket.
    #[serde(default)]
    pub per_byte: f64,
    /// Reference frequency in GHz at which `base`/`per_job` were profiled.
    pub ref_freq_ghz: f64,
    /// Exponent for analytic frequency scaling; 1.0 = fully core-bound,
    /// 0.0 = frequency-insensitive (e.g. purely memory/IO-bound).
    pub freq_alpha: f64,
    /// Optional explicit per-frequency overrides: `(freq_ghz, base, per_job)`.
    /// When the current frequency matches an entry (±1 MHz), the entry's
    /// distributions are used instead of analytic scaling (the per-byte
    /// component still applies).
    #[serde(default)]
    pub freq_table: Vec<(f64, Distribution, Distribution)>,
}

impl ServiceTimeModel {
    /// A fixed-cost-per-job stage (no batching amortization), profiled at
    /// `ref_freq_ghz` and fully core-bound.
    pub fn per_job(dist: Distribution, ref_freq_ghz: f64) -> Self {
        ServiceTimeModel {
            base: Distribution::constant(0.0),
            per_job: dist,
            per_byte: 0.0,
            ref_freq_ghz,
            freq_alpha: 1.0,
            freq_table: Vec::new(),
        }
    }

    /// A stage with a fixed invocation cost plus a per-job increment.
    pub fn batched(base: Distribution, per_job: Distribution, ref_freq_ghz: f64) -> Self {
        ServiceTimeModel {
            base,
            per_job,
            per_byte: 0.0,
            ref_freq_ghz,
            freq_alpha: 1.0,
            freq_table: Vec::new(),
        }
    }

    /// Sets the per-byte cost (seconds/byte at the reference frequency).
    pub fn with_per_byte(mut self, per_byte: f64) -> Self {
        self.per_byte = per_byte;
        self
    }

    /// Sets the frequency-scaling exponent.
    pub fn with_freq_alpha(mut self, alpha: f64) -> Self {
        self.freq_alpha = alpha;
        self
    }

    /// Adds an explicit per-frequency override.
    pub fn with_freq_entry(
        mut self,
        freq_ghz: f64,
        base: Distribution,
        per_job: Distribution,
    ) -> Self {
        self.freq_table.push((freq_ghz, base, per_job));
        self
    }

    /// Validates all contained distributions.
    ///
    /// # Errors
    ///
    /// Returns the first invalid parameter description.
    pub fn validate(&self) -> Result<(), String> {
        self.base.validate()?;
        self.per_job.validate()?;
        if !(self.ref_freq_ghz.is_finite() && self.ref_freq_ghz > 0.0) {
            return Err(format!(
                "ref_freq_ghz must be positive, got {}",
                self.ref_freq_ghz
            ));
        }
        if !(self.freq_alpha.is_finite() && self.freq_alpha >= 0.0) {
            return Err(format!(
                "freq_alpha must be non-negative, got {}",
                self.freq_alpha
            ));
        }
        if !(self.per_byte.is_finite() && self.per_byte >= 0.0) {
            return Err(format!(
                "per_byte must be non-negative, got {}",
                self.per_byte
            ));
        }
        for (f, b, p) in &self.freq_table {
            if !(f.is_finite() && *f > 0.0) {
                return Err(format!("freq_table frequency {f} invalid"));
            }
            b.validate()?;
            p.validate()?;
        }
        Ok(())
    }

    /// Samples the duration (seconds) of one invocation serving
    /// `batch_size` jobs carrying `batch_bytes` payload bytes in total, on
    /// a core running at `freq_ghz`.
    ///
    /// # Panics
    ///
    /// Debug-asserts `batch_size > 0`.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        batch_size: usize,
        batch_bytes: f64,
        freq_ghz: f64,
    ) -> f64 {
        debug_assert!(batch_size > 0, "empty batch");
        // `powf` is a libm call on the dispatch hot path; the two common
        // exponents have exact closed forms (IEEE pow(x, 1.0) == x), so
        // only unusual alphas pay for it.
        let scale = if self.freq_alpha == 0.0 {
            1.0
        } else if self.freq_alpha == 1.0 {
            self.ref_freq_ghz / freq_ghz
        } else {
            (self.ref_freq_ghz / freq_ghz).powf(self.freq_alpha)
        };
        let byte_cost = self.per_byte * batch_bytes;
        if let Some((_, base, per_job)) = self
            .freq_table
            .iter()
            .find(|(f, _, _)| (f - freq_ghz).abs() < 1e-3)
        {
            let mut t = base.sample(rng);
            for _ in 0..batch_size {
                t += per_job.sample(rng);
            }
            return t + byte_cost * scale;
        }
        let mut t = self.base.sample(rng);
        for _ in 0..batch_size {
            t += self.per_job.sample(rng);
        }
        (t + byte_cost) * scale
    }

    /// Expected duration of an invocation with `batch_size` jobs (zero
    /// payload bytes) at the reference frequency.
    pub fn mean(&self, batch_size: usize) -> f64 {
        self.base.mean() + self.per_job.mean() * batch_size as f64
    }
}

/// Static description of one stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSpec {
    /// Human-readable name (e.g. `"epoll"`, `"memcached_processing"`).
    pub name: String,
    /// Queue discipline.
    pub queue: QueueDiscipline,
    /// Service-time model.
    pub service: ServiceTimeModel,
}

impl StageSpec {
    /// Creates a stage.
    pub fn new(name: impl Into<String>, queue: QueueDiscipline, service: ServiceTimeModel) -> Self {
        StageSpec {
            name: name.into(),
            queue,
            service,
        }
    }

    /// The stage name sanitized for use as a metric label value: ASCII
    /// alphanumerics lowercased, everything else mapped to `_`. Keeps the
    /// Prometheus/CSV exports free of quoting surprises.
    pub fn metric_label(&self) -> String {
        self.name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect()
    }

    /// Validates the stage.
    ///
    /// # Errors
    ///
    /// Returns a message naming the stage and the invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("stage name is empty".into());
        }
        match self.queue {
            QueueDiscipline::Socket { batch: 0 } => {
                return Err(format!("stage {}: socket batch must be > 0", self.name));
            }
            QueueDiscipline::Epoll { batch_per_conn: 0 } => {
                return Err(format!(
                    "stage {}: epoll batch_per_conn must be > 0",
                    self.name
                ));
            }
            _ => {}
        }
        self.service
            .validate()
            .map_err(|e| format!("stage {}: {e}", self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngFactory;

    fn rng() -> rand::rngs::SmallRng {
        RngFactory::new(10).stream("stage", 0)
    }

    #[test]
    fn batch_time_is_linear_in_batch_size() {
        let m = ServiceTimeModel::batched(
            Distribution::constant(10e-6),
            Distribution::constant(1e-6),
            2.6,
        );
        let mut r = rng();
        assert!((m.sample(&mut r, 1, 0.0, 2.6) - 11e-6).abs() < 1e-12);
        assert!((m.sample(&mut r, 8, 0.0, 2.6) - 18e-6).abs() < 1e-12);
        assert!((m.mean(8) - 18e-6).abs() < 1e-12);
    }

    #[test]
    fn per_batch_cost_amortizes() {
        // The per-request share of a batched invocation shrinks with batch
        // size — the key epoll effect (Fig. 13).
        let m = ServiceTimeModel::batched(
            Distribution::constant(10e-6),
            Distribution::constant(1e-6),
            2.6,
        );
        let per_req_1 = m.mean(1) / 1.0;
        let per_req_16 = m.mean(16) / 16.0;
        assert!(per_req_16 < per_req_1 / 4.0);
    }

    #[test]
    fn analytic_freq_scaling() {
        let m = ServiceTimeModel::per_job(Distribution::constant(10e-6), 2.6);
        let mut r = rng();
        let fast = m.sample(&mut r, 1, 0.0, 2.6);
        let slow = m.sample(&mut r, 1, 0.0, 1.3);
        assert!((slow / fast - 2.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_zero_disables_scaling() {
        let m = ServiceTimeModel::per_job(Distribution::constant(10e-6), 2.6).with_freq_alpha(0.0);
        let mut r = rng();
        assert_eq!(m.sample(&mut r, 1, 0.0, 1.2), m.sample(&mut r, 1, 0.0, 2.6));
    }

    #[test]
    fn freq_table_overrides_scaling() {
        let m = ServiceTimeModel::per_job(Distribution::constant(10e-6), 2.6).with_freq_entry(
            1.2,
            Distribution::constant(0.0),
            Distribution::constant(99e-6),
        );
        let mut r = rng();
        assert!((m.sample(&mut r, 1, 0.0, 1.2) - 99e-6).abs() < 1e-12);
        // Other frequencies still use analytic scaling.
        assert!((m.sample(&mut r, 1, 0.0, 2.6) - 10e-6).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_stage() {
        let bad_batch = StageSpec::new(
            "epoll",
            QueueDiscipline::Epoll { batch_per_conn: 0 },
            ServiceTimeModel::per_job(Distribution::constant(1e-6), 2.6),
        );
        assert!(bad_batch.validate().is_err());

        let bad_dist = StageSpec::new(
            "x",
            QueueDiscipline::Single,
            ServiceTimeModel::per_job(Distribution::exponential(0.0), 2.6),
        );
        assert!(bad_dist.validate().is_err());

        let ok = StageSpec::new(
            "x",
            QueueDiscipline::Single,
            ServiceTimeModel::per_job(Distribution::exponential(1e-6), 2.6),
        );
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn per_byte_cost_adds_and_scales() {
        let m = ServiceTimeModel::batched(
            Distribution::constant(0.0),
            Distribution::constant(10e-6),
            2.6,
        )
        .with_per_byte(2e-9);
        let mut r = rng();
        // 1 job, 1000 bytes: 10us + 2us.
        assert!((m.sample(&mut r, 1, 1000.0, 2.6) - 12e-6).abs() < 1e-12);
        // Half frequency doubles the byte cost too.
        assert!((m.sample(&mut r, 1, 1000.0, 1.3) - 24e-6).abs() < 1e-12);
    }

    #[test]
    fn per_byte_validation() {
        let m = ServiceTimeModel::per_job(Distribution::constant(1e-6), 2.6).with_per_byte(-1.0);
        assert!(m.validate().is_err());
    }

    #[test]
    fn discipline_batching_flag() {
        assert!(!QueueDiscipline::Single.is_batching());
        assert!(QueueDiscipline::Socket { batch: 4 }.is_batching());
        assert!(QueueDiscipline::Epoll { batch_per_conn: 4 }.is_batching());
    }

    #[test]
    fn serde_roundtrip() {
        let s = StageSpec::new(
            "epoll",
            QueueDiscipline::Epoll { batch_per_conn: 8 },
            ServiceTimeModel::batched(
                Distribution::constant(5e-6),
                Distribution::exponential(1e-6),
                2.6,
            ),
        );
        let json = serde_json::to_string(&s).unwrap();
        let back: StageSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
