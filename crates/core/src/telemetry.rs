//! Live telemetry: streaming histograms, latency decomposition, periodic
//! sampling, self-profiling, and Prometheus/CSV/JSON export.
//!
//! This is the observability layer on top of the raw recorders in
//! [`crate::metrics`]. It is organized as three channels:
//!
//! 1. **Aggregates** — a [`MetricsRegistry`] snapshot of counters, gauges,
//!    and summaries assembled on demand from the simulator's accumulators
//!    and from bounded-memory [`StreamingHistogram`]s (HDR-style log-linear
//!    buckets, mergeable, no per-sample storage).
//! 2. **Time series** — a periodic sampler event
//!    ([`crate::event::EventKind::TelemetrySample`]) that, at a fixed
//!    simulated interval, closes a windowed-latency summary
//!    ([`TelemetryWindow`]) and snapshots per-instance queue depth,
//!    utilization, thread occupancy, connection-pool saturation, and
//!    network-irq utilization into a [`SeriesSet`].
//! 3. **Self-profiling** — wall-clock engine statistics (events per
//!    wall-clock second, event-heap size, allocations per sim-second) kept
//!    strictly separate from the deterministic channels so exports stay
//!    byte-reproducible across machines.
//!
//! The whole layer follows the span-log discipline: the simulator holds an
//! `Option<Box<TelemetryState>>`, every hot-path hook is a single
//! `is_none()` branch when disabled, and nothing is allocated until
//! [`Simulator::enable_telemetry`] is called.
//!
//! # Latency decomposition
//!
//! Each live request carries an *attribution frontier* (`mark`): at every
//! event that advances the request, the elapsed `[mark, now]` interval is
//! charged to the [`LatencyComponent`] of the event that closed it and the
//! frontier moves to `now`. Because the charges telescope from submission
//! to completion, the components sum to the end-to-end latency **exactly**
//! (integer nanoseconds, no rounding). The attribution is critical-path
//! biased: when branches run in parallel, whichever branch's event fires
//! next advances the shared frontier, so sibling work overlapping it is
//! folded into the component of the event that happened to close each
//! interval. Fan-in synchronization stalls (the wait for the slowest
//! sibling at a merge node) are charged to
//! [`LatencyComponent::FanInSync`].

use crate::event::EventKind;
use crate::ids::{InstanceId, MachineId};
use crate::machine::UtilCheckpoint;
use crate::metrics::LatencySummary;
use crate::sim::Simulator;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

// ---------------------------------------------------------------------
// Streaming histogram
// ---------------------------------------------------------------------

/// Sub-bucket resolution: 2^5 = 32 linear sub-buckets per power of two,
/// bounding the relative quantile error at 1/32 ≈ 3.1%.
const SUB_BITS: u32 = 5;
const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// Bucket index for a nanosecond value. Pure integer bit arithmetic — no
/// floating point — so bucketing is identical on every platform, which the
/// byte-stable Prometheus golden test relies on.
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let msb = 63 - u64::from(v.leading_zeros());
        let shift = msb - u64::from(SUB_BITS);
        (shift * SUB_BUCKETS + SUB_BUCKETS + ((v >> shift) & (SUB_BUCKETS - 1))) as usize
    }
}

/// Largest value contained in bucket `idx` (inclusive).
pub(crate) fn bucket_upper(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB_BUCKETS {
        idx
    } else {
        let octave = (idx - SUB_BUCKETS) / SUB_BUCKETS;
        let sub = (idx - SUB_BUCKETS) % SUB_BUCKETS;
        ((SUB_BUCKETS + sub + 1) << octave) - 1
    }
}

/// A bounded-memory, mergeable, HDR-style log-linear histogram over
/// nanosecond values.
///
/// Values below 32 ns get exact unit buckets; above that, each power of
/// two is split into 32 linear sub-buckets, so any reported quantile `q̂`
/// satisfies `q ≤ q̂ ≤ q · (1 + 1/32)` where `q` is the exact nearest-rank
/// quantile. Memory is proportional to the log of the largest recorded
/// value (≤ 1920 buckets for the full `u64` range), independent of sample
/// count — this is what replaces sort-the-whole-sample-vec percentiles on
/// hot paths.
///
/// # Examples
///
/// ```
/// use uqsim_core::telemetry::StreamingHistogram;
///
/// let mut h = StreamingHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.quantile_ns(0.50);
/// assert!((500..=516).contains(&p50), "p50 within bucket resolution: {p50}");
/// assert_eq!(h.max_ns(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamingHistogram {
    /// Bucket counts, grown lazily to the highest touched bucket.
    counts: Vec<u64>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        StreamingHistogram {
            counts: Vec::new(),
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one nanosecond value.
    pub fn record(&mut self, ns: u64) {
        let idx = bucket_index(ns);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Records a value given in seconds (clamped at zero, rounded to the
    /// nearest nanosecond).
    pub fn record_secs(&mut self, secs: f64) {
        self.record((secs.max(0.0) * 1e9).round() as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded values, nanoseconds.
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Smallest recorded value, nanoseconds (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest recorded value, nanoseconds (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean of recorded values, seconds (0 when empty).
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64 / 1e9
        }
    }

    /// Nearest-rank quantile, nanoseconds: the upper bound of the bucket
    /// containing the `ceil(q·count)`-th smallest value, clamped to the
    /// recorded maximum.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// [`Self::quantile_ns`] in seconds.
    pub fn quantile_secs(&self, q: f64) -> f64 {
        self.quantile_ns(q) as f64 / 1e9
    }

    /// Merges another histogram into this one (element-wise bucket sums).
    /// Merging is commutative and associative, so per-shard histograms can
    /// be combined in any order with identical results.
    pub fn merge(&mut self, other: &StreamingHistogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Raw bucket counts (index = [`bucket_index`]), for cohort slicing in
    /// [`crate::critpath`].
    pub(crate) fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }
}

// ---------------------------------------------------------------------
// Latency decomposition
// ---------------------------------------------------------------------

/// The component an interval of a request's end-to-end latency is
/// attributed to. Discriminant values index `components_ns` arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatencyComponent {
    /// Waiting for a free client connection before launch.
    ClientWait = 0,
    /// Wire flight, transmission, and receive-side interrupt processing.
    Network = 1,
    /// Sitting in a stage queue waiting for a worker thread and core.
    QueueWait = 2,
    /// Being serviced by a stage batch (includes context-switch overhead).
    Service = 3,
    /// Waiting for a pooled connection to a downstream service.
    Blocking = 4,
    /// Waiting at a fan-in node for the slowest sibling branch.
    FanInSync = 5,
}

impl LatencyComponent {
    /// Number of components.
    pub const COUNT: usize = 6;

    /// All components in discriminant order.
    pub const ALL: [LatencyComponent; Self::COUNT] = [
        LatencyComponent::ClientWait,
        LatencyComponent::Network,
        LatencyComponent::QueueWait,
        LatencyComponent::Service,
        LatencyComponent::Blocking,
        LatencyComponent::FanInSync,
    ];

    /// Stable snake_case name, used as the Prometheus/CSV label value.
    pub fn name(self) -> &'static str {
        match self {
            LatencyComponent::ClientWait => "client_wait",
            LatencyComponent::Network => "network",
            LatencyComponent::QueueWait => "queue_wait",
            LatencyComponent::Service => "service",
            LatencyComponent::Blocking => "blocking",
            LatencyComponent::FanInSync => "fan_in_sync",
        }
    }
}

impl Serialize for LatencyComponent {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.name().to_string())
    }
}

impl Deserialize for LatencyComponent {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::custom("expected component name string"))?;
        LatencyComponent::ALL
            .into_iter()
            .find(|c| c.name() == s)
            .ok_or_else(|| serde::Error::custom(format!("unknown latency component {s:?}")))
    }
}

/// The full latency decomposition of one completed request. The component
/// nanoseconds sum to `completed - submitted` exactly (telescoping
/// frontier charges; see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestBreakdown {
    /// When the client generated the request.
    pub submitted: SimTime,
    /// When the response reached the client.
    pub completed: SimTime,
    /// Nanoseconds attributed to each component, indexed by
    /// [`LatencyComponent`] discriminant.
    pub components_ns: [u64; LatencyComponent::COUNT],
}

impl RequestBreakdown {
    /// Sum of the component attributions, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.components_ns.iter().sum()
    }

    /// End-to-end latency, nanoseconds.
    pub fn e2e_ns(&self) -> u64 {
        (self.completed - self.submitted).as_nanos()
    }
}

// Manual impl: the vendored serde stand-in has no derive support for
// fixed-size arrays.
impl Serialize for RequestBreakdown {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("submitted", self.submitted.to_value());
        m.insert("completed", self.completed.to_value());
        m.insert("components_ns", self.components_ns[..].to_value());
        serde::Value::Object(m)
    }
}

/// Aggregate latency-decomposition totals over measured (post-warmup,
/// non-timed-out) completions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComponentTotals {
    /// Measured requests aggregated.
    pub requests: u64,
    /// Total nanoseconds per component, indexed by [`LatencyComponent`].
    pub totals_ns: [u64; LatencyComponent::COUNT],
}

impl ComponentTotals {
    /// Mean seconds per request spent in `c` (0 when no requests).
    pub fn mean_s(&self, c: LatencyComponent) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.totals_ns[c as usize] as f64 / self.requests as f64 / 1e9
        }
    }
}

// ---------------------------------------------------------------------
// Configuration and sampler state
// ---------------------------------------------------------------------

/// What [`Simulator::enable_telemetry`] turns on.
///
/// The default is decomposition-only: per-request latency attribution and
/// streaming histograms, no periodic sampler, no retained per-request
/// breakdowns, no wall-clock profiling — the cheapest useful setting, and
/// what [`crate::run::run_one`] uses so sweeps carry decomposition columns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Simulated interval between sampler ticks; `None` disables the
    /// time-series channel entirely.
    pub sample_interval: Option<SimDuration>,
    /// Retain up to this many per-request [`RequestBreakdown`]s.
    pub breakdown_capacity: usize,
    /// Collect wall-clock self-profiling samples at each sampler tick.
    pub self_profile: bool,
    /// Accumulate a streaming critical-path contribution profile
    /// ([`crate::critpath::CpcProfile`]): every telescoping latency charge
    /// additionally records a per-site segment, folded per e2e-latency
    /// bucket on measured completions. Bounded memory, non-perturbing
    /// (completions are bit-identical on vs off).
    pub critpath: bool,
}

/// One closed sampler window: the latency summary over completions in the
/// `sample_interval` ending at `end`. Matches what a
/// [`crate::metrics::WindowedRecorder`] of the same width produces for the
/// same run — empty windows are emitted with `count = 0` so time axes are
/// gap-free.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TelemetryWindow {
    /// Window end (the tick time); the window covers the preceding interval.
    pub end: SimTime,
    /// Completions in the window.
    pub count: u64,
    /// Median latency, seconds (0 when empty).
    pub p50_s: f64,
    /// 95th-percentile latency, seconds (0 when empty).
    pub p95_s: f64,
    /// 99th-percentile latency, seconds (0 when empty).
    pub p99_s: f64,
    /// Completions per second over the window.
    pub throughput: f64,
}

/// Identity of one gauge series in a [`SeriesSet`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SeriesDef {
    /// Metric name, e.g. `instance_utilization`.
    pub metric: &'static str,
    /// Optional `(label_name, label_value)` pair, e.g. `("instance", "api0")`.
    pub label: Option<(&'static str, String)>,
}

/// A set of gauge time series sampled at the same ticks: one shared time
/// axis, one value column per series.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct SeriesSet {
    defs: Vec<SeriesDef>,
    times_ns: Vec<u64>,
    values: Vec<Vec<f64>>,
}

impl SeriesSet {
    pub(crate) fn new(defs: Vec<SeriesDef>) -> Self {
        let n = defs.len();
        SeriesSet {
            defs,
            times_ns: Vec::new(),
            values: vec![Vec::new(); n],
        }
    }

    pub(crate) fn push_row(&mut self, t: SimTime, row: &[f64]) {
        debug_assert_eq!(row.len(), self.defs.len(), "series row width mismatch");
        self.times_ns.push(t.as_nanos());
        for (col, &v) in self.values.iter_mut().zip(row) {
            col.push(v);
        }
    }

    /// The series definitions, in column order.
    pub fn defs(&self) -> &[SeriesDef] {
        &self.defs
    }

    /// The shared time axis, nanoseconds.
    pub fn times_ns(&self) -> &[u64] {
        &self.times_ns
    }

    /// All samples of the series at column `idx`.
    pub fn column(&self, idx: usize) -> &[f64] {
        &self.values[idx]
    }

    /// Number of ticks recorded.
    pub fn len(&self) -> usize {
        self.times_ns.len()
    }

    /// True if no ticks were recorded.
    pub fn is_empty(&self) -> bool {
        self.times_ns.is_empty()
    }

    /// The most recent sample of the series named `metric` with the given
    /// label value (`None` matches unlabeled series).
    pub fn latest(&self, metric: &str, label: Option<&str>) -> Option<f64> {
        let idx = self.defs.iter().position(|d| {
            d.metric == metric && d.label.as_ref().map(|(_, v)| v.as_str()) == label
        })?;
        self.values[idx].last().copied()
    }
}

// ---------------------------------------------------------------------
// Self-profiling
// ---------------------------------------------------------------------

/// One wall-clock self-profiling sample, taken at a sampler tick. These
/// describe the *simulator's* performance (not the simulated system's) and
/// are intentionally excluded from the deterministic exports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SelfProfileSample {
    /// Simulated time of the tick.
    pub sim_time: SimTime,
    /// Wall-clock seconds since telemetry was enabled.
    pub wall_s: f64,
    /// Total events processed so far.
    pub events_processed: u64,
    /// Events processed per wall-clock second since the previous tick.
    pub events_per_wall_s: f64,
    /// Pending events in the heap at the tick.
    pub event_heap: usize,
    /// Requests in flight at the tick.
    pub live_requests: usize,
    /// Jobs in flight at the tick.
    pub live_jobs: usize,
    /// Heap allocations since the previous tick, if an allocation probe is
    /// registered (see [`set_alloc_probe`]).
    pub allocations: Option<u64>,
    /// Allocations per simulated second since the previous tick.
    pub allocs_per_sim_s: Option<f64>,
}

#[derive(Debug)]
pub(crate) struct ProfileState {
    start: std::time::Instant,
    last_wall: std::time::Instant,
    last_events: u64,
    last_allocs: Option<u64>,
    last_sim: SimTime,
    pub(crate) samples: Vec<SelfProfileSample>,
}

impl ProfileState {
    fn new(now: SimTime, events_processed: u64) -> Self {
        let t = std::time::Instant::now();
        ProfileState {
            start: t,
            last_wall: t,
            last_events: events_processed,
            last_allocs: read_alloc_probe(),
            last_sim: now,
            samples: Vec::new(),
        }
    }

    fn sample(
        &mut self,
        now: SimTime,
        events_processed: u64,
        event_heap: usize,
        live_requests: usize,
        live_jobs: usize,
    ) {
        let t = std::time::Instant::now();
        let wall = t.duration_since(self.last_wall).as_secs_f64().max(1e-12);
        let d_events = events_processed.saturating_sub(self.last_events);
        let allocs = read_alloc_probe();
        let d_sim = (now - self.last_sim).as_secs_f64();
        let (d_allocs, allocs_per_sim_s) = match (allocs, self.last_allocs) {
            (Some(a), Some(b)) => {
                let d = a.saturating_sub(b);
                let rate = (d_sim > 0.0).then(|| d as f64 / d_sim);
                (Some(d), rate)
            }
            _ => (None, None),
        };
        self.samples.push(SelfProfileSample {
            sim_time: now,
            wall_s: t.duration_since(self.start).as_secs_f64(),
            events_processed,
            events_per_wall_s: d_events as f64 / wall,
            event_heap,
            live_requests,
            live_jobs,
            allocations: d_allocs,
            allocs_per_sim_s,
        });
        self.last_wall = t;
        self.last_events = events_processed;
        self.last_allocs = allocs;
        self.last_sim = now;
    }
}

static ALLOC_PROBE: OnceLock<fn() -> u64> = OnceLock::new();

/// Registers a process-wide allocation counter for self-profiling.
///
/// `uqsim-core` forbids `unsafe` code, so it cannot install a counting
/// global allocator itself; a binary that does (the CLI) calls this once
/// with a function returning its cumulative allocation count. The first
/// registration wins; later calls are ignored.
pub fn set_alloc_probe(probe: fn() -> u64) {
    let _ = ALLOC_PROBE.set(probe);
}

pub(crate) fn read_alloc_probe() -> Option<u64> {
    ALLOC_PROBE.get().map(|f| f())
}

// ---------------------------------------------------------------------
// Registry and exporters
// ---------------------------------------------------------------------

/// The value of one exported metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonically increasing integer count.
    Counter(u64),
    /// An instantaneous value.
    Gauge(f64),
    /// A quantile summary backed by a [`StreamingHistogram`].
    Summary {
        /// `(quantile, value_seconds)` pairs, ascending by quantile.
        quantiles: Vec<(f64, f64)>,
        /// Sum of all observations, seconds.
        sum: f64,
        /// Number of observations.
        count: u64,
    },
}

/// One exported metric: a name, label set, help string, and value.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name (Prometheus conventions, `uqsim_` prefix).
    pub name: &'static str,
    /// `(label_name, label_value)` pairs, in emission order.
    pub labels: Vec<(&'static str, String)>,
    /// One-line help text.
    pub help: &'static str,
    /// The value.
    pub value: MetricValue,
}

/// An ordered collection of metrics, assembled on demand by
/// [`Simulator::metrics_registry`] and rendered by
/// [`MetricsRegistry::to_prometheus`]. Metrics sharing a name must be
/// pushed consecutively (Prometheus groups a family under one
/// `# HELP`/`# TYPE` header).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: Vec<Metric>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes a counter.
    pub fn counter(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
        value: u64,
    ) {
        self.metrics.push(Metric {
            name,
            labels,
            help,
            value: MetricValue::Counter(value),
        });
    }

    /// Pushes a gauge.
    pub fn gauge(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
        value: f64,
    ) {
        self.metrics.push(Metric {
            name,
            labels,
            help,
            value: MetricValue::Gauge(value),
        });
    }

    /// Pushes a p50/p95/p99 summary from a streaming histogram.
    pub fn summary(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
        hist: &StreamingHistogram,
    ) {
        self.metrics.push(Metric {
            name,
            labels,
            help,
            value: MetricValue::Summary {
                quantiles: vec![
                    (0.5, hist.quantile_secs(0.5)),
                    (0.95, hist.quantile_secs(0.95)),
                    (0.99, hist.quantile_secs(0.99)),
                ],
                sum: hist.sum_ns() as f64 / 1e9,
                count: hist.count(),
            },
        });
    }

    /// Pushes an already-built [`Metric`] verbatim. Used by the partition
    /// merge layer ([`crate::partition::merge_registries`]) to re-emit
    /// per-cell metrics — including rebuilt [`MetricValue::Summary`] values
    /// from merged histograms — while preserving a cell's original
    /// name/help/label strings byte-for-byte.
    pub fn push(&mut self, metric: Metric) {
        self.metrics.push(metric);
    }

    /// All metrics in emission order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Renders the registry in the Prometheus text exposition format.
    ///
    /// The output is deterministic: metric order is fixed by assembly
    /// order, bucket math is pure integer arithmetic, and float formatting
    /// uses Rust's shortest-roundtrip `Display` — so a fixed-seed run
    /// exports byte-identical text on every platform.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut prev_name = "";
        for m in &self.metrics {
            if m.name != prev_name {
                let ty = match m.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Summary { .. } => "summary",
                };
                out.push_str(&format!(
                    "# HELP {} {}\n# TYPE {} {ty}\n",
                    m.name, m.help, m.name
                ));
                prev_name = m.name;
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{}{} {v}\n", m.name, label_str(&m.labels, None)));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{}{} {v}\n", m.name, label_str(&m.labels, None)));
                }
                MetricValue::Summary {
                    quantiles,
                    sum,
                    count,
                } => {
                    for (q, v) in quantiles {
                        out.push_str(&format!(
                            "{}{} {v}\n",
                            m.name,
                            label_str(&m.labels, Some(*q))
                        ));
                    }
                    out.push_str(&format!(
                        "{}_sum{} {sum}\n",
                        m.name,
                        label_str(&m.labels, None)
                    ));
                    out.push_str(&format!(
                        "{}_count{} {count}\n",
                        m.name,
                        label_str(&m.labels, None)
                    ));
                }
            }
        }
        out
    }
}

/// Renders a `{a="x",b="y"}` label block (empty string when no labels).
fn label_str(labels: &[(&'static str, String)], quantile: Option<f64>) -> String {
    if labels.is_empty() && quantile.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(q) = quantile {
        parts.push(format!("quantile=\"{q}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Escapes a label value per the Prometheus text format.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Quotes a CSV field if it contains a delimiter, quote, or newline.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// The compact per-run telemetry summary threaded into sweep tables: mean
/// utilizations (measured since the warmup boundary) and mean latency
/// decomposition. Plain `Copy` data, cheap to aggregate across
/// replications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Mean per-instance core utilization since warmup, averaged over
    /// instances.
    pub instance_utilization: f64,
    /// Mean irq-core utilization since warmup, averaged over machines that
    /// have irq cores.
    pub network_utilization: f64,
    /// Measured requests in the decomposition aggregates (0 when the
    /// telemetry layer is disabled).
    pub decomposed_requests: u64,
    /// Mean seconds per request per [`LatencyComponent`], in discriminant
    /// order.
    pub component_mean_s: [f64; LatencyComponent::COUNT],
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        MetricsSnapshot {
            instance_utilization: 0.0,
            network_utilization: 0.0,
            decomposed_requests: 0,
            component_mean_s: [0.0; LatencyComponent::COUNT],
        }
    }
}

// Manual impls: the vendored serde stand-in has no derive support for
// fixed-size arrays.
impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("instance_utilization", self.instance_utilization.to_value());
        m.insert("network_utilization", self.network_utilization.to_value());
        m.insert("decomposed_requests", self.decomposed_requests.to_value());
        m.insert("component_mean_s", self.component_mean_s[..].to_value());
        serde::Value::Object(m)
    }
}

impl Deserialize for MetricsSnapshot {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected MetricsSnapshot object"))?;
        let f = |key: &str| -> Result<f64, serde::Error> {
            obj.get(key)
                .and_then(serde::Value::as_f64)
                .ok_or_else(|| serde::Error::custom(format!("missing field {key}")))
        };
        let means: Vec<f64> = obj
            .get("component_mean_s")
            .map(Deserialize::from_value)
            .transpose()?
            .unwrap_or_default();
        let mut component_mean_s = [0.0; LatencyComponent::COUNT];
        for (slot, v) in component_mean_s.iter_mut().zip(means) {
            *slot = v;
        }
        Ok(MetricsSnapshot {
            instance_utilization: f("instance_utilization")?,
            network_utilization: f("network_utilization")?,
            decomposed_requests: obj
                .get("decomposed_requests")
                .and_then(serde::Value::as_u64)
                .ok_or_else(|| serde::Error::custom("missing field decomposed_requests"))?,
            component_mean_s,
        })
    }
}

// ---------------------------------------------------------------------
// Simulator-side state
// ---------------------------------------------------------------------

/// All telemetry state, boxed behind an `Option` on the simulator so the
/// disabled cost is one pointer and one branch per hook.
#[derive(Debug)]
pub(crate) struct TelemetryState {
    pub(crate) cfg: TelemetryConfig,
    pub(crate) warmup_at: SimTime,
    pub(crate) comp_totals: ComponentTotals,
    pub(crate) comp_hist: [StreamingHistogram; LatencyComponent::COUNT],
    pub(crate) e2e_hist: StreamingHistogram,
    pub(crate) breakdowns: Vec<RequestBreakdown>,
    /// `[instance][stage]` queue-wait histograms (post-warmup).
    pub(crate) stage_queue_wait: Vec<Vec<StreamingHistogram>>,
    /// `[instance][stage]` per-job service-interval histograms (post-warmup).
    pub(crate) stage_service: Vec<Vec<StreamingHistogram>>,
    /// Latency samples of the currently open sampler window.
    pub(crate) window_buf: Vec<f64>,
    pub(crate) windows: Vec<TelemetryWindow>,
    pub(crate) series: SeriesSet,
    pub(crate) prev_inst_busy: Vec<u64>,
    pub(crate) prev_irq_busy: Vec<u64>,
    pub(crate) prev_tick: SimTime,
    /// Retry-emission counter at the previous tick (fault series only).
    pub(crate) prev_retried: u64,
    pub(crate) profile: Option<ProfileState>,
    /// Streaming critical-path accumulator (only fed when `cfg.critpath`).
    pub(crate) crit: crate::critpath::CritAccum,
}

impl TelemetryState {
    /// Records a completing request: retains its breakdown (up to
    /// capacity), buffers the windowed sample, and — for measured
    /// completions — feeds the decomposition aggregates.
    pub(crate) fn on_completion(
        &mut self,
        now: SimTime,
        submitted: SimTime,
        components_ns: [u64; LatencyComponent::COUNT],
        latency: SimDuration,
        timed_out: bool,
    ) {
        if self.breakdowns.len() < self.cfg.breakdown_capacity {
            self.breakdowns.push(RequestBreakdown {
                submitted,
                completed: now,
                components_ns,
            });
        }
        if timed_out {
            return;
        }
        // The sampler window mirrors WindowedRecorder: every non-timed-out
        // completion counts, warmup included.
        if self.cfg.sample_interval.is_some() {
            self.window_buf.push(latency.as_secs_f64());
        }
        if now < self.warmup_at {
            return;
        }
        self.comp_totals.requests += 1;
        for (i, &ns) in components_ns.iter().enumerate() {
            self.comp_totals.totals_ns[i] += ns;
            self.comp_hist[i].record(ns);
        }
        self.e2e_hist.record(latency.as_nanos());
    }
}

impl Simulator {
    /// Enables the telemetry layer. Call before [`Simulator::run_for`];
    /// decomposition starts from the requests generated after this call
    /// (in-flight requests are still attributed correctly — the component
    /// sums stay exact — but their pre-enable intervals collapse into the
    /// first post-enable charge).
    ///
    /// With `cfg.sample_interval` set, a recurring
    /// [`EventKind::TelemetrySample`] event snapshots the gauge series and
    /// closes a [`TelemetryWindow`] at each tick.
    pub fn enable_telemetry(&mut self, cfg: TelemetryConfig) {
        let warmup_at = SimTime::ZERO + self.cfg.warmup;
        let mut defs = vec![
            SeriesDef {
                metric: "live_requests",
                label: None,
            },
            SeriesDef {
                metric: "live_jobs",
                label: None,
            },
            SeriesDef {
                metric: "event_heap",
                label: None,
            },
        ];
        for inst in &self.instances {
            for metric in [
                "instance_queue_depth",
                "instance_utilization",
                "threads_running",
                "threads_blocked",
            ] {
                defs.push(SeriesDef {
                    metric,
                    label: Some(("instance", inst.name.clone())),
                });
            }
        }
        for m in &self.machines {
            for metric in ["network_utilization", "net_queue_depth"] {
                defs.push(SeriesDef {
                    metric,
                    label: Some(("machine", m.spec.name.clone())),
                });
            }
        }
        for p in &self.pools {
            let label = format!(
                "{}->{}",
                self.instances[p.up_instance.index()].name,
                self.instances[p.down_instance.index()].name
            );
            for metric in ["pool_free", "pool_waiters"] {
                defs.push(SeriesDef {
                    metric,
                    label: Some(("pool", label.clone())),
                });
            }
        }
        // Fault-gated series: a run with no fault plan exports exactly the
        // same series set (and bytes) it did before the fault engine
        // existed. Faults must be installed before telemetry is enabled
        // (install_faults asserts this) so the column set is fixed here.
        if self.fault.is_some() {
            defs.push(SeriesDef {
                metric: "retry_rate",
                label: None,
            });
            for inst in &self.instances {
                defs.push(SeriesDef {
                    metric: "instance_fault_down",
                    label: Some(("instance", inst.name.clone())),
                });
            }
        }
        let stage_hists: Vec<Vec<StreamingHistogram>> = self
            .instances
            .iter()
            .map(|i| vec![StreamingHistogram::new(); self.services[i.service.index()].stages.len()])
            .collect();
        let state = TelemetryState {
            cfg,
            warmup_at,
            comp_totals: ComponentTotals::default(),
            comp_hist: std::array::from_fn(|_| StreamingHistogram::new()),
            e2e_hist: StreamingHistogram::new(),
            breakdowns: Vec::new(),
            stage_queue_wait: stage_hists.clone(),
            stage_service: stage_hists,
            window_buf: Vec::new(),
            windows: Vec::new(),
            series: SeriesSet::new(defs),
            prev_inst_busy: self.inst_busy_sums(),
            prev_irq_busy: self.irq_busy_sums(),
            prev_tick: self.now,
            prev_retried: self.retried,
            profile: cfg
                .self_profile
                .then(|| ProfileState::new(self.now, self.events_processed)),
            crit: crate::critpath::CritAccum::default(),
        };
        self.telemetry = Some(Box::new(state));
        self.push_util_checkpoint();
        if let Some(interval) = cfg.sample_interval {
            assert!(
                interval > SimDuration::ZERO,
                "sample interval must be positive"
            );
            self.events.schedule(
                self.now + interval,
                EventKind::TelemetrySample { recurring: true },
            );
        }
    }

    /// True if [`Simulator::enable_telemetry`] has been called.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Accumulated busy nanoseconds per instance (sum over its cores).
    fn inst_busy_sums(&self) -> Vec<u64> {
        self.instances
            .iter()
            .map(|inst| {
                let m = &self.machines[inst.machine.index()];
                inst.cores.iter().map(|&c| m.cores[c].busy_ns).sum()
            })
            .collect()
    }

    /// Accumulated busy nanoseconds per machine (sum over its irq cores).
    fn irq_busy_sums(&self) -> Vec<u64> {
        self.machines
            .iter()
            .map(|m| m.irq_cores.iter().map(|&c| m.cores[c].busy_ns).sum())
            .collect()
    }

    /// Pushes a utilization checkpoint at the current time (deduplicated:
    /// at most one per instant).
    pub(crate) fn push_util_checkpoint(&mut self) {
        if self.util_checkpoints.last().map(|cp| cp.t) == Some(self.now) {
            return;
        }
        let cp = UtilCheckpoint {
            t: self.now,
            inst_busy_ns: self.inst_busy_sums(),
            irq_busy_ns: self.irq_busy_sums(),
        };
        self.util_checkpoints.push(cp);
    }

    /// Handles a [`EventKind::TelemetrySample`] event. The one-shot
    /// (`recurring == false`) variant only records a utilization
    /// checkpoint (scheduled at the warmup boundary by the builder, so the
    /// since-warmup utilization getters have an exact baseline); the
    /// recurring variant is the sampler tick.
    pub(crate) fn on_telemetry_sample(&mut self, recurring: bool) {
        self.push_util_checkpoint();
        if !recurring {
            return;
        }
        let now = self.now;
        let inst_busy = self.inst_busy_sums();
        let irq_busy = self.irq_busy_sums();
        let event_heap = self.events.len();
        let live_requests = self.requests.live();
        let live_jobs = self.jobs.live();
        let events_processed = self.events_processed;
        let retried = self.retried;

        let Some(tel) = self.telemetry.as_deref_mut() else {
            return;
        };
        let interval = tel
            .cfg
            .sample_interval
            .expect("recurring sample without an interval");

        // Close the latency window over completions since the last tick.
        let summary = LatencySummary::from_samples(&tel.window_buf);
        tel.windows.push(TelemetryWindow {
            end: now,
            count: summary.count as u64,
            p50_s: summary.p50,
            p95_s: summary.p95,
            p99_s: summary.p99,
            throughput: summary.count as f64 / interval.as_secs_f64(),
        });
        tel.window_buf.clear();

        // Gauge row, in SeriesSet column order (see enable_telemetry).
        let span_ns = (now - tel.prev_tick).as_nanos().max(1) as f64;
        let mut row = Vec::with_capacity(tel.series.defs().len());
        row.push(live_requests as f64);
        row.push(live_jobs as f64);
        row.push(event_heap as f64);
        for (i, inst) in self.instances.iter().enumerate() {
            let depth: usize = inst
                .queue_sets
                .iter()
                .map(crate::queue::StageQueueSet::len)
                .sum();
            let ncores = inst.cores.len().max(1) as f64;
            let util =
                inst_busy[i].saturating_sub(tel.prev_inst_busy[i]) as f64 / (span_ns * ncores);
            let running = inst.threads.iter().filter(|t| t.running.is_some()).count();
            let blocked = inst.threads.iter().filter(|t| t.block_depth > 0).count();
            row.push(depth as f64);
            row.push(util);
            row.push(running as f64);
            row.push(blocked as f64);
        }
        for (mi, m) in self.machines.iter().enumerate() {
            let nirq = m.irq_cores.len().max(1) as f64;
            let util = irq_busy[mi].saturating_sub(tel.prev_irq_busy[mi]) as f64 / (span_ns * nirq);
            let in_service = m.net_slots.iter().filter(|s| s.is_some()).count();
            row.push(util);
            row.push((m.net_queue.len() + in_service) as f64);
        }
        for p in &self.pools {
            row.push(p.free_count() as f64);
            row.push(p.waiter_count() as f64);
        }
        if let Some(f) = self.fault.as_deref() {
            // Matches the fault-gated defs in enable_telemetry.
            row.push(retried.saturating_sub(tel.prev_retried) as f64 / (span_ns / 1e9));
            for i in 0..self.instances.len() {
                row.push(f64::from(u8::from(f.instance_down[i])));
            }
            tel.prev_retried = retried;
        }
        tel.series.push_row(now, &row);
        tel.prev_inst_busy = inst_busy;
        tel.prev_irq_busy = irq_busy;
        tel.prev_tick = now;

        if let Some(p) = &mut tel.profile {
            p.sample(now, events_processed, event_heap, live_requests, live_jobs);
        }

        self.events.schedule(
            now + interval,
            EventKind::TelemetrySample { recurring: true },
        );
    }

    /// Mean core utilization of an instance over `[since, now]`.
    ///
    /// Busy time is read against the utilization checkpoint nearest below
    /// `since` (the warmup boundary and every sampler tick record one), so
    /// pass the warmup deadline to exclude warm-up skew. Note that busy
    /// nanoseconds accrue up front when a batch starts service, so a
    /// short interval ending mid-batch can read slightly above 1.0.
    pub fn instance_utilization_since(&self, instance: InstanceId, since: SimTime) -> f64 {
        let inst = &self.instances[instance.index()];
        if inst.cores.is_empty() || since >= self.now {
            return 0.0;
        }
        let m = &self.machines[inst.machine.index()];
        let busy_now: u64 = inst.cores.iter().map(|&c| m.cores[c].busy_ns).sum();
        let (t0, busy0) = self
            .util_checkpoints
            .iter()
            .rev()
            .find(|cp| cp.t <= since)
            .map(|cp| (cp.t, cp.inst_busy_ns[instance.index()]))
            .unwrap_or((SimTime::ZERO, 0));
        let span = (self.now - t0).as_nanos();
        if span == 0 {
            return 0.0;
        }
        busy_now.saturating_sub(busy0) as f64 / (span as f64 * inst.cores.len() as f64)
    }

    /// Mean irq-core utilization of a machine over `[since, now]`; see
    /// [`Simulator::instance_utilization_since`] for checkpoint semantics.
    pub fn network_utilization_since(&self, machine: MachineId, since: SimTime) -> f64 {
        let m = &self.machines[machine.index()];
        if m.irq_cores.is_empty() || since >= self.now {
            return 0.0;
        }
        let busy_now: u64 = m.irq_cores.iter().map(|&c| m.cores[c].busy_ns).sum();
        let (t0, busy0) = self
            .util_checkpoints
            .iter()
            .rev()
            .find(|cp| cp.t <= since)
            .map(|cp| (cp.t, cp.irq_busy_ns[machine.index()]))
            .unwrap_or((SimTime::ZERO, 0));
        let span = (self.now - t0).as_nanos();
        if span == 0 {
            return 0.0;
        }
        busy_now.saturating_sub(busy0) as f64 / (span as f64 * m.irq_cores.len() as f64)
    }

    /// The closed sampler windows (empty slice when the sampler is off).
    pub fn telemetry_windows(&self) -> &[TelemetryWindow] {
        self.telemetry
            .as_deref()
            .map(|t| t.windows.as_slice())
            .unwrap_or(&[])
    }

    /// The sampled gauge series, if the sampler is enabled.
    pub fn telemetry_series(&self) -> Option<&SeriesSet> {
        self.telemetry.as_deref().map(|t| &t.series)
    }

    /// Retained per-request latency breakdowns (empty slice when telemetry
    /// is disabled or `breakdown_capacity` is 0).
    pub fn latency_breakdowns(&self) -> &[RequestBreakdown] {
        self.telemetry
            .as_deref()
            .map(|t| t.breakdowns.as_slice())
            .unwrap_or(&[])
    }

    /// Aggregate latency-decomposition totals over measured completions.
    pub fn latency_component_totals(&self) -> ComponentTotals {
        self.telemetry
            .as_deref()
            .map(|t| t.comp_totals)
            .unwrap_or_default()
    }

    /// Wall-clock self-profiling samples (empty unless
    /// [`TelemetryConfig::self_profile`] was set).
    pub fn self_profile(&self) -> &[SelfProfileSample] {
        self.telemetry
            .as_deref()
            .and_then(|t| t.profile.as_ref())
            .map(|p| p.samples.as_slice())
            .unwrap_or(&[])
    }

    /// The streaming histogram behind the `uqsim_e2e_latency_seconds`
    /// summary, or `None` when telemetry is disabled. Exposed so the
    /// partitioned merge can fold per-cell histograms with
    /// [`StreamingHistogram::merge`] (commutative and associative) instead
    /// of approximating quantiles from per-cell quantiles.
    pub fn e2e_latency_histogram(&self) -> Option<&StreamingHistogram> {
        self.telemetry.as_deref().map(|t| &t.e2e_hist)
    }

    /// The per-component latency histograms (indexed by
    /// [`LatencyComponent`] discriminant), or `None` when telemetry is
    /// disabled. Same merge rationale as
    /// [`Simulator::e2e_latency_histogram`].
    pub fn component_latency_histograms(&self) -> Option<&[StreamingHistogram]> {
        self.telemetry.as_deref().map(|t| t.comp_hist.as_slice())
    }

    /// The compact per-run summary threaded into sweep tables.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let since = (SimTime::ZERO + self.cfg.warmup).min(self.now);
        let n_inst = self.instances.len();
        let instance_utilization = if n_inst == 0 {
            0.0
        } else {
            (0..n_inst)
                .map(|i| self.instance_utilization_since(InstanceId::from_raw(i as u32), since))
                .sum::<f64>()
                / n_inst as f64
        };
        let irq_machines: Vec<usize> = (0..self.machines.len())
            .filter(|&m| !self.machines[m].irq_cores.is_empty())
            .collect();
        let network_utilization = if irq_machines.is_empty() {
            0.0
        } else {
            irq_machines
                .iter()
                .map(|&m| self.network_utilization_since(MachineId::from_raw(m as u32), since))
                .sum::<f64>()
                / irq_machines.len() as f64
        };
        let (decomposed_requests, component_mean_s) = match self.telemetry.as_deref() {
            Some(t) => (
                t.comp_totals.requests,
                std::array::from_fn(|i| t.comp_totals.mean_s(LatencyComponent::ALL[i])),
            ),
            None => (0, [0.0; LatencyComponent::COUNT]),
        };
        MetricsSnapshot {
            instance_utilization,
            network_utilization,
            decomposed_requests,
            component_mean_s,
        }
    }

    /// Assembles the full metrics registry: run counters, per-entity
    /// gauges, and — when telemetry is enabled — latency summaries backed
    /// by the streaming histograms.
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let since = (SimTime::ZERO + self.cfg.warmup).min(self.now);
        reg.counter(
            "uqsim_requests_generated_total",
            "Requests generated by all clients.",
            vec![],
            self.generated,
        );
        reg.counter(
            "uqsim_requests_completed_total",
            "Requests whose response reached the client.",
            vec![],
            self.completed,
        );
        reg.counter(
            "uqsim_request_timeouts_total",
            "Requests whose client-side timeout fired.",
            vec![],
            self.timeouts,
        );
        reg.counter(
            "uqsim_events_processed_total",
            "Events the simulation engine has processed.",
            vec![],
            self.events_processed,
        );
        reg.gauge(
            "uqsim_sim_time_seconds",
            "Current simulated time.",
            vec![],
            self.now.as_secs_f64(),
        );
        reg.gauge(
            "uqsim_live_requests",
            "Requests currently in flight.",
            vec![],
            self.requests.live() as f64,
        );
        reg.gauge(
            "uqsim_live_jobs",
            "Jobs currently in flight.",
            vec![],
            self.jobs.live() as f64,
        );
        for (i, inst) in self.instances.iter().enumerate() {
            reg.gauge(
                "uqsim_instance_utilization",
                "Mean core utilization of the instance since warmup.",
                vec![("instance", inst.name.clone())],
                self.instance_utilization_since(InstanceId::from_raw(i as u32), since),
            );
        }
        for (i, inst) in self.instances.iter().enumerate() {
            reg.gauge(
                "uqsim_instance_queue_depth",
                "Jobs currently queued at the instance.",
                vec![("instance", inst.name.clone())],
                self.instance_queue_depth(InstanceId::from_raw(i as u32)) as f64,
            );
        }
        for (mi, m) in self.machines.iter().enumerate() {
            reg.gauge(
                "uqsim_network_utilization",
                "Mean irq-core utilization of the machine since warmup.",
                vec![("machine", m.spec.name.clone())],
                self.network_utilization_since(MachineId::from_raw(mi as u32), since),
            );
        }
        for p in &self.pools {
            let label = format!(
                "{}->{}",
                self.instances[p.up_instance.index()].name,
                self.instances[p.down_instance.index()].name
            );
            reg.gauge(
                "uqsim_pool_free",
                "Free connections in the pool.",
                vec![("pool", label)],
                p.free_count() as f64,
            );
        }
        for p in &self.pools {
            let label = format!(
                "{}->{}",
                self.instances[p.up_instance.index()].name,
                self.instances[p.down_instance.index()].name
            );
            reg.gauge(
                "uqsim_pool_waiters",
                "Jobs blocked waiting for a pool connection.",
                vec![("pool", label)],
                p.waiter_count() as f64,
            );
        }
        // Fault families only exist when a fault plan is installed, so the
        // Prometheus export of an unfaulted run stays byte-identical.
        if let Some(f) = self.fault.as_deref() {
            reg.counter(
                "uqsim_requests_dropped_total",
                "Requests terminally dropped by an injected fault.",
                vec![],
                self.dropped,
            );
            reg.counter(
                "uqsim_requests_shed_total",
                "Requests shed at emission by an open circuit breaker.",
                vec![],
                self.shed,
            );
            reg.counter(
                "uqsim_retries_total",
                "Retry emissions fired by client resilience policies.",
                vec![],
                self.retried,
            );
            reg.counter(
                "uqsim_responses_degraded_total",
                "Responses delivered in degraded mode (sheds and quorum early-fires).",
                vec![],
                self.degraded,
            );
            let s = f.summary_snapshot();
            reg.counter(
                "uqsim_hedges_total",
                "Hedged duplicate attempts emitted.",
                vec![],
                s.hedged,
            );
            reg.counter(
                "uqsim_jobs_killed_total",
                "Jobs killed by crashes, drains, or exhausted retransmits.",
                vec![],
                s.jobs_killed,
            );
            reg.counter(
                "uqsim_packets_dropped_total",
                "Packet deliveries dropped by degraded links.",
                vec![],
                s.packets_dropped,
            );
            reg.counter(
                "uqsim_retransmits_total",
                "Packet retransmissions after a drop.",
                vec![],
                s.retransmits,
            );
            reg.counter(
                "uqsim_breaker_trips_total",
                "Times a client circuit breaker opened.",
                vec![],
                s.breaker_trips,
            );
            for (i, inst) in self.instances.iter().enumerate() {
                reg.gauge(
                    "uqsim_instance_fault_down",
                    "1 while the instance is crashed, else 0.",
                    vec![("instance", inst.name.clone())],
                    f64::from(u8::from(f.instance_down[i])),
                );
            }
        }
        let Some(tel) = self.telemetry.as_deref() else {
            return reg;
        };
        reg.summary(
            "uqsim_e2e_latency_seconds",
            "End-to-end latency over measured completions.",
            vec![],
            &tel.e2e_hist,
        );
        for c in LatencyComponent::ALL {
            reg.summary(
                "uqsim_latency_component_seconds",
                "Per-request latency attributed to each component.",
                vec![("component", c.name().to_string())],
                &tel.comp_hist[c as usize],
            );
        }
        for (i, inst) in self.instances.iter().enumerate() {
            let svc = &self.services[inst.service.index()];
            for (s, spec) in svc.stages.iter().enumerate() {
                reg.summary(
                    "uqsim_stage_queue_wait_seconds",
                    "Time jobs spent queued before each stage.",
                    vec![
                        ("instance", inst.name.clone()),
                        ("stage", spec.metric_label()),
                    ],
                    &tel.stage_queue_wait[i][s],
                );
            }
        }
        for (i, inst) in self.instances.iter().enumerate() {
            let svc = &self.services[inst.service.index()];
            for (s, spec) in svc.stages.iter().enumerate() {
                reg.summary(
                    "uqsim_stage_service_seconds",
                    "Per-job service interval of each stage.",
                    vec![
                        ("instance", inst.name.clone()),
                        ("stage", spec.metric_label()),
                    ],
                    &tel.stage_service[i][s],
                );
            }
        }
        reg
    }

    /// [`Simulator::metrics_registry`] rendered as Prometheus text.
    pub fn metrics_prometheus(&self) -> String {
        self.metrics_registry().to_prometheus()
    }

    /// The long-form time-series CSV (`t_s,metric,label,value`), or `None`
    /// when the sampler is disabled. Rows are tick-major: the windowed
    /// latency summary of each tick, then every gauge series at that tick.
    ///
    /// **Row/label ordering contract** (pinned by the `metrics_golden` CLI
    /// test): each tick emits exactly five `windowed_*` rows with an empty
    /// label, in the fixed order `count`, `throughput_qps`, `p50_seconds`,
    /// `p95_seconds`, `p99_seconds`, followed by every gauge series in its
    /// registration order — the order entities appear in the scenario
    /// configuration — labeled with the entity name. The partitioned merge
    /// ([`merge_csv`](crate::partition::merge_csv)) preserves this
    /// per-cell ordering and is the byte-identity for single-cell runs.
    pub fn metrics_csv(&self) -> Option<String> {
        let tel = self.telemetry.as_deref()?;
        tel.cfg.sample_interval?;
        let mut out = String::from("t_s,metric,label,value\n");
        let n_ticks = tel.series.len().min(tel.windows.len());
        for k in 0..n_ticks {
            let w = &tel.windows[k];
            let t = w.end.as_secs_f64();
            out.push_str(&format!("{t:.9},windowed_count,,{}\n", w.count));
            out.push_str(&format!(
                "{t:.9},windowed_throughput_qps,,{}\n",
                w.throughput
            ));
            out.push_str(&format!("{t:.9},windowed_p50_seconds,,{}\n", w.p50_s));
            out.push_str(&format!("{t:.9},windowed_p95_seconds,,{}\n", w.p95_s));
            out.push_str(&format!("{t:.9},windowed_p99_seconds,,{}\n", w.p99_s));
            for (col, def) in tel.series.defs().iter().enumerate() {
                let label = def
                    .label
                    .as_ref()
                    .map(|(_, v)| csv_field(v))
                    .unwrap_or_default();
                out.push_str(&format!(
                    "{t:.9},{},{label},{}\n",
                    def.metric,
                    tel.series.column(col)[k]
                ));
            }
        }
        Some(out)
    }

    /// The full telemetry state as JSON: run counters, latency summary,
    /// utilization, decomposition means, sampler windows, gauge series,
    /// and self-profiling samples.
    pub fn metrics_json(&self) -> serde_json::Value {
        let since = (SimTime::ZERO + self.cfg.warmup).min(self.now);
        let tel = self.telemetry.as_deref();
        let decomposition = match tel {
            Some(t) => {
                let mut map = serde_json::Map::new();
                for c in LatencyComponent::ALL {
                    map.insert(
                        c.name().to_string(),
                        serde_json::json!({
                            "mean_s": t.comp_totals.mean_s(c),
                            "total_s": t.comp_totals.totals_ns[c as usize] as f64 / 1e9,
                            "p99_s": t.comp_hist[c as usize].quantile_secs(0.99),
                        }),
                    );
                }
                serde_json::Value::Object(map)
            }
            None => serde_json::Value::Null,
        };
        let instances: Vec<serde_json::Value> = self
            .instances
            .iter()
            .enumerate()
            .map(|(i, inst)| {
                let id = InstanceId::from_raw(i as u32);
                serde_json::json!({
                    "name": inst.name,
                    "utilization": self.instance_utilization_since(id, since),
                    "queue_depth": self.instance_queue_depth(id),
                })
            })
            .collect();
        let machines: Vec<serde_json::Value> = self
            .machines
            .iter()
            .enumerate()
            .map(|(mi, m)| {
                serde_json::json!({
                    "name": m.spec.name,
                    "network_utilization":
                        self.network_utilization_since(MachineId::from_raw(mi as u32), since),
                })
            })
            .collect();
        serde_json::json!({
            "run": {
                "seed": self.cfg.seed,
                "sim_time_s": self.now.as_secs_f64(),
                "warmup_s": self.cfg.warmup.as_secs_f64(),
                "generated": self.generated,
                "completed": self.completed,
                "timeouts": self.timeouts,
                "events_processed": self.events_processed,
            },
            "latency": self.latency_summary(),
            "snapshot": self.metrics_snapshot(),
            "decomposition": decomposition,
            "utilization": { "instances": instances, "machines": machines },
            "windows": tel.map(|t| &t.windows),
            "series": tel.map(|t| &t.series),
            "self_profile": self.self_profile(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_continuous_at_octave_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(63), 63);
        assert_eq!(bucket_index(64), 64);
        assert_eq!(bucket_index(65), 64, "two values per bucket in octave 1");
        // Indices never decrease.
        let mut prev = 0;
        for v in 0..100_000u64 {
            let i = bucket_index(v);
            assert!(i >= prev, "bucket index regressed at {v}");
            prev = i;
        }
    }

    #[test]
    fn bucket_upper_bounds_its_bucket() {
        for idx in 0..500 {
            let upper = bucket_upper(idx);
            assert_eq!(bucket_index(upper), idx, "upper of {idx} maps back");
            assert_eq!(
                bucket_index(upper + 1),
                idx + 1,
                "upper of {idx} is the last value"
            );
        }
    }

    #[test]
    fn quantiles_within_resolution() {
        let mut h = StreamingHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 5000u64), (0.95, 9500), (0.99, 9900)] {
            let est = h.quantile_ns(q);
            assert!(est >= exact, "q{q}: {est} < exact {exact}");
            assert!(
                est <= exact + exact / 32 + 1,
                "q{q}: {est} above resolution bound for {exact}"
            );
        }
        assert_eq!(h.quantile_ns(1.0), 10_000);
        assert_eq!(h.max_ns(), 10_000);
        assert_eq!(h.min_ns(), 1);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = StreamingHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ns(0.99), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.mean_secs(), 0.0);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = StreamingHistogram::new();
        let mut b = StreamingHistogram::new();
        for v in [1u64, 40, 40, 2000, 1 << 40] {
            a.record(v);
        }
        for v in [7u64, 7, 555] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 8);
    }

    #[test]
    fn record_secs_rounds_to_nanos() {
        let mut h = StreamingHistogram::new();
        h.record_secs(1e-9 * 1.6);
        h.record_secs(-5.0);
        assert_eq!(h.max_ns(), 2);
        assert_eq!(h.min_ns(), 0);
    }

    #[test]
    fn component_names_are_stable() {
        let names: Vec<&str> = LatencyComponent::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "client_wait",
                "network",
                "queue_wait",
                "service",
                "blocking",
                "fan_in_sync"
            ]
        );
        for (i, c) in LatencyComponent::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "discriminants index the arrays");
        }
    }

    #[test]
    fn registry_renders_prometheus_families() {
        let mut reg = MetricsRegistry::new();
        reg.counter("uqsim_x_total", "X events.", vec![], 3);
        reg.gauge("uqsim_g", "A gauge.", vec![("inst", "a\"b".into())], 0.5);
        let mut h = StreamingHistogram::new();
        h.record(10);
        reg.summary("uqsim_s_seconds", "A summary.", vec![], &h);
        let text = reg.to_prometheus();
        assert!(text.contains(
            "# HELP uqsim_x_total X events.\n# TYPE uqsim_x_total counter\nuqsim_x_total 3\n"
        ));
        assert!(text.contains("uqsim_g{inst=\"a\\\"b\"} 0.5\n"));
        assert!(text.contains("uqsim_s_seconds{quantile=\"0.5\"}"));
        assert!(text.contains("uqsim_s_seconds_sum 0.00000001\n"));
        assert!(text.contains("uqsim_s_seconds_count 1\n"));
    }

    #[test]
    fn series_set_latest_matches_pushed_rows() {
        let mut s = SeriesSet::new(vec![
            SeriesDef {
                metric: "a",
                label: None,
            },
            SeriesDef {
                metric: "b",
                label: Some(("instance", "x".into())),
            },
        ]);
        s.push_row(SimTime::from_nanos(10), &[1.0, 2.0]);
        s.push_row(SimTime::from_nanos(20), &[3.0, 4.0]);
        assert_eq!(s.latest("a", None), Some(3.0));
        assert_eq!(s.latest("b", Some("x")), Some(4.0));
        assert_eq!(s.latest("b", Some("y")), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn csv_field_quotes_delimiters() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("a\"b"), "\"a\"\"b\"");
    }
}
