//! Control-plane hooks: periodic controllers that observe latency statistics
//! and actuate cluster knobs (DVFS).
//!
//! The power-management study (§V-B) plugs in as a [`Controller`]: every
//! decision interval it receives the end-to-end and per-tier tail latencies
//! observed since its previous tick and may change per-instance frequencies.

use crate::ids::InstanceId;
use crate::metrics::LatencySummary;
use crate::time::{SimDuration, SimTime};

/// Statistics handed to a controller at each tick, covering the interval
/// since its previous tick.
#[derive(Debug, Clone)]
pub struct TickStats {
    /// End-to-end request latency over the interval.
    pub end_to_end: LatencySummary,
    /// Per-instance residence latency (queueing + service across the
    /// instance's nodes) over the interval, indexed by instance.
    pub per_instance: Vec<LatencySummary>,
}

/// An actuation a controller may request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlAction {
    /// Set every core of `instance` to `freq_ghz` (snapped to the machine's
    /// DVFS levels).
    SetInstanceFreq {
        /// Target instance.
        instance: InstanceId,
        /// Requested frequency, GHz.
        freq_ghz: f64,
    },
}

/// A periodic controller.
///
/// Implementations are registered with
/// [`Simulator::add_controller`](crate::sim::Simulator::add_controller) and
/// ticked by the engine; each tick returns the actions to apply and the
/// delay until the next tick.
///
/// Controllers must be [`Send`]: a built [`Simulator`](crate::Simulator)
/// (controllers included) is moved across threads by the parallel sweep
/// runner, which fans independent replications over a thread pool.
pub trait Controller: std::fmt::Debug + Send {
    /// Delay from registration to the first tick.
    fn first_tick(&self) -> SimDuration;

    /// One decision. Returns the actions to apply now and the delay until
    /// the next tick.
    fn tick(&mut self, now: SimTime, stats: &TickStats) -> (Vec<ControlAction>, SimDuration);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A controller is usable as a boxed trait object.
    #[derive(Debug)]
    struct Noop;

    impl Controller for Noop {
        fn first_tick(&self) -> SimDuration {
            SimDuration::from_millis(100)
        }
        fn tick(&mut self, _now: SimTime, _stats: &TickStats) -> (Vec<ControlAction>, SimDuration) {
            (Vec::new(), SimDuration::from_millis(100))
        }
    }

    #[test]
    fn controller_is_object_safe() {
        let mut c: Box<dyn Controller> = Box::new(Noop);
        let stats = TickStats {
            end_to_end: LatencySummary::empty(),
            per_instance: vec![],
        };
        let (actions, next) = c.tick(SimTime::ZERO, &stats);
        assert!(actions.is_empty());
        assert_eq!(next, SimDuration::from_millis(100));
        assert_eq!(c.first_tick(), SimDuration::from_millis(100));
    }
}
